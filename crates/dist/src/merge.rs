//! Coordinator-side accumulators replicating the count observers of
//! `ugs-queries` — same per-world arithmetic, same merge order.
//!
//! Bit-identity with the in-process drivers is the whole contract here, and
//! it has two halves:
//!
//! * **Integer-valued totals** (degree histogram bins, edge presence
//!   counts) are order-insensitive sums of `1.0`s, so the coordinator can
//!   accumulate them as `u64` from the workers' cross-world aggregates and
//!   convert at finalize time — `t as f64 / w` equals the observer's
//!   `x / w` exactly for any accumulation order (counts stay far below
//!   2⁵³).
//! * **Float-valued totals** (the connectivity observer's isolated
//!   fraction) are *not* associative, so the coordinator reproduces the
//!   in-process driver's block structure exactly: one accumulator per
//!   worker-thread world block, fed in world order within the block,
//!   folded in block order at the end — the identical sequence of `f64`
//!   additions the monolithic and in-process sharded paths perform.

use ugs_queries::boundary::GluedWorld;
use ugs_queries::ConnectivityEstimate;
use uncertain_graph::{GraphPartition, Shard, UncertainGraph};

/// Which worker-thread block owns world `offset` of a contiguous block of
/// `block` worlds split over `blocks` workers — the replay-partition formula
/// of the in-process drivers (`base + usize::from(idx < extra)` worlds per
/// worker, earlier workers first).
pub(crate) fn block_owner(offset: usize, block: usize, blocks: usize) -> usize {
    debug_assert!(offset < block, "world offset outside its block");
    let base = block / blocks;
    let extra = block % blocks;
    let wide = extra * (base + 1);
    if offset < wide {
        offset / (base + 1)
    } else {
        // `base > 0` here: with `base == 0` every world of the block lies in
        // the `wide` region above.
        extra + (offset - wide) / base
    }
}

/// Replica of `ConnectivityObserver`: four running totals per worker-thread
/// block, folded in block order (float-order sensitive — see module docs).
#[derive(Debug)]
pub(crate) struct ConnAccumulator {
    n: usize,
    blocks: Vec<[f64; 4]>,
}

impl ConnAccumulator {
    pub(crate) fn new(n: usize, blocks: usize) -> Self {
        ConnAccumulator {
            n,
            blocks: vec![[0.0; 4]; blocks],
        }
    }

    /// Same tracked-statistic gate as the observer.
    pub(crate) fn tracked_range(&self) -> Option<(f64, f64)> {
        (self.n > 0).then_some((0.0, 1.0))
    }

    /// The per-world increments of `ConnectivityObserver::observe_sharded`,
    /// applied to the owning block's totals.
    pub(crate) fn observe(&mut self, block: usize, world: &GluedWorld) {
        let totals = &mut self.blocks[block];
        totals[0] += world.num_components as f64;
        totals[1] += world.largest as f64;
        totals[2] += f64::from(world.num_components == 1);
        totals[3] += world.isolated as f64 / self.n as f64;
    }

    pub(crate) fn finalize(self, num_worlds: usize) -> ConnectivityEstimate {
        if num_worlds == 0 {
            return ConnectivityEstimate {
                expected_components: 0.0,
                expected_largest_component: 0.0,
                probability_connected: 0.0,
                expected_isolated_fraction: 0.0,
                num_worlds,
            };
        }
        // Fold in block order, exactly like the driver merges its worker
        // partials.  The totals are sums of non-negative terms, so the
        // zero-initialised fold is bitwise equal to starting from block 0.
        let mut totals = [0.0; 4];
        for block in &self.blocks {
            for (total, partial) in totals.iter_mut().zip(block) {
                *total += partial;
            }
        }
        let w = num_worlds as f64;
        ConnectivityEstimate {
            expected_components: totals[0] / w,
            expected_largest_component: totals[1] / w,
            probability_connected: totals[2] / w,
            expected_isolated_fraction: totals[3] / w,
            num_worlds,
        }
    }
}

/// Replica of `DegreeHistogramObserver`: integer bins sized for the maximum
/// support degree, filled from the workers' cross-world aggregates.
#[derive(Debug)]
pub(crate) struct HistAccumulator {
    totals: Vec<u64>,
}

impl HistAccumulator {
    pub(crate) fn new(graph: &UncertainGraph) -> Self {
        let max_degree = (0..graph.num_vertices())
            .map(|u| graph.degree(u))
            .max()
            .unwrap_or(0);
        HistAccumulator {
            totals: vec![0; max_degree + 1],
        }
    }

    /// Adds one worker's cross-world histogram (shard-local degrees plus
    /// incident present cuts, already summed over its worlds).
    pub(crate) fn add_worker(&mut self, hist: &[u64]) -> Result<(), String> {
        if hist.len() > self.totals.len() {
            return Err(format!(
                "worker histogram has {} bins but the support graph allows degree {} at most",
                hist.len(),
                self.totals.len() - 1
            ));
        }
        for (total, &bin) in self.totals.iter_mut().zip(hist) {
            *total += bin;
        }
        Ok(())
    }

    pub(crate) fn finalize(self, num_worlds: usize) -> Vec<f64> {
        if num_worlds == 0 {
            return self.totals.iter().map(|&t| t as f64).collect();
        }
        let mut histogram: Vec<f64> = self
            .totals
            .iter()
            .map(|&t| t as f64 / num_worlds as f64)
            .collect();
        while histogram.len() > 1 && histogram.last() == Some(&0.0) {
            histogram.pop();
        }
        histogram
    }
}

/// Replica of `EdgeFrequencyObserver`: integer presence counts per global
/// edge id — intra-shard edges from the workers' aggregates, cut edges from
/// the per-world glue.
#[derive(Debug)]
pub(crate) struct FreqAccumulator {
    counts: Vec<u64>,
}

impl FreqAccumulator {
    pub(crate) fn new(num_edges: usize) -> Self {
        FreqAccumulator {
            counts: vec![0; num_edges],
        }
    }

    /// Same tracked-statistic gate as the observer.
    pub(crate) fn tracked_range(&self) -> Option<(f64, f64)> {
        (!self.counts.is_empty()).then_some((0.0, 1.0))
    }

    /// Counts this world's present cut edges (each exactly once — the glue
    /// already deduplicated the two endpoint reports).
    pub(crate) fn observe(&mut self, partition: &GraphPartition, world: &GluedWorld) {
        for &c in &world.present_cuts {
            self.counts[partition.cut_edge(c as usize).edge] += 1;
        }
    }

    /// Adds one shard's cross-world intra-edge presence counts under their
    /// stable global edge ids.
    pub(crate) fn add_intra(&mut self, shard: &Shard, intra: &[u64]) -> Result<(), String> {
        if intra.len() != shard.num_edges() {
            return Err(format!(
                "worker reported {} intra-edge counters for a shard with {} edges",
                intra.len(),
                shard.num_edges()
            ));
        }
        for (e, &count) in intra.iter().enumerate() {
            self.counts[shard.global_edge(e)] += count;
        }
        Ok(())
    }

    pub(crate) fn finalize(self, num_worlds: usize) -> Vec<f64> {
        if num_worlds == 0 {
            return self.counts.iter().map(|&c| c as f64).collect();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / num_worlds as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_owner_matches_the_replay_partition_formula() {
        // 10 worlds over 3 blocks: counts 4, 3, 3 — skips 0, 4, 7.
        let owners: Vec<usize> = (0..10).map(|w| block_owner(w, 10, 3)).collect();
        assert_eq!(owners, [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        // A block smaller than the worker count leaves trailing workers idle.
        let owners: Vec<usize> = (0..3).map(|w| block_owner(w, 3, 8)).collect();
        assert_eq!(owners, [0, 1, 2]);
        // One block takes everything.
        assert!((0..7).all(|w| block_owner(w, 7, 1) == 0));
    }

    #[test]
    fn histogram_finalize_divides_then_truncates() {
        let graph = UncertainGraph::from_edges(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap();
        let mut acc = HistAccumulator::new(&graph);
        // max support degree 2 → 3 bins.
        acc.add_worker(&[2, 6, 0]).unwrap();
        assert_eq!(acc.finalize(2), vec![1.0, 3.0]);
        assert!(HistAccumulator::new(&graph).add_worker(&[0; 9]).is_err());
    }
}
