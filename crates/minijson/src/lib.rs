//! A tiny, dependency-free JSON library: a [`Value`] model, a recursive
//! descent parser and compact/pretty writers.
//!
//! The workspace builds fully offline (no `serde`/`serde_json`), and its JSON
//! needs are small — persisting graph snapshots, statistics and experiment
//! reports — so this hand-rolled implementation covers exactly that: objects,
//! arrays, strings (with escape handling), finite numbers, booleans and
//! null.  Non-finite numbers serialise as `null`, matching `serde_json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_number(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Value::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    write_string(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, depth + 1)
                })
            }
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice of items, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Value::as_f64`].
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// Convenience: `get(key)` then [`Value::as_usize`].
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.as_usize()
    }

    /// Convenience: `get(key)` then [`Value::as_str`].
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Num(x as f64)
    }
}
impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}
impl From<&str> for Value {
    fn from(x: &str) -> Self {
        Value::Str(x.to_string())
    }
}
impl From<String> for Value {
    fn from(x: String) -> Self {
        Value::Str(x)
    }
}
impl From<Vec<Value>> for Value {
    fn from(x: Vec<Value>) -> Self {
        Value::Arr(x)
    }
}

/// Builder for [`Value::Obj`] preserving insertion order.
#[derive(Debug, Default, Clone)]
pub struct ObjBuilder {
    entries: Vec<(String, Value)>,
}

impl ObjBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.entries.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Obj(self.entries)
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        if x.fract() == 0.0 && x.abs() < 1e15 {
            // Integral values print without a trailing `.0`, like serde_json.
            out.push_str(&format!("{}", x as i64));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of unescaped bytes at once and
                    // validate UTF-8 over just that run: a byte-at-a-time
                    // loop that re-validates the remaining input per scalar
                    // is quadratic, and protocol payloads (boundary
                    // records) put 100 KB+ strings through this path.
                    // Multi-byte UTF-8 units are all >= 0x80, so scanning
                    // for the `"` / `\` delimiters bytewise is safe.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                        JsonError {
                            offset: start,
                            message: "invalid utf-8 in string".to_string(),
                        }
                    })?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let value = ObjBuilder::new()
            .field("name", "graph \"x\"\n")
            .field("n", 42usize)
            .field("p", 0.25)
            .field("ok", true)
            .field(
                "edges",
                Value::Arr(vec![
                    Value::Arr(vec![0usize.into(), 1usize.into(), 0.5.into()]),
                    Value::Arr(vec![1usize.into(), 2usize.into(), 0.125.into()]),
                ]),
            )
            .field("nothing", Value::Null)
            .build();
        for rendered in [value.render(), value.pretty()] {
            let back = Value::parse(&rendered).unwrap();
            assert_eq!(back, value, "{rendered}");
        }
    }

    #[test]
    fn accessors_extract_typed_values() {
        let v = Value::parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true, "e": 1.5}"#).unwrap();
        assert_eq!(v.get_usize("a"), Some(3));
        assert_eq!(v.get_str("b"), Some("x"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get_f64("e"), Some(1.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get_usize("e"), None, "fractional numbers are not usize");
    }

    #[test]
    fn float_precision_survives_round_trip() {
        let x = 0.123_456_789_012_345_68_f64;
        let v = Value::Num(x);
        let back = Value::parse(&v.render()).unwrap();
        assert_eq!(back.as_f64(), Some(x), "shortest-round-trip formatting");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"abc",
            "{} extra",
            "[1,]",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn string_escapes_parse() {
        let v = Value::parse(r#""a\n\t\"\\A""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }
}
