//! Parity suite for the streaming service — the service-level extension of
//! `crates/queries/tests/batch_parity.rs`.
//!
//! Contract under test (the PR 3 acceptance bar): every query surface is
//! expressible as a [`QuerySpec`] and, run through a [`QueryService`] with
//! **one worker** in a **sequential sampling mode**, returns results
//! **bit-identical** to the legacy free functions.  The seed discipline
//! makes this exact: legacy call `k` on a caller RNG seeded with `s` uses
//! the RNG's `k`-th `u64` draw as its batch seed, and micro-batch `k` of a
//! service started with seed `s` uses the `k`-th draw of the service's own
//! stream — the same stream.  (`batch_parity.rs` proves the legacy free
//! functions are themselves bit-identical to the pre-batch driver, so the
//! oracle chain reaches all the way back.)
//!
//! A second suite checks the mixed micro-batch against a [`QueryBatch`]
//! with the same observers: sharing one arrival window must equal sharing
//! one registry.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::UncertainGraph;

use ugs_queries::prelude::*;
use ugs_service::{BatchPolicy, QueryResult, QueryService, QuerySpec};

const SEEDS: [u64; 3] = [1, 0xDEAD_BEEF, 9_999_999_999];
const MODES: [SampleMethod; 2] = [SampleMethod::Skip, SampleMethod::PerEdge];
const WORLDS: usize = 400;

fn fixture() -> UncertainGraph {
    // The batch_parity fixture: plateaus for the skip sampler's exact fast
    // path, heterogeneous tails for the thinning path, one certain edge.
    UncertainGraph::from_edges(
        10,
        [
            (0, 1, 0.9),
            (1, 2, 0.8),
            (2, 3, 0.7),
            (3, 4, 0.6),
            (4, 5, 0.5),
            (5, 6, 0.4),
            (6, 7, 0.3),
            (7, 8, 0.2),
            (8, 9, 0.1),
            (9, 0, 1.0),
            (0, 5, 0.25),
            (1, 6, 0.25),
            (2, 7, 0.25),
            (3, 8, 0.05),
        ],
    )
    .unwrap()
}

fn pairs() -> Vec<(usize, usize)> {
    vec![(0, 4), (0, 9), (3, 8), (5, 1), (2, 2)]
}

/// One query per micro-batch: micro-batch `k` draws the service stream's
/// `k`-th seed, exactly like the `k`-th legacy call on a shared caller RNG.
fn one_query_windows(mode: SampleMethod) -> BatchPolicy {
    BatchPolicy {
        max_wait: Duration::from_secs(3600),
        max_queries: 1,
        num_worlds: WORLDS,
        threads: 1,
        mode,
        shards: 1,
        precision: None,
    }
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x} vs {y} differ bitwise"
        );
    }
}

#[test]
fn every_query_surface_is_bit_identical_to_the_legacy_free_functions() {
    let g = fixture();
    let pairs = pairs();
    for mode in MODES {
        for seed in SEEDS {
            // Legacy: six free-function calls sharing one caller RNG.
            let mc = MonteCarlo::worlds(WORLDS).with_method(mode);
            let mut rng = SmallRng::seed_from_u64(seed);
            let legacy_pr = expected_pagerank(&g, &mc, &mut rng);
            let legacy_cc = expected_clustering_coefficients(&g, &mc, &mut rng);
            let legacy_pairs = pair_queries(&g, &pairs, &mc, &mut rng);
            let legacy_conn = connectivity_query(&g, &mc, &mut rng);
            let legacy_hist = ugs_queries::expected_degree_histogram(&g, &mc, &mut rng);
            let legacy_knn = k_nearest_neighbors(&g, 0, 5, &mc, &mut rng);

            // Service: six submissions, one query per micro-batch, in the
            // same order.
            let service = QueryService::start(g.clone(), one_query_windows(mode), seed);
            let t_pr = service.submit(QuerySpec::pagerank());
            let t_cc = service.submit(QuerySpec::Clustering);
            let t_pairs = service.submit(QuerySpec::PairQueries {
                pairs: pairs.clone(),
            });
            let t_conn = service.submit(QuerySpec::Connectivity);
            let t_hist = service.submit(QuerySpec::DegreeHistogram);
            let t_knn = service.submit(QuerySpec::Knn { source: 0, k: 5 });

            let what = format!("{mode:?} seed {seed}");
            match t_pr.wait().unwrap() {
                QueryResult::PageRank(scores) => {
                    assert_bits_eq(&scores, &legacy_pr, &format!("pagerank {what}"))
                }
                other => panic!("unexpected result {other:?}"),
            }
            match t_cc.wait().unwrap() {
                QueryResult::Clustering(scores) => {
                    assert_bits_eq(&scores, &legacy_cc, &format!("clustering {what}"))
                }
                other => panic!("unexpected result {other:?}"),
            }
            match t_pairs.wait().unwrap() {
                QueryResult::PairQueries(result) => {
                    assert_eq!(result.pairs, legacy_pairs.pairs, "{what}");
                    assert_eq!(
                        result.connected_worlds, legacy_pairs.connected_worlds,
                        "{what}"
                    );
                    assert_eq!(result.num_worlds, legacy_pairs.num_worlds, "{what}");
                    assert_bits_eq(
                        &result.reliability,
                        &legacy_pairs.reliability,
                        &format!("reliability {what}"),
                    );
                    for (x, y) in result
                        .mean_distance
                        .iter()
                        .zip(legacy_pairs.mean_distance.iter())
                    {
                        // NaN-aware bitwise comparison.
                        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
                    }
                }
                other => panic!("unexpected result {other:?}"),
            }
            match t_conn.wait().unwrap() {
                QueryResult::Connectivity(estimate) => {
                    assert_bits_eq(
                        &[
                            estimate.expected_components,
                            estimate.expected_largest_component,
                            estimate.probability_connected,
                            estimate.expected_isolated_fraction,
                        ],
                        &[
                            legacy_conn.expected_components,
                            legacy_conn.expected_largest_component,
                            legacy_conn.probability_connected,
                            legacy_conn.expected_isolated_fraction,
                        ],
                        &format!("connectivity {what}"),
                    );
                    assert_eq!(estimate.num_worlds, legacy_conn.num_worlds, "{what}");
                }
                other => panic!("unexpected result {other:?}"),
            }
            match t_hist.wait().unwrap() {
                QueryResult::DegreeHistogram(histogram) => {
                    assert_bits_eq(&histogram, &legacy_hist, &format!("histogram {what}"))
                }
                other => panic!("unexpected result {other:?}"),
            }
            match t_knn.wait().unwrap() {
                QueryResult::Knn(neighbors) => {
                    assert_eq!(neighbors.len(), legacy_knn.len(), "{what}");
                    for (a, b) in neighbors.iter().zip(legacy_knn.iter()) {
                        assert_eq!(a.vertex, b.vertex, "{what}");
                        assert_eq!(
                            a.expected_distance.to_bits(),
                            b.expected_distance.to_bits(),
                            "{what}"
                        );
                        assert_eq!(a.reachability.to_bits(), b.reachability.to_bits(), "{what}");
                    }
                }
                other => panic!("unexpected result {other:?}"),
            }
            let stats = service.shutdown();
            assert_eq!(stats.micro_batches, 6, "{what}: one window per query");
        }
    }
}

#[test]
fn a_mixed_micro_batch_equals_one_query_batch_with_the_same_observers() {
    // All queries in ONE arrival window must see exactly the worlds a
    // single QueryBatch with the same registry samples from the same seed.
    let g = fixture();
    for mode in MODES {
        let seed = 21;
        let mc = MonteCarlo::worlds(WORLDS).with_method(mode);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut batch = QueryBatch::new(&g, &mc);
        let h_pr = batch.register(PageRankObserver::new(&g));
        let h_freq = batch.register(EdgeFrequencyObserver::new(&g));
        let mut results = batch.run(&mut rng);
        let batch_pr = results.take(h_pr);
        let batch_freq = results.take(h_freq);

        let service = QueryService::start(
            g.clone(),
            BatchPolicy {
                max_wait: Duration::from_secs(3600),
                max_queries: 2,
                num_worlds: WORLDS,
                threads: 1,
                mode,
                shards: 1,
                precision: None,
            },
            seed,
        );
        let t_pr = service.submit(QuerySpec::pagerank());
        let t_freq = service.submit(QuerySpec::EdgeFrequency);
        match t_pr.wait().unwrap() {
            QueryResult::PageRank(scores) => {
                assert_bits_eq(&scores, &batch_pr, &format!("pagerank {mode:?}"))
            }
            other => panic!("unexpected result {other:?}"),
        }
        match t_freq.wait().unwrap() {
            QueryResult::EdgeFrequency(freq) => {
                assert_bits_eq(&freq, &batch_freq, &format!("frequencies {mode:?}"))
            }
            other => panic!("unexpected result {other:?}"),
        }
        let stats = service.shutdown();
        assert_eq!(stats.micro_batches, 1, "{mode:?}: one shared window");
    }
}

/// Adaptive micro-batches: the worlds consumed and the count-valued answers
/// are a deterministic function of the service seed and the precision
/// target, invariant over the worker count; and an adaptive batch equals a
/// direct adaptive `QueryBatch` run on the same seed, because both consume
/// the service stream's first draw as their batch seed.
mod adaptive {
    use super::*;
    use rand::Rng;
    use ugs_queries::variance::Precision;

    fn adaptive_policy(mode: SampleMethod, threads: usize) -> BatchPolicy {
        BatchPolicy {
            max_wait: Duration::from_secs(3600),
            max_queries: 1,
            num_worlds: 100_000,
            threads,
            mode,
            shards: 1,
            precision: Some(Precision::new(0.05).with_epoch(64)),
        }
    }

    #[test]
    fn worlds_consumed_are_worker_count_invariant() {
        for mode in MODES {
            for seed in SEEDS {
                let run = |threads: usize| {
                    let service =
                        QueryService::start(fixture(), adaptive_policy(mode, threads), seed);
                    let answer = service
                        .submit(QuerySpec::Connectivity)
                        .wait_detailed()
                        .unwrap();
                    service.shutdown();
                    answer
                };
                let baseline = run(1);
                assert!(baseline.worlds_used < 100_000, "{mode:?}/{seed}: no stop");
                assert!(baseline.half_width.unwrap() <= 0.05, "{mode:?}/{seed}");
                for threads in [2, 4] {
                    let answer = run(threads);
                    let what = format!("{mode:?} seed {seed} threads {threads}");
                    assert_eq!(baseline.worlds_used, answer.worlds_used, "{what}");
                    // Count-valued fields are bit-identical over the worker
                    // count (the service's standing contract; the isolated
                    // *fraction* accumulates per-world divisions, so only
                    // its association is worker-dependent, as on the fixed
                    // path).
                    let (base, est) = match (&baseline.result, &answer.result) {
                        (QueryResult::Connectivity(a), QueryResult::Connectivity(b)) => (a, b),
                        other => panic!("unexpected results {other:?}"),
                    };
                    assert_eq!(
                        base.probability_connected.to_bits(),
                        est.probability_connected.to_bits(),
                        "{what}"
                    );
                    assert_eq!(
                        base.expected_components.to_bits(),
                        est.expected_components.to_bits(),
                        "{what}"
                    );
                    assert_eq!(base.num_worlds, est.num_worlds, "{what}");
                    assert_eq!(
                        baseline.half_width.unwrap().to_bits(),
                        answer.half_width.unwrap().to_bits(),
                        "{what}"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_micro_batches_match_a_direct_adaptive_query_batch() {
        for mode in MODES {
            for seed in SEEDS {
                let service = QueryService::start(fixture(), adaptive_policy(mode, 1), seed);
                let answer = service
                    .submit(QuerySpec::Connectivity)
                    .wait_detailed()
                    .unwrap();
                service.shutdown();

                // The direct oracle: micro-batch 0 consumed the service
                // stream's first draw, so seed a caller RNG the same way.
                let g = fixture();
                let mc = MonteCarlo::worlds(100_000)
                    .with_method(mode)
                    .with_precision(Precision::new(0.05).with_epoch(64));
                let mut batch = QueryBatch::new(&g, &mc);
                let handle = batch.register(ConnectivityObserver::new(&g));
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut results = batch.run(&mut rng);
                let report = *results.adaptive().unwrap();
                let direct = results.take(handle);

                let what = format!("{mode:?} seed {seed}");
                assert_eq!(answer.worlds_used, report.worlds_used, "{what}");
                assert_eq!(
                    answer.half_width.unwrap().to_bits(),
                    report.half_width.to_bits(),
                    "{what}"
                );
                match answer.result {
                    QueryResult::Connectivity(estimate) => {
                        assert_eq!(
                            estimate.probability_connected.to_bits(),
                            direct.probability_connected.to_bits(),
                            "{what}"
                        );
                        assert_eq!(estimate.num_worlds, direct.num_worlds, "{what}");
                    }
                    other => panic!("unexpected result {other:?}"),
                }
            }
        }
    }

    #[test]
    fn the_adaptive_path_keeps_the_service_seed_discipline() {
        // Micro-batch 1 of a mixed run must still consume the service
        // stream's *second* draw, whether batch 0 was adaptive or not: an
        // adaptive window never shifts the seeds of later windows.
        let seed = 17;
        let mode = SampleMethod::Skip;
        let service = QueryService::start(fixture(), adaptive_policy(mode, 1), seed);
        let _first = service.submit(QuerySpec::Connectivity).wait().unwrap();
        let second = service.submit(QuerySpec::EdgeFrequency).wait().unwrap();
        service.shutdown();

        // Replay the service stream by hand: skip batch 0's draw, then run
        // the merged adaptive driver on the second draw — the exact call
        // the scheduler makes for micro-batch 1.
        let g = fixture();
        let mut stream = SmallRng::seed_from_u64(seed);
        let _ = stream.gen::<u64>(); // batch 0's seed
        let batch_seed = stream.gen::<u64>();
        let engine = WorldEngine::new(&g).with_method(mode);
        let observers = vec![BoxedObserver::new(EdgeFrequencyObserver::new(&g))];
        let (merged, report) = run_adaptive_merged(
            &engine,
            observers,
            100_000,
            1,
            batch_seed,
            &Precision::new(0.05).with_epoch(64),
        );
        let (mut results, handles) = BatchResults::from_merged(merged, report.worlds_used);
        let freq: Vec<f64> = *results
            .try_take_boxed(handles[0])
            .unwrap()
            .downcast()
            .unwrap();
        match second {
            QueryResult::EdgeFrequency(service_freq) => {
                assert_bits_eq(&service_freq, &freq, "mixed-run micro-batch 1");
            }
            other => panic!("unexpected result {other:?}"),
        }
    }
}
