//! Merge-tree invariance of the sharded service: for a fixed batch seed,
//! count-based observers must produce **bit-identical** results whatever
//! the worker count, because every worker re-derives the same world stream
//! from the shared seed (replay partitioning) and count merges are
//! associative over integers.  Property-style: checked over worker counts
//! ∈ {1, 2, 4}, both explicit sampling modes and several seeds — and
//! cross-checked against the in-process `QueryBatch` sharding with the same
//! thread count.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::UncertainGraph;

use ugs_queries::prelude::*;
use ugs_service::{BatchPolicy, QueryResult, QueryService, QuerySpec};

const SEEDS: [u64; 3] = [7, 0xBAD_CAFE, 123_456_789];
const MODES: [SampleMethod; 2] = [SampleMethod::Skip, SampleMethod::PerEdge];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const WORLDS: usize = 500;

fn fixture() -> UncertainGraph {
    UncertainGraph::from_edges(
        8,
        [
            (0, 1, 0.9),
            (1, 2, 0.7),
            (2, 3, 0.5),
            (3, 4, 0.3),
            (4, 5, 0.2),
            (5, 6, 0.6),
            (6, 7, 0.4),
            (7, 0, 0.8),
            (0, 4, 0.15),
            (2, 6, 0.35),
        ],
    )
    .unwrap()
}

/// The count-based query mix: edge frequencies, the degree histogram, the
/// connectivity tallies and the pair reliabilities are all derived from
/// per-world 0/1 or integer counts.
fn count_mix() -> Vec<QuerySpec> {
    vec![
        QuerySpec::EdgeFrequency,
        QuerySpec::DegreeHistogram,
        QuerySpec::Connectivity,
        QuerySpec::PairQueries {
            pairs: vec![(0, 3), (2, 7), (5, 1), (4, 4)],
        },
    ]
}

fn run_service(
    g: &UncertainGraph,
    mode: SampleMethod,
    seed: u64,
    workers: usize,
) -> Vec<QueryResult> {
    let mix = count_mix();
    let service = QueryService::start(
        g.clone(),
        BatchPolicy {
            max_wait: Duration::from_secs(3600),
            max_queries: mix.len(),
            num_worlds: WORLDS,
            threads: workers,
            mode,
            shards: 1,
            precision: None,
        },
        seed,
    );
    let tickets: Vec<_> = mix.into_iter().map(|spec| service.submit(spec)).collect();
    tickets
        .into_iter()
        .map(|ticket| ticket.wait().expect("count mix must succeed"))
        .collect()
}

#[test]
fn count_observers_are_bit_identical_across_worker_counts() {
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            let reference = run_service(&g, mode, seed, WORKER_COUNTS[0]);
            for &workers in &WORKER_COUNTS[1..] {
                let sharded = run_service(&g, mode, seed, workers);
                let what = format!("{mode:?} seed {seed} workers {workers}");
                assert_eq!(
                    reference, sharded,
                    "{what}: sharding changed a count observer"
                );
            }
        }
    }
}

#[test]
fn the_service_shards_exactly_like_query_batch() {
    // Same seed, same thread count: the service's persistent worker pool
    // must reproduce the scoped-thread QueryBatch sharding bit for bit
    // (count observers are exact; the partition formula and merge order are
    // shared).
    let g = fixture();
    for mode in MODES {
        for &threads in &WORKER_COUNTS {
            let seed = 99;
            let mc = MonteCarlo::worlds(WORLDS)
                .with_method(mode)
                .with_threads(threads);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut batch = QueryBatch::new(&g, &mc);
            let h_freq = batch.register(EdgeFrequencyObserver::new(&g));
            let h_hist = batch.register(DegreeHistogramObserver::new(&g));
            let mut results = batch.run(&mut rng);
            let batch_freq = results.take(h_freq);
            let batch_hist = results.take(h_hist);

            let service = QueryService::start(
                g.clone(),
                BatchPolicy {
                    max_wait: Duration::from_secs(3600),
                    max_queries: 2,
                    num_worlds: WORLDS,
                    threads,
                    mode,
                    shards: 1,
                    precision: None,
                },
                seed,
            );
            let t_freq = service.submit(QuerySpec::EdgeFrequency);
            let t_hist = service.submit(QuerySpec::DegreeHistogram);
            let what = format!("{mode:?} threads {threads}");
            assert_eq!(
                t_freq.wait().unwrap(),
                QueryResult::EdgeFrequency(batch_freq),
                "{what}"
            );
            assert_eq!(
                t_hist.wait().unwrap(),
                QueryResult::DegreeHistogram(batch_hist),
                "{what}"
            );
        }
    }
}

#[test]
fn worker_counts_beyond_the_world_budget_degrade_gracefully() {
    // More workers than worlds: the world budget clamps, idle workers get
    // no job, and the counts still match the 1-worker run.
    let g = fixture();
    let run = |workers: usize| {
        let service = QueryService::start(
            g.clone(),
            BatchPolicy {
                max_wait: Duration::from_secs(3600),
                max_queries: 1,
                num_worlds: 3,
                threads: workers,
                mode: SampleMethod::Skip,
                shards: 1,
                precision: None,
            },
            5,
        );
        let ticket = service.submit(QuerySpec::EdgeFrequency);
        ticket.wait().unwrap()
    };
    assert_eq!(run(1), run(8));
}
