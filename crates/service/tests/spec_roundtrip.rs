//! JSON round-trip suite for [`QuerySpec`] (and the [`QueryPlan`] document
//! that embeds them): `parse(to_json(spec)) == spec` for every variant, the
//! parameters survive exactly, and malformed documents fail with a
//! [`SpecError`] instead of panicking.

use ugs_service::{QueryPlan, QuerySpec, SpecError};

fn all_variants() -> Vec<QuerySpec> {
    vec![
        QuerySpec::pagerank(),
        QuerySpec::PageRank {
            damping: 0.5,
            max_iterations: 7,
            tolerance: 1e-6,
        },
        QuerySpec::Clustering,
        QuerySpec::PairQueries {
            pairs: vec![(0, 1), (5, 2), (3, 3)],
        },
        QuerySpec::PairQueries { pairs: vec![] },
        QuerySpec::Connectivity,
        QuerySpec::DegreeHistogram,
        QuerySpec::Knn { source: 4, k: 3 },
        QuerySpec::EdgeFrequency,
    ]
}

#[test]
fn every_variant_round_trips_through_json() {
    for spec in all_variants() {
        let json = spec.to_json();
        let back = QuerySpec::parse(&json).unwrap_or_else(|e| panic!("{json:?}: {e}"));
        assert_eq!(back, spec, "{json:?}");
        // And through the rendered string, i.e. the actual wire format.
        let rendered = json.render();
        let reparsed = QuerySpec::parse_str(&rendered).unwrap();
        assert_eq!(reparsed, spec, "{rendered}");
    }
}

#[test]
fn the_type_field_matches_the_kind() {
    for spec in all_variants() {
        assert_eq!(spec.to_json().get_str("type"), Some(spec.kind()));
    }
}

#[test]
fn plans_round_trip_with_their_embedded_specs() {
    let plan = QueryPlan {
        graph: Some("graph.txt".to_string()),
        worlds: 123,
        threads: 4,
        shards: 2,
        mode: ugs_queries::SampleMethod::PerEdge,
        seed: 77,
        queries: all_variants(),
    };
    let back = QueryPlan::parse(&plan.to_json()).unwrap();
    assert_eq!(back, plan);
    let back = QueryPlan::parse_str(&plan.to_json().render()).unwrap();
    assert_eq!(back, plan);
}

#[test]
fn malformed_documents_fail_with_spec_errors() {
    for bad in [
        "",
        "{",
        "[]",
        r#""pagerank""#,
        r#"{"type": 3}"#,
        r#"{"type": "knn", "source": -1}"#,
        r#"{"type": "knn", "source": 0, "k": 1.5}"#,
        r#"{"type": "pagerank", "max_iterations": -2}"#,
        r#"{"type": "pair_queries", "pairs": "all"}"#,
        r#"{"type": "pair_queries", "pairs": [[0, 1, 2]]}"#,
    ] {
        match QuerySpec::parse_str(bad) {
            Err(SpecError::Json(_)) => {}
            other => panic!("{bad:?}: expected SpecError::Json, got {other:?}"),
        }
    }
}
