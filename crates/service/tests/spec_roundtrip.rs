//! JSON round-trip suite for [`QuerySpec`] (and the [`QueryPlan`] document
//! that embeds them): `parse(to_json(spec)) == spec` for every variant, the
//! parameters survive exactly, and malformed documents fail with a
//! [`SpecError`] instead of panicking.

use std::time::Duration;

use ugs_queries::variance::Precision;
use ugs_service::{parse_precision, precision_to_json, QueryPlan, QuerySpec, SpecError};

fn all_variants() -> Vec<QuerySpec> {
    vec![
        QuerySpec::pagerank(),
        QuerySpec::PageRank {
            damping: 0.5,
            max_iterations: 7,
            tolerance: 1e-6,
        },
        QuerySpec::Clustering,
        QuerySpec::PairQueries {
            pairs: vec![(0, 1), (5, 2), (3, 3)],
        },
        QuerySpec::PairQueries { pairs: vec![] },
        QuerySpec::Connectivity,
        QuerySpec::DegreeHistogram,
        QuerySpec::Knn { source: 4, k: 3 },
        QuerySpec::EdgeFrequency,
    ]
}

#[test]
fn every_variant_round_trips_through_json() {
    for spec in all_variants() {
        let json = spec.to_json();
        let back = QuerySpec::parse(&json).unwrap_or_else(|e| panic!("{json:?}: {e}"));
        assert_eq!(back, spec, "{json:?}");
        // And through the rendered string, i.e. the actual wire format.
        let rendered = json.render();
        let reparsed = QuerySpec::parse_str(&rendered).unwrap();
        assert_eq!(reparsed, spec, "{rendered}");
    }
}

#[test]
fn the_type_field_matches_the_kind() {
    for spec in all_variants() {
        assert_eq!(spec.to_json().get_str("type"), Some(spec.kind()));
    }
}

#[test]
fn plans_round_trip_with_their_embedded_specs() {
    let plan = QueryPlan {
        graph: Some("graph.txt".to_string()),
        worlds: 123,
        threads: 4,
        shards: 2,
        mode: ugs_queries::SampleMethod::PerEdge,
        seed: 77,
        precision: None,
        queries: all_variants(),
    };
    let back = QueryPlan::parse(&plan.to_json()).unwrap();
    assert_eq!(back, plan);
    let back = QueryPlan::parse_str(&plan.to_json().render()).unwrap();
    assert_eq!(back, plan);
}

#[test]
fn precision_blocks_round_trip_through_json() {
    for precision in [
        Precision::new(0.01),
        Precision::new(0.05).with_delta(0.1),
        Precision::new(0.02)
            .with_delta(0.25)
            .with_deadline(Duration::from_millis(1500))
            .with_max_worlds(40_000),
    ] {
        let json = precision_to_json(&precision);
        let back = parse_precision(&json).unwrap_or_else(|e| panic!("{}: {e}", json.render()));
        assert_eq!(back, precision, "{}", json.render());
    }
}

#[test]
fn plans_round_trip_their_precision_block() {
    let plan = QueryPlan::parse_str(
        r#"{"worlds": 5000, "seed": 3,
            "precision": {"epsilon": 0.02, "delta": 0.1, "max_worlds": 4000},
            "queries": [{"type": "connectivity"}]}"#,
    )
    .unwrap();
    let precision = plan.precision.expect("parsed precision");
    assert_eq!(precision.epsilon, 0.02);
    assert_eq!(precision.delta, 0.1);
    assert_eq!(precision.max_worlds, Some(4000));
    assert_eq!(precision.deadline, None);
    let back = QueryPlan::parse(&plan.to_json()).unwrap();
    assert_eq!(back, plan);
}

#[test]
fn malformed_precision_blocks_fail_with_named_errors() {
    // (document, fragment the error must mention)
    for (bad, needle) in [
        (r#"{"precision": 3}"#, "must be an object"),
        (r#"{"precision": {}}"#, "epsilon"),
        (r#"{"precision": {"epsilon": "tight"}}"#, "must be a number"),
        (r#"{"precision": {"epsilon": 0}}"#, "finite positive"),
        (r#"{"precision": {"epsilon": -0.5}}"#, "finite positive"),
        (
            r#"{"precision": {"epsilon": 0.1, "delta": 1.5}}"#,
            "strictly between 0 and 1",
        ),
        (
            r#"{"precision": {"epsilon": 0.1, "delta": 0}}"#,
            "strictly between 0 and 1",
        ),
        (
            r#"{"precision": {"epsilon": 0.1, "deadline_ms": -2}}"#,
            "non-negative integer",
        ),
        // Unknown keys are rejected naming the allowed set.
        (
            r#"{"precision": {"epsilon": 0.1, "budget": 9}}"#,
            "epsilon|delta|deadline_ms|max_worlds",
        ),
    ] {
        let doc = format!(
            r#"{{"queries": [{{"type": "connectivity"}}], {}"#,
            &bad[1..]
        );
        match QueryPlan::parse_str(&doc) {
            Err(SpecError::Json(message)) => {
                assert!(message.contains(needle), "{doc}: {message}");
                assert!(message.contains("precision"), "{doc}: {message}");
            }
            other => panic!("{doc}: expected SpecError::Json, got {other:?}"),
        }
    }
}

#[test]
fn malformed_documents_fail_with_spec_errors() {
    for bad in [
        "",
        "{",
        "[]",
        r#""pagerank""#,
        r#"{"type": 3}"#,
        r#"{"type": "knn", "source": -1}"#,
        r#"{"type": "knn", "source": 0, "k": 1.5}"#,
        r#"{"type": "pagerank", "max_iterations": -2}"#,
        r#"{"type": "pair_queries", "pairs": "all"}"#,
        r#"{"type": "pair_queries", "pairs": [[0, 1, 2]]}"#,
    ] {
        match QuerySpec::parse_str(bad) {
            Err(SpecError::Json(_)) => {}
            other => panic!("{bad:?}: expected SpecError::Json, got {other:?}"),
        }
    }
}
