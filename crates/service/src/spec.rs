//! Data-first query descriptions: a [`QuerySpec`] names a query *as data*
//! (variant + parameters, JSON-serialisable via `minijson`) and a
//! [`QueryResult`] carries its answer.
//!
//! Every Monte-Carlo query surface of `ugs-queries` has a spec variant, and
//! every spec knows how to
//!
//! * serialise itself ([`QuerySpec::to_json`] / [`QuerySpec::parse`] — the
//!   wire format of query plans and service submissions),
//! * validate itself against a concrete graph ([`QuerySpec::validate`]),
//! * build its type-erased observer ([`QuerySpec::make_observer`] →
//!   [`BoxedObserver`], the registry entry a heterogeneous
//!   `QueryBatch`/`QueryService` run drives), and
//! * recover its typed answer from the erased output
//!   ([`QuerySpec::result_of`]).
//!
//! The JSON shape is `{"type": "<kind>", ...parameters}`; omitted optional
//! parameters take the library defaults, so `{"type": "pagerank"}` is a
//! complete spec.  `type` accepts the same aliases as the CLI (`pr`, `cc`,
//! `sp`, `degree-hist`, `edge-freq`, …).

use std::any::Any;
use std::time::Duration;

use graph_algos::pagerank::PageRankConfig;
use minijson::{ObjBuilder, Value};
use uncertain_graph::UncertainGraph;

use ugs_queries::batch::BoxedObserver;
use ugs_queries::components::{ConnectivityObserver, DegreeHistogramObserver};
use ugs_queries::knn::KnnObserver;
use ugs_queries::node_queries::{ClusteringObserver, PageRankObserver};
use ugs_queries::pair_queries::PairQueriesObserver;
use ugs_queries::variance::Precision;
use ugs_queries::{ConnectivityEstimate, EdgeFrequencyObserver, Neighbor, PairQueryResult};

/// A Monte-Carlo query described as data: one variant per query surface of
/// `ugs-queries`, each carrying its parameters.  See the
/// [module docs](self) for the JSON wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Expected PageRank of every vertex
    /// ([`ugs_queries::expected_pagerank`]).
    PageRank {
        /// Damping factor of the power iteration.
        damping: f64,
        /// Maximum number of power iterations.
        max_iterations: usize,
        /// L1 convergence tolerance.
        tolerance: f64,
    },
    /// Expected local clustering coefficient of every vertex
    /// ([`ugs_queries::expected_clustering_coefficients`]).
    Clustering,
    /// Shortest-path distance and reliability for a fixed pair list
    /// ([`ugs_queries::pair_queries()`]).
    PairQueries {
        /// The `(source, target)` pairs to evaluate.
        pairs: Vec<(usize, usize)>,
    },
    /// Connectivity structure of the whole graph
    /// ([`ugs_queries::connectivity_query`]).
    Connectivity,
    /// Expected degree histogram
    /// ([`ugs_queries::expected_degree_histogram`]).
    DegreeHistogram,
    /// k-nearest neighbours of a source vertex
    /// ([`ugs_queries::k_nearest_neighbors`]).
    Knn {
        /// The query vertex.
        source: usize,
        /// How many neighbours to return.
        k: usize,
    },
    /// Per-edge empirical appearance frequencies
    /// ([`EdgeFrequencyObserver`]).
    EdgeFrequency,
}

/// The answer to a [`QuerySpec`], one variant per spec variant.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Per-vertex expected PageRank.
    PageRank(Vec<f64>),
    /// Per-vertex expected local clustering coefficient.
    Clustering(Vec<f64>),
    /// Distances, reliabilities and counts for the requested pairs.
    PairQueries(PairQueryResult),
    /// Connectivity structure estimates.
    Connectivity(ConnectivityEstimate),
    /// Expected degree histogram.
    DegreeHistogram(Vec<f64>),
    /// The nearest neighbours, closest first.
    Knn(Vec<Neighbor>),
    /// Per-edge empirical frequencies, indexed by edge id.
    EdgeFrequency(Vec<f64>),
}

/// Why a [`QuerySpec`] could not be parsed or applied to a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The JSON document does not describe a query spec.
    Json(String),
    /// The spec is structurally fine but does not fit the target graph
    /// (e.g. a vertex id out of range).
    Invalid(String),
    /// The query has no shard-aware evaluation path, but the execution
    /// context splits the graph into shards.  Raised at validation time —
    /// before any sampling — so a plan mixing supported and unsupported
    /// queries fails fast per query instead of answering wrong.
    Unsupported {
        /// The canonical query kind ([`QuerySpec::kind`]).
        query: String,
        /// The number of shards the context would evaluate over.
        shards: usize,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(m) => write!(f, "invalid query spec: {m}"),
            SpecError::Invalid(m) => write!(f, "query spec does not fit the graph: {m}"),
            SpecError::Unsupported { query, shards } => write!(
                f,
                "query \"{query}\" does not support graph-sharded evaluation \
                 ({shards} shards); every supported query declares its exact mechanism: \
                 pair_queries/connectivity/degree_histogram/edge_frequency run via \
                 cut-correction, pagerank/clustering/knn run via halo"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl QuerySpec {
    /// A PageRank spec with the default power-iteration configuration.
    pub fn pagerank() -> Self {
        let config = PageRankConfig::default();
        QuerySpec::PageRank {
            damping: config.damping,
            max_iterations: config.max_iterations,
            tolerance: config.tolerance,
        }
    }

    /// The canonical kind name (the JSON `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            QuerySpec::PageRank { .. } => "pagerank",
            QuerySpec::Clustering => "clustering",
            QuerySpec::PairQueries { .. } => "pair_queries",
            QuerySpec::Connectivity => "connectivity",
            QuerySpec::DegreeHistogram => "degree_histogram",
            QuerySpec::Knn { .. } => "knn",
            QuerySpec::EdgeFrequency => "edge_frequency",
        }
    }

    /// Serialises the spec as `{"type": "<kind>", ...parameters}`.
    pub fn to_json(&self) -> Value {
        let builder = ObjBuilder::new().field("type", self.kind());
        match self {
            QuerySpec::PageRank {
                damping,
                max_iterations,
                tolerance,
            } => builder
                .field("damping", *damping)
                .field("max_iterations", *max_iterations)
                .field("tolerance", *tolerance)
                .build(),
            QuerySpec::PairQueries { pairs } => builder
                .field(
                    "pairs",
                    Value::Arr(
                        pairs
                            .iter()
                            .map(|&(u, v)| Value::Arr(vec![u.into(), v.into()]))
                            .collect(),
                    ),
                )
                .build(),
            QuerySpec::Knn { source, k } => builder.field("source", *source).field("k", *k).build(),
            QuerySpec::Clustering
            | QuerySpec::Connectivity
            | QuerySpec::DegreeHistogram
            | QuerySpec::EdgeFrequency => builder.build(),
        }
    }

    /// Parses a spec from its JSON representation.  Optional parameters
    /// default to the library defaults; `type` accepts the CLI aliases.
    pub fn parse(value: &Value) -> Result<Self, SpecError> {
        let kind = value
            .get_str("type")
            .ok_or_else(|| SpecError::Json("missing string field \"type\"".to_string()))?;
        match kind {
            "pagerank" | "pr" => {
                let defaults = PageRankConfig::default();
                Ok(QuerySpec::PageRank {
                    damping: optional_f64(value, "damping", defaults.damping)?,
                    max_iterations: optional_usize(
                        value,
                        "max_iterations",
                        defaults.max_iterations,
                    )?,
                    tolerance: optional_f64(value, "tolerance", defaults.tolerance)?,
                })
            }
            "clustering" | "cc" => Ok(QuerySpec::Clustering),
            "pair_queries" | "pairs" | "sp" | "rl" | "reliability" | "distance" => {
                let pairs = value
                    .get("pairs")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        SpecError::Json(
                            "pair_queries requires an array field \"pairs\"".to_string(),
                        )
                    })?
                    .iter()
                    .map(|entry| {
                        let pair = entry.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                            SpecError::Json(
                                "each pair must be a two-element array [source, target]"
                                    .to_string(),
                            )
                        })?;
                        match (pair[0].as_usize(), pair[1].as_usize()) {
                            (Some(u), Some(v)) => Ok((u, v)),
                            _ => Err(SpecError::Json(
                                "pair endpoints must be non-negative integers".to_string(),
                            )),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(QuerySpec::PairQueries { pairs })
            }
            "connectivity" => Ok(QuerySpec::Connectivity),
            "degree_histogram" | "degree-hist" | "degrees" => Ok(QuerySpec::DegreeHistogram),
            "knn" => Ok(QuerySpec::Knn {
                source: value.get_usize("source").ok_or_else(|| {
                    SpecError::Json("knn requires an integer field \"source\"".to_string())
                })?,
                k: optional_usize(value, "k", 10)?,
            }),
            "edge_frequency" | "edge-freq" | "frequencies" => Ok(QuerySpec::EdgeFrequency),
            other => Err(SpecError::Json(format!(
                "unknown query type {other:?}; expected pagerank|clustering|pair_queries|\
                 connectivity|degree_histogram|knn|edge_frequency"
            ))),
        }
    }

    /// Parses a spec from a JSON string.
    pub fn parse_str(json: &str) -> Result<Self, SpecError> {
        let value = Value::parse(json).map_err(|e| SpecError::Json(e.to_string()))?;
        Self::parse(&value)
    }

    /// Checks that the spec can run against `g` (vertex ids in range, …).
    pub fn validate(&self, g: &UncertainGraph) -> Result<(), SpecError> {
        let n = g.num_vertices();
        match self {
            QuerySpec::PageRank {
                damping,
                max_iterations: _,
                tolerance,
            } => {
                if !(0.0..=1.0).contains(damping) {
                    return Err(SpecError::Invalid(format!(
                        "damping {damping} outside [0, 1]"
                    )));
                }
                if !tolerance.is_finite() || *tolerance < 0.0 {
                    return Err(SpecError::Invalid(format!(
                        "tolerance {tolerance} must be a non-negative number"
                    )));
                }
                Ok(())
            }
            QuerySpec::PairQueries { pairs } => {
                for &(u, v) in pairs {
                    if u >= n || v >= n {
                        return Err(SpecError::Invalid(format!(
                            "pair ({u}, {v}) out of range (graph has {n} vertices)"
                        )));
                    }
                }
                Ok(())
            }
            QuerySpec::Knn { source, k: _ } => {
                if *source >= n {
                    return Err(SpecError::Invalid(format!(
                        "knn source {source} out of range (graph has {n} vertices)"
                    )));
                }
                Ok(())
            }
            QuerySpec::Clustering
            | QuerySpec::Connectivity
            | QuerySpec::DegreeHistogram
            | QuerySpec::EdgeFrequency => Ok(()),
        }
    }

    /// Whether this query has an exact shard-aware evaluation path.  Every
    /// spec now does: count-style queries through the cut correction
    /// (per-shard partials glued across the sampled cut edges), and the
    /// traversal-style PageRank / clustering / k-NN through the ghost-halo
    /// exchange ([`ugs_queries::halo`]).  [`QuerySpec::shard_mechanism`]
    /// names which of the two a spec uses.
    pub fn supports_sharded(&self) -> bool {
        match self {
            QuerySpec::PairQueries { .. }
            | QuerySpec::Connectivity
            | QuerySpec::DegreeHistogram
            | QuerySpec::EdgeFrequency
            | QuerySpec::PageRank { .. }
            | QuerySpec::Clustering
            | QuerySpec::Knn { .. } => true,
        }
    }

    /// The exact mechanism this query's observer uses on sharded sources:
    /// `"cut-correction"` (per-shard partials plus boundary gluing) or
    /// `"halo"` (ghost-halo replication with superstep exchange).  Mirrors
    /// the observer's [`ugs_queries::source::ShardSupport`] declaration —
    /// the capability test keeps the two from drifting.
    pub fn shard_mechanism(&self) -> &'static str {
        match self {
            QuerySpec::PairQueries { .. }
            | QuerySpec::Connectivity
            | QuerySpec::DegreeHistogram
            | QuerySpec::EdgeFrequency => "cut-correction",
            QuerySpec::PageRank { .. } | QuerySpec::Clustering | QuerySpec::Knn { .. } => "halo",
        }
    }

    /// [`QuerySpec::validate`] plus the shard-awareness check: with
    /// `num_shards > 1`, a spec without an exact sharded mechanism would be
    /// rejected with the typed [`SpecError::Unsupported`] — at validation
    /// time, never as a panic or a silently wrong answer.  (Every built-in
    /// spec currently has one, so the rejection arm guards future specs.)
    pub fn validate_sharded(&self, g: &UncertainGraph, num_shards: usize) -> Result<(), SpecError> {
        self.validate(g)?;
        if num_shards > 1 && !self.supports_sharded() {
            return Err(SpecError::Unsupported {
                query: self.kind().to_string(),
                shards: num_shards,
            });
        }
        Ok(())
    }

    /// Validates the spec against `g` and builds its type-erased observer —
    /// the entry a heterogeneous batch/service registry stores.
    pub fn make_observer(&self, g: &UncertainGraph) -> Result<BoxedObserver, SpecError> {
        self.validate(g)?;
        Ok(match self {
            QuerySpec::PageRank {
                damping,
                max_iterations,
                tolerance,
            } => BoxedObserver::new(PageRankObserver::with_config(
                g,
                PageRankConfig {
                    damping: *damping,
                    max_iterations: *max_iterations,
                    tolerance: *tolerance,
                },
            )),
            QuerySpec::Clustering => BoxedObserver::new(ClusteringObserver::new(g)),
            QuerySpec::PairQueries { pairs } => BoxedObserver::new(PairQueriesObserver::new(pairs)),
            QuerySpec::Connectivity => BoxedObserver::new(ConnectivityObserver::new(g)),
            QuerySpec::DegreeHistogram => BoxedObserver::new(DegreeHistogramObserver::new(g)),
            QuerySpec::Knn { source, k } => BoxedObserver::new(KnnObserver::new(g, *source, *k)),
            QuerySpec::EdgeFrequency => BoxedObserver::new(EdgeFrequencyObserver::new(g)),
        })
    }

    /// Downcasts the erased observer output produced by this spec's
    /// observer back into the typed [`QueryResult`].  Returns `None` if the
    /// output does not belong to this spec (an internal driver error).
    pub fn result_of(&self, output: Box<dyn Any>) -> Option<QueryResult> {
        Some(match self {
            QuerySpec::PageRank { .. } => QueryResult::PageRank(*output.downcast().ok()?),
            QuerySpec::Clustering => QueryResult::Clustering(*output.downcast().ok()?),
            QuerySpec::PairQueries { .. } => QueryResult::PairQueries(*output.downcast().ok()?),
            QuerySpec::Connectivity => QueryResult::Connectivity(*output.downcast().ok()?),
            QuerySpec::DegreeHistogram => QueryResult::DegreeHistogram(*output.downcast().ok()?),
            QuerySpec::Knn { .. } => QueryResult::Knn(*output.downcast().ok()?),
            QuerySpec::EdgeFrequency => QueryResult::EdgeFrequency(*output.downcast().ok()?),
        })
    }
}

fn optional_f64(value: &Value, key: &str, default: f64) -> Result<f64, SpecError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| SpecError::Json(format!("field {key:?} must be a number"))),
    }
}

/// `value[key]` as a non-negative integer, or `default` when absent (shared
/// with the plan-document parser).
pub(crate) fn optional_usize(value: &Value, key: &str, default: usize) -> Result<usize, SpecError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| {
            SpecError::Json(format!("field {key:?} must be a non-negative integer"))
        }),
    }
}

/// Parses an adaptive-precision block — the wire form of
/// [`ugs_queries::variance::Precision`]:
///
/// ```json
/// {"epsilon": 0.01, "delta": 0.05, "deadline_ms": 2000, "max_worlds": 50000}
/// ```
///
/// `epsilon` is required (finite, positive); `delta` is optional in `(0, 1)`
/// (default 0.05); `deadline_ms` and `max_worlds` are optional non-negative
/// integers.  Unknown keys are rejected naming the allowed set, like the
/// query-spec parsers.
pub fn parse_precision(value: &Value) -> Result<Precision, SpecError> {
    let entries = match value {
        Value::Obj(entries) => entries,
        _ => {
            return Err(SpecError::Json(
                "field \"precision\" must be an object".to_string(),
            ))
        }
    };
    const ALLOWED: [&str; 4] = ["epsilon", "delta", "deadline_ms", "max_worlds"];
    for (key, _) in entries {
        if !ALLOWED.contains(&key.as_str()) {
            return Err(SpecError::Json(format!(
                "unknown precision field {key:?}; expected epsilon|delta|deadline_ms|max_worlds"
            )));
        }
    }
    let epsilon = value
        .get("epsilon")
        .ok_or_else(|| {
            SpecError::Json("a precision block requires a number \"epsilon\"".to_string())
        })?
        .as_f64()
        .ok_or_else(|| SpecError::Json("field \"epsilon\" must be a number".to_string()))?;
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(SpecError::Json(format!(
            "field \"epsilon\" must be a finite positive number, got {epsilon}"
        )));
    }
    let mut precision = Precision::new(epsilon);
    if let Some(v) = value.get("delta") {
        let delta = v
            .as_f64()
            .ok_or_else(|| SpecError::Json("field \"delta\" must be a number".to_string()))?;
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SpecError::Json(format!(
                "field \"delta\" must lie strictly between 0 and 1, got {delta}"
            )));
        }
        precision = precision.with_delta(delta);
    }
    if value.get("deadline_ms").is_some() {
        let ms = optional_usize(value, "deadline_ms", 0)?;
        precision = precision.with_deadline(Duration::from_millis(ms as u64));
    }
    if value.get("max_worlds").is_some() {
        precision = precision.with_max_worlds(optional_usize(value, "max_worlds", 0)?);
    }
    Ok(precision)
}

/// Renders a [`Precision`] back to its JSON block (inverse of
/// [`parse_precision`]; the epoch size is an engine tuning knob, not part of
/// the wire format).
pub fn precision_to_json(precision: &Precision) -> Value {
    let mut builder = ObjBuilder::new()
        .field("epsilon", precision.epsilon)
        .field("delta", precision.delta);
    if let Some(deadline) = precision.deadline {
        builder = builder.field("deadline_ms", deadline.as_millis() as usize);
    }
    if let Some(max_worlds) = precision.max_worlds {
        builder = builder.field("max_worlds", max_worlds);
    }
    builder.build()
}

impl QueryResult {
    /// The canonical kind name, matching [`QuerySpec::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            QueryResult::PageRank(_) => "pagerank",
            QueryResult::Clustering(_) => "clustering",
            QueryResult::PairQueries(_) => "pair_queries",
            QueryResult::Connectivity(_) => "connectivity",
            QueryResult::DegreeHistogram(_) => "degree_histogram",
            QueryResult::Knn(_) => "knn",
            QueryResult::EdgeFrequency(_) => "edge_frequency",
        }
    }

    /// Serialises the result as `{"type": "<kind>", ...payload}`
    /// (non-finite numbers render as `null`, as everywhere in `minijson`).
    pub fn to_json(&self) -> Value {
        let builder = ObjBuilder::new().field("type", self.kind());
        let float_array = |xs: &[f64]| Value::Arr(xs.iter().map(|&x| Value::from(x)).collect());
        match self {
            QueryResult::PageRank(scores) => builder.field("scores", float_array(scores)).build(),
            QueryResult::Clustering(coefficients) => builder
                .field("coefficients", float_array(coefficients))
                .build(),
            QueryResult::PairQueries(result) => builder
                .field(
                    "pairs",
                    Value::Arr(
                        result
                            .pairs
                            .iter()
                            .map(|&(u, v)| Value::Arr(vec![u.into(), v.into()]))
                            .collect(),
                    ),
                )
                .field("mean_distance", float_array(&result.mean_distance))
                .field("reliability", float_array(&result.reliability))
                .field(
                    "connected_worlds",
                    Value::Arr(result.connected_worlds.iter().map(|&c| c.into()).collect()),
                )
                .field("num_worlds", result.num_worlds)
                .build(),
            QueryResult::Connectivity(estimate) => builder
                .field("probability_connected", estimate.probability_connected)
                .field("expected_components", estimate.expected_components)
                .field(
                    "expected_largest_component",
                    estimate.expected_largest_component,
                )
                .field(
                    "expected_isolated_fraction",
                    estimate.expected_isolated_fraction,
                )
                .field("num_worlds", estimate.num_worlds)
                .build(),
            QueryResult::DegreeHistogram(histogram) => {
                builder.field("histogram", float_array(histogram)).build()
            }
            QueryResult::Knn(neighbors) => builder
                .field(
                    "neighbors",
                    Value::Arr(
                        neighbors
                            .iter()
                            .map(|n| {
                                ObjBuilder::new()
                                    .field("vertex", n.vertex)
                                    .field("expected_distance", n.expected_distance)
                                    .field("reachability", n.reachability)
                                    .build()
                            })
                            .collect(),
                    ),
                )
                .build(),
            QueryResult::EdgeFrequency(frequencies) => builder
                .field("frequencies", float_array(frequencies))
                .build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap()
    }

    #[test]
    fn defaults_fill_in_for_omitted_parameters() {
        let spec = QuerySpec::parse_str(r#"{"type": "pagerank"}"#).unwrap();
        assert_eq!(spec, QuerySpec::pagerank());
        let spec = QuerySpec::parse_str(r#"{"type": "knn", "source": 2}"#).unwrap();
        assert_eq!(spec, QuerySpec::Knn { source: 2, k: 10 });
    }

    #[test]
    fn aliases_parse_to_canonical_variants() {
        for (alias, expected) in [
            ("pr", "pagerank"),
            ("cc", "clustering"),
            ("degree-hist", "degree_histogram"),
            ("edge-freq", "edge_frequency"),
        ] {
            let spec = QuerySpec::parse_str(&format!(r#"{{"type": "{alias}"}}"#)).unwrap();
            assert_eq!(spec.kind(), expected);
        }
        let spec = QuerySpec::parse_str(r#"{"type": "sp", "pairs": [[0, 1]]}"#).unwrap();
        assert_eq!(
            spec,
            QuerySpec::PairQueries {
                pairs: vec![(0, 1)]
            }
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            r#"{"type": "psychic"}"#,
            r#"{"worlds": 3}"#,
            r#"{"type": "knn"}"#,
            r#"{"type": "pair_queries"}"#,
            r#"{"type": "pair_queries", "pairs": [[0]]}"#,
            r#"{"type": "pair_queries", "pairs": [[0, -1]]}"#,
            r#"{"type": "pagerank", "damping": "high"}"#,
        ] {
            assert!(QuerySpec::parse_str(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn validation_checks_vertex_ranges_and_parameters() {
        let g = toy();
        assert!(QuerySpec::Knn { source: 3, k: 2 }.validate(&g).is_ok());
        assert!(QuerySpec::Knn { source: 4, k: 2 }.validate(&g).is_err());
        assert!(QuerySpec::PairQueries {
            pairs: vec![(0, 9)]
        }
        .validate(&g)
        .is_err());
        assert!(QuerySpec::PageRank {
            damping: 1.5,
            max_iterations: 10,
            tolerance: 1e-9
        }
        .validate(&g)
        .is_err());
        assert!(QuerySpec::pagerank().validate(&g).is_ok());
    }

    #[test]
    fn every_spec_passes_sharded_validation() {
        // Since the ghost-halo exchange, every built-in query has an exact
        // sharded mechanism — nothing is Unsupported on sharded sources.
        let g = toy();
        let specs = [
            QuerySpec::Connectivity,
            QuerySpec::DegreeHistogram,
            QuerySpec::EdgeFrequency,
            QuerySpec::PairQueries {
                pairs: vec![(0, 3)],
            },
            QuerySpec::pagerank(),
            QuerySpec::Clustering,
            QuerySpec::Knn { source: 0, k: 2 },
        ];
        for spec in &specs {
            assert!(spec.supports_sharded(), "{}", spec.kind());
            assert!(spec.validate_sharded(&g, 1).is_ok(), "{}", spec.kind());
            assert!(spec.validate_sharded(&g, 4).is_ok(), "{}", spec.kind());
        }
        // Ordinary validation errors still surface under sharded contexts.
        assert!(matches!(
            QuerySpec::PairQueries {
                pairs: vec![(0, 99)]
            }
            .validate_sharded(&g, 4),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn unsupported_error_names_the_mechanism_of_every_supported_query() {
        // Snapshot of the typed Unsupported message (raised only for future
        // shard-incompatible specs): operators must see which mechanism the
        // supported queries use, verbatim, on the service/plan error paths.
        let err = SpecError::Unsupported {
            query: "some_future_query".to_string(),
            shards: 4,
        };
        assert_eq!(
            err.to_string(),
            "query \"some_future_query\" does not support graph-sharded evaluation \
             (4 shards); every supported query declares its exact mechanism: \
             pair_queries/connectivity/degree_histogram/edge_frequency run via \
             cut-correction, pagerank/clustering/knn run via halo"
        );
    }

    #[test]
    fn shard_mechanism_names_cut_correction_or_halo() {
        let cut = [
            QuerySpec::PairQueries {
                pairs: vec![(0, 1)],
            },
            QuerySpec::Connectivity,
            QuerySpec::DegreeHistogram,
            QuerySpec::EdgeFrequency,
        ];
        let halo = [
            QuerySpec::pagerank(),
            QuerySpec::Clustering,
            QuerySpec::Knn { source: 0, k: 2 },
        ];
        for spec in &cut {
            assert_eq!(spec.shard_mechanism(), "cut-correction", "{}", spec.kind());
        }
        for spec in &halo {
            assert_eq!(spec.shard_mechanism(), "halo", "{}", spec.kind());
        }
    }

    #[test]
    fn supports_sharded_matches_the_observer_capability() {
        // `supports_sharded` is the validation-time answer; the observer's
        // `shard_support` is what the driver actually dispatches on.  They
        // must never drift: a mismatch would turn the typed Unsupported
        // error into a worker panic (spec says yes, observer says no) or
        // needlessly reject a capable query (the reverse).  The declared
        // mechanism string must match the capability too.
        use ugs_queries::source::ShardSupport;
        let g = toy();
        let specs = [
            QuerySpec::pagerank(),
            QuerySpec::Clustering,
            QuerySpec::PairQueries {
                pairs: vec![(0, 1)],
            },
            QuerySpec::Connectivity,
            QuerySpec::DegreeHistogram,
            QuerySpec::Knn { source: 0, k: 2 },
            QuerySpec::EdgeFrequency,
        ];
        for spec in specs {
            let observer = spec.make_observer(&g).unwrap();
            assert!(spec.supports_sharded(), "{}", spec.kind());
            let expected = match spec.shard_mechanism() {
                "cut-correction" => ShardSupport::CutAware,
                "halo" => ShardSupport::Halo,
                other => panic!("unknown mechanism {other}"),
            };
            assert_eq!(observer.shard_support(), expected, "{}", spec.kind());
        }
    }

    #[test]
    fn observer_output_round_trips_through_result_of() {
        let g = toy();
        let spec = QuerySpec::EdgeFrequency;
        let observer = spec.make_observer(&g).unwrap();
        let output = observer.finalize(0);
        match spec.result_of(output) {
            Some(QueryResult::EdgeFrequency(freq)) => assert_eq!(freq, vec![0.0; 3]),
            other => panic!("unexpected result {other:?}"),
        }
        // A foreign output type is reported as None, not a panic.
        let connectivity = QuerySpec::Connectivity.make_observer(&g).unwrap();
        assert!(spec.result_of(connectivity.finalize(0)).is_none());
    }

    #[test]
    fn result_json_includes_kind_and_payload() {
        let result = QueryResult::DegreeHistogram(vec![0.5, 1.5]);
        let json = result.to_json();
        assert_eq!(json.get_str("type"), Some("degree_histogram"));
        assert_eq!(json.get("histogram").unwrap().as_array().unwrap().len(), 2);
    }
}
