//! # ugs-service
//!
//! A **data-first query API** and a **sharded, streaming query service**
//! over the batched Monte-Carlo driver of `ugs-queries`.
//!
//! The query surfaces of this workspace started life as seven
//! statically-typed free functions.  That is the right shape for
//! straight-line Rust, but a server, a query-plan file or any caller that
//! only learns its query mix at run time needs queries *as data*.  This
//! crate provides that redesign in three layers:
//!
//! 1. **[`QuerySpec`] / [`QueryResult`]** — every query surface as an enum
//!    variant carrying its parameters, JSON-(de)serialisable via `minijson`.
//!    A spec validates itself against a graph, builds its type-erased
//!    observer (the [`ugs_queries::BoxedObserver`] registry entry) and
//!    recovers its typed result from the erased output.
//! 2. **[`QueryService`]** — a long-lived service owning persistent worker
//!    threads (one [`ugs_queries::WorldEngine`] each, built once).
//!    Submissions stream in over channels, are grouped into micro-batches
//!    by arrival window ([`BatchPolicy`]), and each micro-batch samples its
//!    worlds **once** for all member queries, sharding the *world budget*
//!    across the workers with the deterministic replay partitioning of
//!    [`ugs_queries::QueryBatch`] (workers re-derive the shared world
//!    stream from one batch seed and skip to their block via
//!    `WorldEngine::advance_world`; partials merge in worker order).  Every
//!    submission hands back a [`ResultTicket`].
//! 3. **[`QueryPlan`]** — a JSON plan document (graph + Monte-Carlo
//!    configuration + query list) that executes end-to-end through the
//!    service; the CLI's `ugs plan` and `ugs batch` subcommands are thin
//!    wrappers over it.
//!
//! A 1-worker service in a sequential sampling mode is **bit-identical** to
//! the legacy free functions (`tests/service_parity.rs`), and count-valued
//! accumulators are invariant to the worker count
//! (`tests/service_invariance.rs`).
//!
//! ## Example
//!
//! ```
//! use ugs_service::{BatchPolicy, QueryResult, QueryService, QuerySpec};
//! use uncertain_graph::UncertainGraph;
//!
//! let g = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap();
//! let policy = BatchPolicy {
//!     num_worlds: 300,
//!     threads: 2,
//!     ..BatchPolicy::default()
//! };
//! let service = QueryService::start(g, policy, 7);
//!
//! // Interleaved submissions; queries landing in one arrival window share
//! // one set of sampled worlds.
//! let connectivity = service.submit(QuerySpec::Connectivity);
//! let spec = QuerySpec::parse_str(r#"{"type": "knn", "source": 0, "k": 2}"#).unwrap();
//! let knn = service.submit(spec);
//!
//! match connectivity.wait().unwrap() {
//!     QueryResult::Connectivity(estimate) => assert!(estimate.probability_connected <= 1.0),
//!     other => panic!("unexpected result {other:?}"),
//! }
//! match knn.wait().unwrap() {
//!     QueryResult::Knn(neighbors) => assert_eq!(neighbors[0].vertex, 1),
//!     other => panic!("unexpected result {other:?}"),
//! }
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.queries, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod service;
pub mod spec;

pub use plan::{mode_name, parse_mode, QueryPlan};
pub use service::{
    BatchPolicy, QueryAnswer, QueryService, ResultTicket, ServiceError, ServiceStats,
};
pub use spec::{parse_precision, precision_to_json, QueryResult, QuerySpec, SpecError};
