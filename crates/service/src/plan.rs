//! JSON query plans: a [`QueryPlan`] bundles a list of [`QuerySpec`]s with
//! the Monte-Carlo configuration they share, parses from a plan document and
//! executes end-to-end through a [`QueryService`].
//!
//! The plan document is the file format of the CLI's `ugs plan` subcommand:
//!
//! ```json
//! {
//!   "graph": "graph.txt",
//!   "worlds": 400,
//!   "threads": 2,
//!   "mode": "skip",
//!   "seed": 7,
//!   "queries": [
//!     {"type": "pagerank"},
//!     {"type": "connectivity"},
//!     {"type": "knn", "source": 0, "k": 5}
//!   ]
//! }
//! ```
//!
//! Every field except `queries` is optional (`graph` may instead be given by
//! the caller, and `worlds`/`threads`/`mode`/`seed` take the defaults
//! below).  Execution runs the whole plan as **one** micro-batch — all
//! queries share one set of sampled worlds, exactly like a single
//! [`ugs_queries::QueryBatch`] — sharded across `threads` service workers.
//!
//! An optional `"precision": {"epsilon": 0.01, "delta": 0.05, "deadline_ms":
//! 2000, "max_worlds": 50000}` block makes the batch **adaptive**: `worlds`
//! becomes a cap and sampling stops at the first epoch whose pooled
//! empirical-Bernstein half-width reaches `epsilon`; report entries then
//! carry `worlds_used` and the achieved `half_width`.

use std::sync::Arc;
use std::time::Duration;

use minijson::{ObjBuilder, Value};
use uncertain_graph::UncertainGraph;

use ugs_queries::engine::SampleMethod;
use ugs_queries::variance::Precision;

use crate::service::{BatchPolicy, QueryAnswer, QueryService, ServiceError};
use crate::spec::{
    optional_usize, parse_precision, precision_to_json, QueryResult, QuerySpec, SpecError,
};

/// A parsed query-plan document; see the [module docs](self) for the JSON
/// shape.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Path of the graph to query, if the plan names one (the CLI lets a
    /// positional argument override it).
    pub graph: Option<String>,
    /// Shared world budget (default 500).
    pub worlds: usize,
    /// Service workers the world budget is sharded across (default 1).
    pub threads: usize,
    /// Graph-shard count (default 1 = monolithic).  With more shards every
    /// query must have a shard-aware path; see
    /// [`crate::spec::QuerySpec::validate_sharded`].
    pub shards: usize,
    /// World-sampling method (default [`SampleMethod::Auto`]).
    pub mode: SampleMethod,
    /// Service seed (default 42).
    pub seed: u64,
    /// Optional adaptive-precision target (`"precision": {"epsilon": …}`):
    /// turns [`QueryPlan::worlds`] into a cap and stops sampling at the
    /// first epoch whose pooled confidence half-width reaches the target.
    /// See [`crate::service::BatchPolicy::precision`].
    pub precision: Option<Precision>,
    /// The queries, answered in order.
    pub queries: Vec<QuerySpec>,
}

/// Wraps a query-spec parse failure with the **index and name** of the
/// failing entry in the plan's `queries` array, so a 40-query plan document
/// points straight at the culprit instead of raising a bare spec error.
fn plan_query_error(index: usize, entry: &Value, error: SpecError) -> SpecError {
    let name = entry.get_str("type").unwrap_or("<missing type>");
    match error {
        SpecError::Json(message) => {
            SpecError::Json(format!("queries[{index}] (\"{name}\"): {message}"))
        }
        SpecError::Invalid(message) => {
            SpecError::Invalid(format!("queries[{index}] (\"{name}\"): {message}"))
        }
        other => other,
    }
}

/// Parses a `mode` string (`auto` | `skip` | `per-edge`).
pub fn parse_mode(name: &str) -> Option<SampleMethod> {
    match name {
        "auto" => Some(SampleMethod::Auto),
        "skip" => Some(SampleMethod::Skip),
        "per-edge" | "peredge" => Some(SampleMethod::PerEdge),
        _ => None,
    }
}

/// The canonical name of a [`SampleMethod`] (inverse of [`parse_mode`]).
pub fn mode_name(mode: SampleMethod) -> &'static str {
    match mode {
        SampleMethod::Auto => "auto",
        SampleMethod::Skip => "skip",
        SampleMethod::PerEdge => "per-edge",
    }
}

impl QueryPlan {
    /// Parses a plan document.
    pub fn parse(value: &Value) -> Result<QueryPlan, SpecError> {
        let graph = match value.get("graph") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| SpecError::Json("field \"graph\" must be a string".to_string()))?
                    .to_string(),
            ),
        };
        let worlds = optional_usize(value, "worlds", 500)?;
        let threads = optional_usize(value, "threads", 1)?;
        let shards = optional_usize(value, "shards", 1)?;
        let mode = match value.get("mode") {
            None => SampleMethod::Auto,
            Some(v) => {
                let name = v.as_str().ok_or_else(|| {
                    SpecError::Json("field \"mode\" must be a string".to_string())
                })?;
                parse_mode(name).ok_or_else(|| {
                    SpecError::Json(format!(
                        "unknown mode {name:?}; expected auto|skip|per-edge"
                    ))
                })?
            }
        };
        let seed = match value.get("seed") {
            None => 42,
            Some(v) => v.as_usize().ok_or_else(|| {
                SpecError::Json("field \"seed\" must be a non-negative integer".to_string())
            })? as u64,
        };
        let precision = match value.get("precision") {
            None => None,
            Some(v) => Some(parse_precision(v).map_err(|error| match error {
                SpecError::Json(message) => SpecError::Json(format!("precision: {message}")),
                other => other,
            })?),
        };
        let queries = value
            .get("queries")
            .and_then(Value::as_array)
            .ok_or_else(|| {
                SpecError::Json("a plan requires an array field \"queries\"".to_string())
            })?
            .iter()
            .enumerate()
            .map(|(index, entry)| {
                QuerySpec::parse(entry).map_err(|error| plan_query_error(index, entry, error))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if queries.is_empty() {
            return Err(SpecError::Json(
                "a plan must contain at least one query".to_string(),
            ));
        }
        Ok(QueryPlan {
            graph,
            worlds,
            threads,
            shards,
            mode,
            seed,
            precision,
            queries,
        })
    }

    /// Parses a plan from a JSON string.
    pub fn parse_str(json: &str) -> Result<QueryPlan, SpecError> {
        let value = Value::parse(json).map_err(|e| SpecError::Json(e.to_string()))?;
        Self::parse(&value)
    }

    /// Serialises the plan back to its JSON document.
    pub fn to_json(&self) -> Value {
        let mut builder = ObjBuilder::new();
        if let Some(graph) = &self.graph {
            builder = builder.field("graph", graph.as_str());
        }
        builder = builder
            .field("worlds", self.worlds)
            .field("threads", self.threads)
            .field("shards", self.shards)
            .field("mode", mode_name(self.mode))
            .field("seed", self.seed as usize);
        if let Some(precision) = &self.precision {
            builder = builder.field("precision", precision_to_json(precision));
        }
        builder
            .field(
                "queries",
                Value::Arr(self.queries.iter().map(QuerySpec::to_json).collect()),
            )
            .build()
    }

    /// Executes the plan against `graph` through a [`QueryService`]: one
    /// micro-batch containing every query (shared sampled worlds), sharded
    /// across [`QueryPlan::threads`] workers.  Results come back in plan
    /// order.
    pub fn execute(
        &self,
        graph: impl Into<Arc<UncertainGraph>>,
    ) -> Vec<Result<QueryResult, ServiceError>> {
        self.execute_detailed(graph)
            .into_iter()
            .map(|outcome| outcome.map(|answer| answer.result))
            .collect()
    }

    /// Like [`QueryPlan::execute`], but keeps each answer's effort metadata
    /// (worlds consumed, achieved half-width under a
    /// [`QueryPlan::precision`] target).
    pub fn execute_detailed(
        &self,
        graph: impl Into<Arc<UncertainGraph>>,
    ) -> Vec<Result<QueryAnswer, ServiceError>> {
        self.execute_detailed_with_cancel(graph, None)
    }

    /// Like [`QueryPlan::execute_detailed`], with a caller-owned cooperative
    /// cancellation flag.  Raising the flag aborts an **adaptive** plan at
    /// its next epoch checkpoint: the answers still arrive (reflecting the
    /// worlds consumed up to the abort) instead of running to the full
    /// budget.  Fixed-budget plans ignore the flag.
    pub fn execute_detailed_with_cancel(
        &self,
        graph: impl Into<Arc<UncertainGraph>>,
        cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    ) -> Vec<Result<QueryAnswer, ServiceError>> {
        let graph = graph.into();
        let policy = self.policy();
        // Refuse a policy the scheduler could not run *before* starting the
        // service: every query resolves with the same typed error.
        if let Err(error) = policy.validate_for(&graph) {
            return self.queries.iter().map(|_| Err(error.clone())).collect();
        }
        let service = QueryService::start_with_cancel(graph, policy, self.seed, cancel);
        let tickets: Vec<_> = self
            .queries
            .iter()
            .map(|spec| service.submit(spec.clone()))
            .collect();
        let results = tickets
            .into_iter()
            .map(|ticket| ticket.wait_detailed())
            .collect();
        service.shutdown();
        results
    }

    /// The [`BatchPolicy`] the plan executes under: the whole plan is one
    /// arrival window — flush on the exact query count, with a timer that
    /// cannot fire first.
    pub fn policy(&self) -> BatchPolicy {
        BatchPolicy {
            max_wait: Duration::from_secs(3600),
            max_queries: self.queries.len(),
            num_worlds: self.worlds,
            threads: self.threads,
            mode: self.mode,
            shards: self.shards,
            precision: self.precision,
        }
    }

    /// Executes the plan and renders the full JSON report the CLI prints:
    /// the configuration, then one entry per query with its spec and its
    /// result (or error).
    pub fn run_report(&self, graph: impl Into<Arc<UncertainGraph>>, graph_label: &str) -> Value {
        let results = self.execute_detailed(graph);
        self.report_for(graph_label, &results)
    }

    /// Renders the report envelope for already-computed answers — the same
    /// bytes [`QueryPlan::run_report`] produces for a fresh run.  This is
    /// the seam a result cache needs: answers replayed from the cache and
    /// answers from a live execution flow through one renderer, so
    /// bit-identical answers yield bit-identical reports.
    pub fn report_for(
        &self,
        graph_label: &str,
        results: &[Result<QueryAnswer, ServiceError>],
    ) -> Value {
        let entries = self
            .queries
            .iter()
            .zip(results)
            .map(|(spec, outcome)| {
                let entry = ObjBuilder::new().field("query", spec.to_json());
                match outcome {
                    Ok(answer) => {
                        let mut entry = entry
                            .field("status", "ok")
                            .field("result", answer.result.to_json())
                            .field("worlds_used", answer.worlds_used);
                        // Infinite means "nothing was tracked": omit rather
                        // than render minijson's `null`.
                        if let Some(half_width) = answer.half_width.filter(|hw| hw.is_finite()) {
                            entry = entry.field("half_width", half_width);
                        }
                        entry.build()
                    }
                    Err(error) => entry
                        .field("status", "error")
                        .field("error", error.to_string())
                        .build(),
                }
            })
            .collect();
        let mut report = ObjBuilder::new()
            .field("graph", graph_label)
            .field("worlds", self.worlds)
            .field("threads", self.threads)
            .field("shards", self.shards)
            .field("mode", mode_name(self.mode))
            .field("seed", self.seed as usize);
        if let Some(precision) = &self.precision {
            report = report.field("precision", precision_to_json(precision));
        }
        report.field("results", Value::Arr(entries)).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_with_defaults_and_round_trip() {
        let plan = QueryPlan::parse_str(
            r#"{"queries": [{"type": "connectivity"}, {"type": "knn", "source": 1, "k": 2}]}"#,
        )
        .unwrap();
        assert_eq!(plan.graph, None);
        assert_eq!(plan.worlds, 500);
        assert_eq!(plan.threads, 1);
        assert_eq!(plan.mode, SampleMethod::Auto);
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.queries.len(), 2);
        let back = QueryPlan::parse(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            r#"{"queries": []}"#,
            r#"{"worlds": 10}"#,
            r#"{"queries": [{"type": "psychic"}]}"#,
            r#"{"queries": [{"type": "pagerank"}], "mode": "psychic"}"#,
            r#"{"queries": [{"type": "pagerank"}], "graph": 3}"#,
        ] {
            assert!(QueryPlan::parse_str(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn query_parse_errors_name_the_failing_entry() {
        // The second entry is broken: the error must carry its index and
        // its declared type, not just the bare spec error.
        let error = QueryPlan::parse_str(
            r#"{"queries": [{"type": "connectivity"}, {"type": "knn"}, {"type": "pagerank"}]}"#,
        )
        .unwrap_err();
        let message = error.to_string();
        assert!(message.contains("queries[1]"), "{message}");
        assert!(message.contains("\"knn\""), "{message}");
        assert!(message.contains("source"), "{message}");
        // An entry with no type field is named as such.
        let error = QueryPlan::parse_str(r#"{"queries": [{"worlds": 5}]}"#).unwrap_err();
        let message = error.to_string();
        assert!(message.contains("queries[0]"), "{message}");
        assert!(message.contains("<missing type>"), "{message}");
    }

    #[test]
    fn sharded_plans_execute_and_match_the_monolithic_results() {
        let g = UncertainGraph::from_edges(
            5,
            [
                (0, 1, 0.9),
                (1, 2, 0.5),
                (2, 3, 0.7),
                (3, 4, 0.4),
                (4, 0, 0.6),
            ],
        )
        .unwrap();
        let run = |shards: usize| {
            let plan = QueryPlan::parse_str(&format!(
                r#"{{"worlds": 150, "seed": 3, "shards": {shards},
                    "queries": [{{"type": "edge_frequency"}}, {{"type": "connectivity"}}]}}"#
            ))
            .unwrap();
            assert_eq!(plan.shards, shards);
            plan.execute(g.clone())
        };
        let monolithic = run(1);
        let sharded = run(2);
        for (a, b) in monolithic.iter().zip(&sharded) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn sharded_plans_answer_halo_queries_too() {
        // Since the ghost-halo exchange every built-in query runs on a
        // sharded plan: the former per-entry Unsupported rejection is gone.
        let g = UncertainGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 0.5)]).unwrap();
        let plan = QueryPlan::parse_str(
            r#"{"worlds": 40, "seed": 1, "shards": 2,
                "queries": [{"type": "pagerank"}, {"type": "degree_histogram"},
                            {"type": "clustering"}, {"type": "knn", "source": 0}]}"#,
        )
        .unwrap();
        let results = plan.execute(g);
        for (i, result) in results.iter().enumerate() {
            assert!(result.is_ok(), "entry {i}: {result:?}");
        }
    }

    #[test]
    fn execute_answers_in_plan_order() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 0.5)]).unwrap();
        let plan = QueryPlan::parse_str(
            r#"{"worlds": 100, "seed": 3,
                "queries": [{"type": "edge_frequency"}, {"type": "connectivity"}]}"#,
        )
        .unwrap();
        let results = plan.execute(g);
        assert!(matches!(results[0], Ok(QueryResult::EdgeFrequency(_))));
        assert!(matches!(results[1], Ok(QueryResult::Connectivity(_))));
    }

    #[test]
    fn run_report_is_deterministic_and_reports_errors_per_query() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 0.5)]).unwrap();
        let plan = QueryPlan::parse_str(
            r#"{"worlds": 60, "seed": 5, "threads": 2,
                "queries": [{"type": "pagerank"}, {"type": "knn", "source": 99}]}"#,
        )
        .unwrap();
        let report_a = plan.run_report(g.clone(), "toy").render();
        let report_b = plan.run_report(g, "toy").render();
        assert_eq!(report_a, report_b, "same plan, same report");
        let doc = Value::parse(&report_a).unwrap();
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get_str("status"), Some("ok"));
        assert_eq!(results[1].get_str("status"), Some("error"));
        assert!(results[1]
            .get_str("error")
            .unwrap()
            .contains("out of range"));
    }
}
