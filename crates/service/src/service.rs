//! The long-lived, sharded, streaming query service over the batch driver.
//!
//! A [`QueryService`] owns one graph, one [`WorldEngine`] (the
//! `O(|E| log |E|)` skip order and CSR template are built once per service,
//! not once per query) and a pool of persistent worker threads sharing that
//! engine, each with its own reusable [`ugs_queries::WorldScratch`].
//! Submissions stream in over a channel as [`QuerySpec`]s; a scheduler
//! thread groups them into **micro-batches** by arrival window
//! ([`BatchPolicy`]) and runs each micro-batch as one shared sampling pass:
//!
//! * the scheduler draws **one** batch seed per micro-batch from its own
//!   deterministic RNG stream (seeded at [`QueryService::start`]);
//! * the **world budget** is sharded across the workers with the same
//!   deterministic replay partitioning as
//!   [`QueryBatch`](ugs_queries::QueryBatch): worker `w` re-derives the
//!   shared world stream from the batch seed, skips past the worlds before
//!   its contiguous block via [`WorldEngine::advance_world`] and observes
//!   its own block, so the sampled world sequence is identical for every
//!   worker count;
//! * partial observers return over a channel and are merged in worker
//!   (= world block) order with `WorldObserver::merge`, then redeemed
//!   through the fallible
//!   [`BatchResults::try_take_boxed`](ugs_queries::BatchResults::try_take_boxed)
//!   path — a long-lived service must never panic on a redemption.
//!
//! Each submission hands back a [`ResultTicket`] that resolves to the
//! query's [`QueryResult`] (or a [`ServiceError`]) once its micro-batch
//! completes.
//!
//! ## Determinism
//!
//! For a fixed service seed, submission order and [`BatchPolicy`], results
//! are reproducible **given the same micro-batch grouping**.  The grouping
//! itself is deterministic when windows close on the
//! [`BatchPolicy::max_queries`] count (submissions arrive faster than
//! [`BatchPolicy::max_wait`], or `max_wait` is large); a window closed by
//! the wall-clock timer may split differently on a loaded machine, moving
//! queries into micro-batches with different seeds.  Batch-sensitive
//! callers (the plan executor, the test suites) therefore use
//! count-driven windows.  Within a micro-batch, count-valued accumulators
//! are invariant to the worker count, and a 1-worker service in a
//! sequential sampling mode is **bit-identical** to the legacy free
//! functions: micro-batch `k` consumes the `k`-th `u64` of the service RNG
//! stream, exactly like the `k`-th legacy call on a caller RNG seeded the
//! same way (guarded by `tests/service_parity.rs`).
//!
//! ## Adaptive precision
//!
//! With [`BatchPolicy::precision`] set, `num_worlds` becomes a cap and each
//! micro-batch runs through the epoch-synchronised adaptive driver
//! ([`ugs_queries::run_adaptive_merged`]) instead of the fixed-skip pool:
//! workers sample fixed world-blocks per epoch and a barrier checkpoint
//! pools an empirical-Bernstein bound, so the worlds consumed — and every
//! count-valued answer — are invariant over the worker count.  The seed
//! discipline is unchanged (micro-batch `k` still consumes the `k`-th
//! service-stream draw), and policies without a precision target take the
//! fixed path untouched, bit for bit.

use std::sync::atomic::AtomicBool;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::{GraphPartition, UncertainGraph};

use ugs_queries::batch::{run_adaptive_cancellable, AdaptiveReport, BatchResults, BoxedObserver};
use ugs_queries::engine::{SampleMethod, WorldEngine};
use ugs_queries::sharded::ShardedWorldEngine;
use ugs_queries::source::{ShardSupport, WorldSource};
use ugs_queries::variance::Precision;

use crate::spec::{QueryResult, QuerySpec, SpecError};

/// How a [`QueryService`] forms and runs micro-batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// How long the scheduler waits for more submissions after the first
    /// one of a window before running the micro-batch.
    pub max_wait: Duration,
    /// Submission count that flushes the window immediately (a micro-batch
    /// never exceeds this many queries; `0` behaves as `1`).
    pub max_queries: usize,
    /// World budget of one micro-batch (shared by all its queries).
    pub num_worlds: usize,
    /// Number of persistent workers the world budget is sharded across.
    pub threads: usize,
    /// World-sampling method of every worker engine.
    pub mode: SampleMethod,
    /// Graph-shard count: `0` or `1` evaluates monolithically; with more
    /// shards the service partitions the **graph** (contiguous vertex
    /// ranges) and every worker runs a shard-aware
    /// [`ugs_queries::ShardedWorldEngine`] over it.  The sharded engine
    /// replays the monolithic edge stream, so count-style results are
    /// bit-identical for any shard count; queries without a cut correction
    /// are rejected at validation time with [`SpecError::Unsupported`].
    pub shards: usize,
    /// Optional adaptive-precision target.  `None` (the default) runs every
    /// micro-batch with the fixed [`BatchPolicy::num_worlds`] budget,
    /// bit-identical to the pre-adaptive service.  `Some` turns
    /// `num_worlds` into a *cap*: each micro-batch samples in epochs and
    /// stops at the first checkpoint whose pooled empirical-Bernstein
    /// half-width reaches the target — the worlds consumed are a
    /// deterministic function of the batch seed and the target, invariant
    /// over [`BatchPolicy::threads`].  Tickets report the consumed worlds
    /// and the achieved half-width through [`ResultTicket::wait_detailed`].
    pub precision: Option<Precision>,
}

impl BatchPolicy {
    /// Validates the policy against the graph it will serve — the same
    /// checks the scheduler performs, surfaced at construction/submission
    /// time so front-ends can refuse a misconfigured service up front
    /// instead of having every ticket resolve with
    /// [`ServiceError::Policy`].  For sharded policies this builds (and
    /// discards) the contiguous partition, so it costs `O(|V| + |E|)`;
    /// call it once per service, not per query.
    pub fn validate_for(&self, graph: &UncertainGraph) -> Result<(), ServiceError> {
        if self.shards > 1 {
            GraphPartition::contiguous(graph, self.shards)
                .map_err(|error| ServiceError::Policy(error.to_string()))?;
        }
        Ok(())
    }
}

impl Default for BatchPolicy {
    /// 500 worlds, 1 worker, automatic sampling, monolithic graph, windows
    /// of up to 8 queries or 2 ms.
    fn default() -> Self {
        BatchPolicy {
            max_wait: Duration::from_millis(2),
            max_queries: 8,
            num_worlds: 500,
            threads: 1,
            mode: SampleMethod::Auto,
            shards: 1,
            precision: None,
        }
    }
}

/// Why a submission failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The spec did not validate against the service's graph.
    Spec(SpecError),
    /// The [`BatchPolicy`] does not fit the service's graph (e.g. its shard
    /// count yields no valid partition); every submission to such a service
    /// resolves with this error instead of panicking a worker thread.
    Policy(String),
    /// The service shut down before answering.
    Stopped,
    /// A distributed worker process was lost (connection died, timed out,
    /// or exhausted its bounded retries) and the plan could not complete.
    /// The coordinator degrades to this typed error instead of hanging.
    WorkerLost(String),
    /// An internal driver invariant broke (worker loss, redemption error).
    Internal(String),
}

impl ServiceError {
    /// Whether re-running the same submission may succeed.
    ///
    /// [`ServiceError::WorkerLost`] names a **transient fleet condition**:
    /// the worker may be respawned by a supervisor or its shard failed over
    /// to a standby, so a caller (or an outer retry loop) may usefully
    /// resubmit.  Every other variant is deterministic — the same spec,
    /// policy or invariant would fail identically again — and must surface
    /// to the caller as fatal.
    pub fn retryable(&self) -> bool {
        matches!(self, ServiceError::WorkerLost(_))
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Spec(e) => write!(f, "{e}"),
            ServiceError::Policy(m) => write!(f, "batch policy rejected: {m}"),
            ServiceError::Stopped => write!(f, "query service stopped before answering"),
            ServiceError::WorkerLost(m) => write!(f, "worker_lost: {m}"),
            ServiceError::Internal(m) => write!(f, "internal query service error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SpecError> for ServiceError {
    fn from(e: SpecError) -> Self {
        ServiceError::Spec(e)
    }
}

/// Counters reported by [`QueryService::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Micro-batches that ran (at least one valid query each).
    pub micro_batches: usize,
    /// Queries answered (including spec rejections).
    pub queries: usize,
    /// Queries rejected at validation ([`ServiceError::Spec`]).
    pub rejected: usize,
    /// Total worlds sampled across all micro-batches (per worker stream,
    /// excluding replayed skips).
    pub worlds_sampled: usize,
}

/// A resolved submission: the typed result plus the sampling effort its
/// micro-batch actually spent.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The typed query result.
    pub result: QueryResult,
    /// Worlds the micro-batch sampled — equal to
    /// [`BatchPolicy::num_worlds`] for fixed-budget batches, possibly fewer
    /// under a [`BatchPolicy::precision`] target.
    pub worlds_used: usize,
    /// Achieved pooled half-width at the stopping checkpoint; `None` for
    /// fixed-budget batches (no stopping rule ran).
    pub half_width: Option<f64>,
}

/// Resolves to the [`QueryResult`] of one submission.
///
/// A ticket can never hang past its service: a scheduler or worker that
/// dies drops the reply sender, which every waiting/polling path maps to a
/// typed [`ServiceError::Stopped`] instead of blocking forever.  Once an
/// outcome arrives it is latched, so [`ResultTicket::try_wait`] /
/// [`ResultTicket::wait_timeout`] probes followed by a final
/// [`ResultTicket::wait`] all see the same answer.
#[derive(Debug)]
pub struct ResultTicket {
    rx: Receiver<Result<QueryAnswer, ServiceError>>,
    settled: Option<Result<QueryAnswer, ServiceError>>,
}

impl ResultTicket {
    /// Creates an unresolved ticket plus the sender that settles it — the
    /// seam an **external executor** (e.g. the distributed coordinator)
    /// needs to answer through the same ticket surface as the in-process
    /// service.  Dropping the sender unresolved settles the ticket with
    /// [`ServiceError::Stopped`], preserving the no-hang contract.
    pub fn pending() -> (Sender<Result<QueryAnswer, ServiceError>>, ResultTicket) {
        let (reply, rx) = mpsc::channel();
        (reply, ResultTicket { rx, settled: None })
    }

    /// Blocks until the submission's micro-batch completes.
    pub fn wait(self) -> Result<QueryResult, ServiceError> {
        self.wait_detailed().map(|answer| answer.result)
    }

    /// Blocks like [`ResultTicket::wait`] but keeps the effort metadata
    /// (worlds consumed, achieved half-width) alongside the result.
    pub fn wait_detailed(mut self) -> Result<QueryAnswer, ServiceError> {
        match self.settled.take() {
            Some(outcome) => outcome,
            None => self.rx.recv().unwrap_or(Err(ServiceError::Stopped)),
        }
    }

    /// Waits up to `timeout`; `None` means the result is not ready yet.
    /// A ready outcome is latched, so later calls (and a final
    /// [`ResultTicket::wait`]) return the same answer.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<QueryResult, ServiceError>> {
        if self.settled.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(outcome) => self.settled = Some(outcome),
                Err(RecvTimeoutError::Timeout) => return None,
                Err(RecvTimeoutError::Disconnected) => {
                    self.settled = Some(Err(ServiceError::Stopped))
                }
            }
        }
        self.settled
            .as_ref()
            .map(|outcome| outcome.clone().map(|answer| answer.result))
    }

    /// Non-blocking probe: `None` while the micro-batch is still running,
    /// `Some` once the outcome is available (latched thereafter).  The
    /// polling loop a network front-end needs — it must never park a
    /// connection thread on a ticket.
    pub fn try_wait(&mut self) -> Option<&Result<QueryAnswer, ServiceError>> {
        if self.settled.is_none() {
            match self.rx.try_recv() {
                Ok(outcome) => self.settled = Some(outcome),
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => self.settled = Some(Err(ServiceError::Stopped)),
            }
        }
        self.settled.as_ref()
    }

    /// Abandons the submission.  The micro-batch still runs (its worlds are
    /// shared with the window's other queries), but the answer is discarded:
    /// the scheduler's reply send fails silently on the dropped channel.
    /// Equivalent to dropping the ticket; spelled out for front-ends with an
    /// explicit cancel surface.
    pub fn cancel(self) {
        drop(self);
    }
}

struct Submission {
    spec: QuerySpec,
    reply: Sender<Result<QueryAnswer, ServiceError>>,
}

struct WorkerJob {
    /// Micro-batch sequence number, echoed back with the partial so the
    /// scheduler can discard partials of an abandoned earlier batch.
    seq: u64,
    seed: u64,
    skip: usize,
    count: usize,
    observers: Vec<BoxedObserver>,
}

/// A long-lived query service over one uncertain graph; see the
/// [module docs](self) for the architecture and determinism contract.
#[derive(Debug)]
pub struct QueryService {
    submit_tx: Option<Sender<Submission>>,
    scheduler: Option<JoinHandle<ServiceStats>>,
}

impl QueryService {
    /// Starts the service: spawns `policy.threads` persistent workers (each
    /// building its own [`WorldEngine`] over the shared graph) plus the
    /// micro-batching scheduler.  `seed` fixes the service's deterministic
    /// batch-seed stream.
    pub fn start(
        graph: impl Into<Arc<UncertainGraph>>,
        policy: BatchPolicy,
        seed: u64,
    ) -> QueryService {
        QueryService::start_with_cancel(graph, policy, seed, None)
    }

    /// [`QueryService::start`] with a cooperative cancellation flag shared
    /// with the caller: while the flag is raised, **adaptive** micro-batches
    /// abort at their next epoch checkpoint (worlds consumed so far are
    /// still observed and reported with [`ugs_queries::StopReason::Cancelled`]);
    /// fixed-budget batches run to completion as before.  The caller owns
    /// the flag and may clear it again between submissions.
    pub fn start_with_cancel(
        graph: impl Into<Arc<UncertainGraph>>,
        policy: BatchPolicy,
        seed: u64,
        cancel: Option<Arc<AtomicBool>>,
    ) -> QueryService {
        let graph = graph.into();
        let (submit_tx, submit_rx) = mpsc::channel();
        let scheduler =
            std::thread::spawn(move || scheduler_loop(graph, policy, seed, submit_rx, cancel));
        QueryService {
            submit_tx: Some(submit_tx),
            scheduler: Some(scheduler),
        }
    }

    /// Submits a query; the returned ticket resolves once the query's
    /// micro-batch has run.  Submissions in one arrival window share the
    /// window's sampled worlds.
    pub fn submit(&self, spec: QuerySpec) -> ResultTicket {
        let (reply, rx) = mpsc::channel();
        if let Some(tx) = &self.submit_tx {
            // A send error means the scheduler is gone; the dropped reply
            // sender makes the ticket resolve to `ServiceError::Stopped`.
            let _ = tx.send(Submission { spec, reply });
        }
        ResultTicket { rx, settled: None }
    }

    /// Flushes the pending window, stops the workers and returns the run's
    /// counters.  Outstanding tickets resolve before this returns.
    pub fn shutdown(mut self) -> ServiceStats {
        self.submit_tx.take();
        self.scheduler
            .take()
            .and_then(|handle| handle.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.submit_tx.take();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

/// Spawns the persistent worker pool and drives the micro-batching loop
/// until the submit channel disconnects.  The pool uses scoped threads so
/// every worker shares **one** borrowed [`WorldEngine`] — the
/// `O(|E| log |E|)` construction is paid once per service, exactly like
/// `QueryBatch::run` sharing its engine by reference; only the per-thread
/// scratch is per worker.
fn scheduler_loop(
    graph: Arc<UncertainGraph>,
    policy: BatchPolicy,
    seed: u64,
    submit_rx: Receiver<Submission>,
    cancel: Option<Arc<AtomicBool>>,
) -> ServiceStats {
    if policy.shards > 1 {
        // A labelling that yields no valid partition must not bring the
        // scheduler thread down (that would strand every in-flight ticket
        // behind a `Stopped` at best, a hang at worst in older revisions):
        // the service stays up and answers each submission with the typed
        // policy error instead.
        let partition = match GraphPartition::contiguous(&graph, policy.shards) {
            Ok(partition) => partition,
            Err(error) => {
                return refuse_all(submit_rx, &ServiceError::Policy(error.to_string()));
            }
        };
        let engine = ShardedWorldEngine::new(&graph, &partition).with_method(policy.mode);
        run_worker_pool(&graph, &engine, policy, seed, submit_rx, cancel)
    } else {
        let engine = WorldEngine::new(&graph).with_method(policy.mode);
        run_worker_pool(&graph, &engine, policy, seed, submit_rx, cancel)
    }
}

/// Degraded-mode scheduler loop for a service whose policy cannot run:
/// resolves every submission with the same typed error until shutdown.
fn refuse_all(submit_rx: Receiver<Submission>, error: &ServiceError) -> ServiceStats {
    let mut stats = ServiceStats::default();
    while let Ok(submission) = submit_rx.recv() {
        stats.queries += 1;
        stats.rejected += 1;
        let _ = submission.reply.send(Err(error.clone()));
    }
    stats
}

/// The worker pool + micro-batching loop, generic over the
/// [`WorldSource`] every worker samples from (monolithic or shard-aware).
fn run_worker_pool<S: WorldSource>(
    graph: &UncertainGraph,
    source: &S,
    policy: BatchPolicy,
    seed: u64,
    submit_rx: Receiver<Submission>,
    cancel: Option<Arc<AtomicBool>>,
) -> ServiceStats {
    let worker_count = policy.threads.max(1);
    std::thread::scope(|scope| {
        let mut job_txs = Vec::with_capacity(worker_count);
        let mut partial_rxs = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (job_tx, job_rx) = mpsc::channel::<WorkerJob>();
            let (partial_tx, partial_rx) = mpsc::channel();
            scope.spawn(move || {
                // Persistent per-worker state, reused across micro-batches.
                let mut scratch = source.make_scratch();
                while let Ok(job) = job_rx.recv() {
                    let WorkerJob {
                        seq,
                        seed,
                        skip,
                        count,
                        mut observers,
                    } = job;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    for _ in 0..skip {
                        source.advance_world(&mut rng, &mut scratch);
                    }
                    for _ in 0..count {
                        let view = source.sample_world(&mut rng, &mut scratch);
                        for observer in observers.iter_mut() {
                            observer.observe_view(&view);
                        }
                    }
                    if partial_tx.send((seq, observers)).is_err() {
                        break;
                    }
                }
            });
            job_txs.push(job_tx);
            partial_rxs.push(partial_rx);
        }
        let scheduler = Scheduler {
            graph,
            source,
            policy,
            rng: SmallRng::seed_from_u64(seed),
            job_txs,
            partial_rxs,
            next_seq: 0,
            stats: ServiceStats::default(),
            cancel,
        };
        // `run` consumes the scheduler, so the job senders drop on return,
        // the workers' recv loops end, and the scope joins them.
        scheduler.run(submit_rx)
    })
}

struct Scheduler<'e, S: WorldSource> {
    graph: &'e UncertainGraph,
    /// The shared world source, for adaptive micro-batches (which run their
    /// own epoch-synchronised scoped workers instead of the fixed-skip
    /// persistent pool — the world count is not known up front).
    source: &'e S,
    policy: BatchPolicy,
    rng: SmallRng,
    job_txs: Vec<Sender<WorkerJob>>,
    /// One partial channel **per worker**: a dead worker disconnects its own
    /// channel, so the scheduler notices immediately instead of blocking on
    /// a shared receiver that stays open while any worker lives.
    partial_rxs: Vec<Receiver<(u64, Vec<BoxedObserver>)>>,
    /// Sequence number of the next micro-batch (tags jobs and partials).
    next_seq: u64,
    stats: ServiceStats,
    /// Caller-owned cooperative cancellation flag; consulted by adaptive
    /// micro-batches at their epoch checkpoints.
    cancel: Option<Arc<AtomicBool>>,
}

impl<S: WorldSource> Scheduler<'_, S> {
    fn run(mut self, submit_rx: Receiver<Submission>) -> ServiceStats {
        let max_queries = self.policy.max_queries.max(1);
        let mut pending: Vec<Submission> = Vec::new();
        let mut window_start = Instant::now();
        loop {
            if pending.len() >= max_queries {
                self.flush(&mut pending);
                continue;
            }
            if pending.is_empty() {
                match submit_rx.recv() {
                    Ok(submission) => {
                        window_start = Instant::now();
                        pending.push(submission);
                    }
                    Err(_) => break,
                }
                continue;
            }
            let elapsed = window_start.elapsed();
            if elapsed >= self.policy.max_wait {
                self.flush(&mut pending);
                continue;
            }
            match submit_rx.recv_timeout(self.policy.max_wait - elapsed) {
                Ok(submission) => pending.push(submission),
                Err(RecvTimeoutError::Timeout) => self.flush(&mut pending),
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.flush(&mut pending);
        self.stats
    }

    /// Runs one micro-batch: validates the pending specs, shards the world
    /// budget across the workers, merges the partial observers in worker
    /// order and resolves every ticket.
    fn flush(&mut self, pending: &mut Vec<Submission>) {
        if pending.is_empty() {
            return;
        }
        self.stats.queries += pending.len();
        let mut submissions: Vec<Submission> = Vec::with_capacity(pending.len());
        let mut observers: Vec<BoxedObserver> = Vec::with_capacity(pending.len());
        let shards = self.policy.shards;
        for submission in pending.drain(..) {
            let built = submission
                .spec
                .validate_sharded(self.graph, shards)
                .and_then(|_| submission.spec.make_observer(self.graph))
                .and_then(|observer| {
                    // Belt and braces against drift between the spec-level
                    // capability and the observer's actual one: an observer
                    // with no sharded path at all (neither cut correction
                    // nor ghost halo) must never reach a sharded worker (it
                    // would panic there instead of erroring here).
                    if shards > 1 && observer.shard_support() == ShardSupport::MonolithicOnly {
                        Err(SpecError::Unsupported {
                            query: submission.spec.kind().to_string(),
                            shards,
                        })
                    } else {
                        Ok(observer)
                    }
                });
            match built {
                Ok(observer) => {
                    submissions.push(submission);
                    observers.push(observer);
                }
                Err(error) => {
                    self.stats.rejected += 1;
                    let _ = submission.reply.send(Err(ServiceError::Spec(error)));
                }
            }
        }
        if submissions.is_empty() {
            return;
        }
        self.stats.micro_batches += 1;
        let num_worlds = self.policy.num_worlds;
        let mut adaptive: Option<AdaptiveReport> = None;
        let merged = if num_worlds == 0 {
            observers
        } else if let Some(precision) = self.policy.precision {
            // Adaptive micro-batch: same seed discipline as the fixed path
            // (batch `k` consumes the `k`-th draw of the service stream, so
            // mixing adaptive and fixed policies never shifts later seeds),
            // but the worlds are sampled by the epoch-synchronised adaptive
            // driver — the persistent pool's fixed-skip protocol needs the
            // world count up front, which is exactly what a stopping rule
            // does not know.
            self.next_seq += 1;
            let seed = self.rng.gen::<u64>();
            let (merged, report) = run_adaptive_cancellable(
                self.source,
                observers,
                num_worlds,
                self.policy.threads.max(1),
                seed,
                &precision,
                self.cancel.as_deref(),
            );
            self.stats.worlds_sampled += report.worlds_used;
            adaptive = Some(report);
            merged
        } else {
            // One batch seed per micro-batch, mirroring `QueryBatch::run`'s
            // single caller-RNG draw; the same replay partitioning formula
            // keeps the sampled world sequence worker-count-invariant.
            let seq = self.next_seq;
            self.next_seq += 1;
            let seed = self.rng.gen::<u64>();
            let workers = self.job_txs.len().clamp(1, num_worlds);
            let base = num_worlds / workers;
            let extra = num_worlds % workers;
            for (idx, job_tx) in self.job_txs.iter().take(workers).enumerate() {
                let job = WorkerJob {
                    seq,
                    seed,
                    skip: base * idx + idx.min(extra),
                    count: base + usize::from(idx < extra),
                    // The last worker takes the registry itself; only the
                    // earlier workers get clones.
                    observers: if idx + 1 == workers {
                        std::mem::take(&mut observers)
                    } else {
                        observers.clone()
                    },
                };
                if job_tx.send(job).is_err() {
                    fail_batch(submissions, "a worker thread is gone");
                    return;
                }
            }
            // Collect in worker (= world block) order, merging as we go.
            // Each worker's own channel disconnects if it dies, so a lost
            // worker fails the batch immediately instead of hanging the
            // scheduler; partials tagged with an older sequence belong to a
            // batch that was abandoned after this worker was already sent
            // its job, and are discarded.
            let mut merged: Option<Vec<BoxedObserver>> = None;
            for partial_rx in self.partial_rxs.iter().take(workers) {
                let partial = loop {
                    match partial_rx.recv() {
                        Ok((partial_seq, partial)) if partial_seq == seq => break partial,
                        Ok(_) => continue, // stale partial of an abandoned batch
                        Err(_) => {
                            fail_batch(submissions, "a worker thread died mid-batch");
                            return;
                        }
                    }
                };
                match merged.as_mut() {
                    None => merged = Some(partial),
                    Some(merged) => {
                        for (into, other) in merged.iter_mut().zip(partial) {
                            into.merge(other);
                        }
                    }
                }
            }
            self.stats.worlds_sampled += num_worlds;
            match merged {
                Some(merged) => merged,
                // Unreachable with today's `workers >= 1` invariant, but a
                // long-lived service resolves the tickets typed rather than
                // betting a panic on it.
                None => {
                    fail_batch(submissions, "no worker produced a partial");
                    return;
                }
            }
        };
        let worlds_used = adaptive.map_or(num_worlds, |report| report.worlds_used);
        let half_width = adaptive.map(|report| report.half_width);
        let (mut results, handles) = BatchResults::from_merged(merged, worlds_used);
        for (submission, handle) in submissions.into_iter().zip(handles) {
            let reply = match results.try_take_boxed(handle) {
                Ok(output) => match submission.spec.result_of(output) {
                    Some(result) => Ok(QueryAnswer {
                        result,
                        worlds_used,
                        half_width,
                    }),
                    None => Err(ServiceError::Internal(
                        "observer output did not match its spec".to_string(),
                    )),
                },
                Err(error) => Err(ServiceError::Internal(error.to_string())),
            };
            let _ = submission.reply.send(reply);
        }
    }
}

/// Resolves every ticket of an abandoned micro-batch with an internal error.
fn fail_batch(submissions: Vec<Submission>, reason: &str) {
    for submission in submissions {
        let _ = submission
            .reply
            .send(Err(ServiceError::Internal(reason.to_string())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap()
    }

    fn policy(num_worlds: usize, threads: usize) -> BatchPolicy {
        BatchPolicy {
            num_worlds,
            threads,
            ..BatchPolicy::default()
        }
    }

    #[test]
    fn submissions_resolve_to_their_typed_results() {
        let service = QueryService::start(toy(), policy(300, 2), 7);
        let connectivity = service.submit(QuerySpec::Connectivity);
        let frequencies = service.submit(QuerySpec::EdgeFrequency);
        match connectivity.wait().unwrap() {
            QueryResult::Connectivity(estimate) => {
                assert!(estimate.probability_connected <= 1.0);
                assert_eq!(estimate.num_worlds, 300);
            }
            other => panic!("unexpected result {other:?}"),
        }
        match frequencies.wait().unwrap() {
            QueryResult::EdgeFrequency(freq) => {
                assert_eq!(freq.len(), 3);
                assert!((freq[0] - 0.9).abs() < 0.1);
            }
            other => panic!("unexpected result {other:?}"),
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rejected, 0);
        assert!(stats.micro_batches >= 1);
    }

    #[test]
    fn invalid_specs_are_rejected_without_killing_the_batch() {
        let service = QueryService::start(toy(), policy(50, 1), 1);
        let bad = service.submit(QuerySpec::Knn { source: 99, k: 3 });
        let good = service.submit(QuerySpec::Connectivity);
        assert!(matches!(bad.wait(), Err(ServiceError::Spec(_))));
        assert!(good.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn shutdown_flushes_the_pending_window() {
        // A huge arrival window: only the shutdown flush can answer these.
        let service = QueryService::start(
            toy(),
            BatchPolicy {
                max_wait: Duration::from_secs(3600),
                max_queries: 1000,
                ..policy(40, 1)
            },
            3,
        );
        let tickets: Vec<_> = (0..5)
            .map(|_| service.submit(QuerySpec::DegreeHistogram))
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.micro_batches, 1, "one flush for the whole window");
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    #[test]
    fn zero_world_batches_finalise_empty_results() {
        let service = QueryService::start(toy(), policy(0, 2), 5);
        let ticket = service.submit(QuerySpec::EdgeFrequency);
        match ticket.wait().unwrap() {
            QueryResult::EdgeFrequency(freq) => assert_eq!(freq, vec![0.0; 3]),
            other => panic!("unexpected result {other:?}"),
        }
        let stats = service.shutdown();
        assert_eq!(stats.worlds_sampled, 0);
    }

    #[test]
    fn max_queries_bounds_every_micro_batch() {
        let service = QueryService::start(
            toy(),
            BatchPolicy {
                max_wait: Duration::from_secs(3600),
                max_queries: 2,
                ..policy(30, 1)
            },
            9,
        );
        let tickets: Vec<_> = (0..6)
            .map(|_| service.submit(QuerySpec::Connectivity))
            .collect();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.micro_batches, 3, "6 submissions in windows of 2");
    }

    #[test]
    fn tickets_outlive_a_dropped_service() {
        let service = QueryService::start(toy(), policy(20, 1), 11);
        let ticket = service.submit(QuerySpec::Clustering);
        drop(service); // shuts down; the flush still answers the ticket
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn sharded_service_answers_count_queries_bit_identically() {
        // The same seed drives a monolithic and a 3-shard service: the
        // sharded engine replays the monolithic edge stream, so the count
        // observers' results are bit-identical.
        let answers = |shards: usize| {
            let service = QueryService::start(
                toy(),
                BatchPolicy {
                    shards,
                    ..policy(250, 2)
                },
                13,
            );
            let connectivity = service.submit(QuerySpec::Connectivity);
            let frequencies = service.submit(QuerySpec::EdgeFrequency);
            let histogram = service.submit(QuerySpec::DegreeHistogram);
            let results = (
                connectivity.wait().unwrap(),
                frequencies.wait().unwrap(),
                histogram.wait().unwrap(),
            );
            service.shutdown();
            results
        };
        assert_eq!(answers(1), answers(3));
    }

    #[test]
    fn adaptive_policies_stop_early_and_report_their_effort() {
        let policy = BatchPolicy {
            precision: Some(Precision::new(0.05)),
            ..policy(100_000, 2)
        };
        let service = QueryService::start(toy(), policy, 21);
        let ticket = service.submit(QuerySpec::Connectivity);
        let answer = ticket.wait_detailed().unwrap();
        assert!(answer.worlds_used < 100_000, "stopped early");
        assert!(answer.half_width.unwrap() <= 0.05, "target met");
        match answer.result {
            QueryResult::Connectivity(estimate) => {
                assert_eq!(estimate.num_worlds, answer.worlds_used);
            }
            other => panic!("unexpected result {other:?}"),
        }
        let stats = service.shutdown();
        assert_eq!(stats.worlds_sampled, answer.worlds_used);
    }

    #[test]
    fn adaptive_worlds_consumed_are_worker_count_invariant() {
        let run = |threads: usize| {
            let policy = BatchPolicy {
                precision: Some(Precision::new(0.05)),
                ..policy(100_000, threads)
            };
            let service = QueryService::start(toy(), policy, 33);
            let answer = service
                .submit(QuerySpec::Connectivity)
                .wait_detailed()
                .unwrap();
            service.shutdown();
            answer
        };
        let baseline = run(1);
        for threads in [2, 4] {
            let answer = run(threads);
            assert_eq!(
                baseline.worlds_used, answer.worlds_used,
                "threads {threads}"
            );
            assert_eq!(baseline.result, answer.result, "threads {threads}");
        }
    }

    #[test]
    fn fixed_budget_answers_carry_the_budget_and_no_half_width() {
        let service = QueryService::start(toy(), policy(120, 1), 2);
        let answer = service
            .submit(QuerySpec::EdgeFrequency)
            .wait_detailed()
            .unwrap();
        assert_eq!(answer.worlds_used, 120);
        assert_eq!(answer.half_width, None);
        service.shutdown();
    }

    #[test]
    fn dead_reply_senders_resolve_tickets_typed_instead_of_hanging() {
        // The regression the server depends on: a worker/scheduler death
        // drops the reply sender, and every waiting or polling path must
        // surface `ServiceError::Stopped` instead of blocking forever.
        let dead_ticket = || {
            let (reply, rx) = mpsc::channel::<Result<QueryAnswer, ServiceError>>();
            drop(reply);
            ResultTicket { rx, settled: None }
        };
        assert_eq!(dead_ticket().wait(), Err(ServiceError::Stopped));
        assert_eq!(dead_ticket().wait_detailed(), Err(ServiceError::Stopped));
        let mut ticket = dead_ticket();
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(1)),
            Some(Err(ServiceError::Stopped))
        );
        let mut ticket = dead_ticket();
        assert_eq!(ticket.try_wait(), Some(&Err(ServiceError::Stopped)));
        // Latched: a second probe and the final wait agree.
        assert_eq!(ticket.try_wait(), Some(&Err(ServiceError::Stopped)));
        assert_eq!(ticket.wait(), Err(ServiceError::Stopped));
    }

    #[test]
    fn fail_batch_resolves_every_ticket_with_the_typed_reason() {
        let mut tickets = Vec::new();
        let mut submissions = Vec::new();
        for _ in 0..3 {
            let (reply, rx) = mpsc::channel();
            submissions.push(Submission {
                spec: QuerySpec::Connectivity,
                reply,
            });
            tickets.push(ResultTicket { rx, settled: None });
        }
        fail_batch(submissions, "a worker thread died mid-batch");
        for ticket in tickets {
            match ticket.wait() {
                Err(ServiceError::Internal(reason)) => {
                    assert_eq!(reason, "a worker thread died mid-batch")
                }
                other => panic!("expected a typed internal error, got {other:?}"),
            }
        }
    }

    #[test]
    fn broken_policies_refuse_submissions_with_a_typed_error() {
        // `refuse_all` is the scheduler's degraded mode for a policy whose
        // partition cannot be built: the service stays up, every ticket
        // resolves typed, shutdown still returns stats.
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            refuse_all(rx, &ServiceError::Policy("no valid partition".into()))
        });
        let (reply, ticket_rx) = mpsc::channel();
        tx.send(Submission {
            spec: QuerySpec::Connectivity,
            reply,
        })
        .unwrap();
        let ticket = ResultTicket {
            rx: ticket_rx,
            settled: None,
        };
        assert!(matches!(ticket.wait(), Err(ServiceError::Policy(_))));
        drop(tx);
        let stats = handle.join().unwrap();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn policies_validate_against_their_graph() {
        let g = toy();
        assert!(policy(10, 1).validate_for(&g).is_ok());
        let sharded = BatchPolicy {
            shards: 3,
            ..policy(10, 1)
        };
        assert!(sharded.validate_for(&g).is_ok());
    }

    #[test]
    fn try_wait_polls_without_blocking_and_latches_the_answer() {
        let service = QueryService::start(toy(), policy(80, 1), 17);
        let mut ticket = service.submit(QuerySpec::Connectivity);
        // Poll until the micro-batch resolves (bounded by the test harness
        // timeout); the probe itself must never block.
        let answer = loop {
            if let Some(outcome) = ticket.try_wait() {
                break outcome.clone();
            }
            std::thread::yield_now();
        };
        let answer = answer.unwrap();
        assert_eq!(answer.worlds_used, 80);
        // Latched: the blocking wait sees the identical answer.
        assert_eq!(ticket.wait_detailed().unwrap(), answer);
        service.shutdown();
    }

    #[test]
    fn cancelled_tickets_do_not_stall_the_batch() {
        let service = QueryService::start(toy(), policy(60, 2), 23);
        let cancelled = service.submit(QuerySpec::EdgeFrequency);
        let kept = service.submit(QuerySpec::Connectivity);
        cancelled.cancel();
        assert!(kept.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.queries, 2, "the cancelled query still ran");
    }

    #[test]
    fn sharded_service_answers_halo_queries_bit_identically() {
        // Since the ghost-halo exchange, pagerank/clustering/knn run on
        // sharded services too — no Unsupported rejections — and the same
        // seed yields bitwise the monolithic answers.
        let answers = |shards: usize| {
            let service = QueryService::start(
                toy(),
                BatchPolicy {
                    shards,
                    ..policy(120, 2)
                },
                7,
            );
            let pagerank = service.submit(QuerySpec::pagerank());
            let clustering = service.submit(QuerySpec::Clustering);
            let knn = service.submit(QuerySpec::Knn { source: 0, k: 3 });
            let results = (
                pagerank.wait().unwrap(),
                clustering.wait().unwrap(),
                knn.wait().unwrap(),
            );
            let stats = service.shutdown();
            assert_eq!(stats.rejected, 0, "{shards} shards rejected a query");
            results
        };
        assert_eq!(answers(1), answers(2));
    }
}
