//! # graph-algos
//!
//! Deterministic graph algorithm substrate used throughout the uncertain
//! graph sparsification workspace.
//!
//! The sparsifiers of the paper, the adapted deterministic baselines and the
//! Monte-Carlo query engine all need classical graph machinery:
//!
//! * [`UnionFind`] — disjoint sets with union by rank and path compression,
//! * [`IndexedMaxHeap`] — an addressable binary max-heap keyed by vertex,
//!   the data structure that makes the E-phase of `EMD` run in
//!   `O(α|E| log|V|)` instead of `O(α(1-α)|E|² log|V| / |V|)` (Section 4.3),
//! * [`spanning`] — maximum spanning trees / forests (Kruskal) for the
//!   backbone initialisation of Algorithm 1 and the Nagamochi–Ibaraki index,
//! * [`DeterministicGraph`] / [`WeightedGraph`] — CSR adjacency for sampled
//!   possible worlds and for the weighted graphs the baselines operate on,
//! * [`traversal`], [`shortest_path`], [`pagerank`], [`clustering`] — BFS,
//!   connected components, Dijkstra, PageRank and local clustering
//!   coefficients evaluated inside individual possible worlds.
//!
//! Everything is implemented from scratch on plain `Vec`s; no external graph
//! crate is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod dgraph;
pub mod dsu;
pub mod heap;
pub mod pagerank;
pub mod shortest_path;
pub mod spanning;
pub mod template;
pub mod traversal;
pub mod wgraph;

pub use dgraph::DeterministicGraph;
pub use dsu::UnionFind;
pub use heap::{FlatMaxHeap, IndexedMaxHeap};
pub use template::WorldTemplate;
pub use wgraph::WeightedGraph;

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::clustering::local_clustering_coefficients;
    pub use crate::dgraph::DeterministicGraph;
    pub use crate::dsu::UnionFind;
    pub use crate::heap::{FlatMaxHeap, IndexedMaxHeap};
    pub use crate::pagerank::{pagerank, PageRankConfig};
    pub use crate::shortest_path::{bfs_hop_distances, dijkstra};
    pub use crate::spanning::{maximum_spanning_forest, maximum_spanning_tree_weight};
    pub use crate::template::WorldTemplate;
    pub use crate::traversal::{connected_components, is_connected};
    pub use crate::wgraph::WeightedGraph;
}
