//! Addressable (indexed) binary max-heap with `f64` priorities.
//!
//! The `EMD` sparsifier (Algorithm 3 of the paper) maintains a max-heap `H_v`
//! over the *vertices* keyed by their current degree discrepancy `|δ(u)|`.
//! The heap must support changing the priority of an arbitrary vertex in
//! `O(log n)` when an incident edge changes probability — that is precisely
//! what makes the vertex-heap formulation of EMD cheap compared to the naive
//! edge-heap (`O(α|E| log|V|)` vs `O(α(1-α)|E|²log|V|/|V|)` per E-phase).

/// Binary max-heap over the dense key range `0..capacity`, addressable by
/// key: priorities of keys already in the heap can be updated in `O(log n)`.
///
/// Ties are broken by key order (smaller key first) so that the structure is
/// fully deterministic, which keeps experiment runs reproducible.
#[derive(Debug, Clone)]
pub struct IndexedMaxHeap {
    /// `heap[i]` is the key stored at heap slot `i`.
    heap: Vec<usize>,
    /// `pos[key]` is the slot of `key` in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
    /// `priority[key]` is the current priority of `key` (valid only when in
    /// the heap).
    priority: Vec<f64>,
}

const ABSENT: usize = usize::MAX;

impl IndexedMaxHeap {
    /// Creates an empty heap able to hold keys `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IndexedMaxHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            priority: vec![0.0; capacity],
        }
    }

    /// Builds a heap containing every key `0..priorities.len()` with the given
    /// priorities (Floyd's O(n) heapify).
    pub fn from_priorities(priorities: &[f64]) -> Self {
        let n = priorities.len();
        let mut h = IndexedMaxHeap {
            heap: (0..n).collect(),
            pos: (0..n).collect(),
            priority: priorities.to_vec(),
        };
        if n > 1 {
            for i in (0..n / 2).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    /// Number of keys currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if the heap contains no keys.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` if `key` is currently in the heap.
    pub fn contains(&self, key: usize) -> bool {
        key < self.pos.len() && self.pos[key] != ABSENT
    }

    /// Current priority of `key`, if it is in the heap.
    pub fn priority(&self, key: usize) -> Option<f64> {
        if self.contains(key) {
            Some(self.priority[key])
        } else {
            None
        }
    }

    /// The key with the maximum priority, without removing it.
    pub fn peek(&self) -> Option<(usize, f64)> {
        self.heap.first().map(|&k| (k, self.priority[k]))
    }

    /// Removes and returns the key with maximum priority.
    pub fn pop(&mut self) -> Option<(usize, f64)> {
        let top = *self.heap.first()?;
        let pr = self.priority[top];
        let last = self.heap.len() - 1;
        self.swap_slots(0, last);
        self.heap.pop();
        self.pos[top] = ABSENT;
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((top, pr))
    }

    /// Inserts `key` with `priority`, or updates its priority if already
    /// present.
    ///
    /// # Panics
    /// Panics if `key` is outside the capacity the heap was built with.
    pub fn push_or_update(&mut self, key: usize, priority: f64) {
        assert!(
            key < self.pos.len(),
            "key {key} exceeds heap capacity {}",
            self.pos.len()
        );
        if self.contains(key) {
            self.update(key, priority);
        } else {
            self.priority[key] = priority;
            self.pos[key] = self.heap.len();
            self.heap.push(key);
            self.sift_up(self.heap.len() - 1);
        }
    }

    /// Changes the priority of a key already in the heap.
    ///
    /// # Panics
    /// Panics if the key is not in the heap.
    pub fn update(&mut self, key: usize, priority: f64) {
        assert!(self.contains(key), "key {key} is not in the heap");
        let old = self.priority[key];
        self.priority[key] = priority;
        let slot = self.pos[key];
        if Self::ordering(priority, key, old, key) == std::cmp::Ordering::Greater {
            self.sift_up(slot);
        } else {
            self.sift_down(slot);
        }
    }

    /// Removes `key` from the heap if present.  Returns its priority.
    pub fn remove(&mut self, key: usize) -> Option<f64> {
        if !self.contains(key) {
            return None;
        }
        let pr = self.priority[key];
        let slot = self.pos[key];
        let last = self.heap.len() - 1;
        self.swap_slots(slot, last);
        self.heap.pop();
        self.pos[key] = ABSENT;
        if slot < self.heap.len() {
            self.sift_down(slot);
            self.sift_up(slot);
        }
        Some(pr)
    }

    /// Drains the heap in descending priority order.
    pub fn into_sorted_vec(mut self) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }

    fn ordering(pa: f64, ka: usize, pb: f64, kb: usize) -> std::cmp::Ordering {
        // Total order: by priority, NaN treated as -inf, ties broken by
        // *smaller* key winning so results are deterministic.
        let pa = if pa.is_nan() { f64::NEG_INFINITY } else { pa };
        let pb = if pb.is_nan() { f64::NEG_INFINITY } else { pb };
        pa.partial_cmp(&pb)
            .expect("NaN handled above")
            .then(kb.cmp(&ka))
    }

    fn greater(&self, slot_a: usize, slot_b: usize) -> bool {
        let (ka, kb) = (self.heap[slot_a], self.heap[slot_b]);
        Self::ordering(self.priority[ka], ka, self.priority[kb], kb) == std::cmp::Ordering::Greater
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.greater(slot, parent) {
                self.swap_slots(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let left = 2 * slot + 1;
            let right = 2 * slot + 2;
            let mut largest = slot;
            if left < self.heap.len() && self.greater(left, largest) {
                largest = left;
            }
            if right < self.heap.len() && self.greater(right, largest) {
                largest = right;
            }
            if largest == slot {
                break;
            }
            self.swap_slots(slot, largest);
            slot = largest;
        }
    }
}

/// Cache-aware addressable 8-ary max-heap over the dense key range
/// `0..capacity`, with priorities stored **inline** next to the keys.
///
/// Functionally a drop-in subset of [`IndexedMaxHeap`] (same total order:
/// priority first, NaN as `-inf`, ties broken by the smaller key), built for
/// update-heavy workloads like the `EMD` E-phase: the 8-way branching cuts
/// the sift depth to `log₈ n` and each level's children share one or two
/// cache lines, while the inline priorities avoid one random indirection per
/// comparison.  Because the order is total, [`FlatMaxHeap::peek`] returns
/// the same unique maximum an [`IndexedMaxHeap`] holding the same priorities
/// would — internal layout never leaks into results.
#[derive(Debug, Clone, Default)]
pub struct FlatMaxHeap {
    /// `(priority, key)` entries in heap order.
    heap: Vec<(f64, u32)>,
    /// `pos[key]` is the slot of `key` in `heap`.
    pos: Vec<u32>,
}

const ARITY: usize = 8;

impl FlatMaxHeap {
    /// Creates an empty heap; size it with [`FlatMaxHeap::rebuild`].
    pub fn new() -> Self {
        FlatMaxHeap::default()
    }

    /// Number of keys in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if the heap contains no keys.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Rebuilds the heap in place to contain every key `0..capacity` with
    /// the given priorities (Floyd's `O(n)` heapify, buffers reused).
    pub fn rebuild<F: FnMut(usize) -> f64>(&mut self, capacity: usize, mut priority: F) {
        self.heap.clear();
        self.heap
            .extend((0..capacity).map(|key| (priority(key), key as u32)));
        self.pos.clear();
        self.pos.extend(0..capacity as u32);
        if capacity > 1 {
            let last_parent = (capacity - 2) / ARITY;
            for slot in (0..=last_parent).rev() {
                self.sift_down(slot);
            }
        }
    }

    /// Current priority of `key`.
    ///
    /// # Panics
    /// Panics if `key` was not part of the last [`FlatMaxHeap::rebuild`].
    pub fn priority(&self, key: usize) -> f64 {
        self.heap[self.pos[key] as usize].0
    }

    /// The key with the maximum priority, without removing it.
    pub fn peek(&self) -> Option<(usize, f64)> {
        self.heap.first().map(|&(p, k)| (k as usize, p))
    }

    /// Changes the priority of `key`.
    ///
    /// # Panics
    /// Panics if `key` was not part of the last [`FlatMaxHeap::rebuild`].
    pub fn update(&mut self, key: usize, priority: f64) {
        let slot = self.pos[key] as usize;
        let old = self.heap[slot].0;
        self.heap[slot].0 = priority;
        if Self::ordering(priority, key, old, key) == std::cmp::Ordering::Greater {
            self.sift_up(slot);
        } else {
            self.sift_down(slot);
        }
    }

    fn ordering(pa: f64, ka: usize, pb: f64, kb: usize) -> std::cmp::Ordering {
        // Same total order as `IndexedMaxHeap`: by priority, NaN treated as
        // -inf, ties broken by the *smaller* key winning.
        let pa = if pa.is_nan() { f64::NEG_INFINITY } else { pa };
        let pb = if pb.is_nan() { f64::NEG_INFINITY } else { pb };
        pa.partial_cmp(&pb)
            .expect("NaN handled above")
            .then(kb.cmp(&ka))
    }

    fn greater(&self, a: usize, b: usize) -> bool {
        let (pa, ka) = self.heap[a];
        let (pb, kb) = self.heap[b];
        Self::ordering(pa, ka as usize, pb, kb as usize) == std::cmp::Ordering::Greater
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / ARITY;
            if self.greater(slot, parent) {
                self.swap_slots(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let first = ARITY * slot + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + ARITY).min(self.heap.len());
            let mut largest = first;
            for child in (first + 1)..last {
                if self.greater(child, largest) {
                    largest = child;
                }
            }
            if self.greater(largest, slot) {
                self.swap_slots(slot, largest);
                slot = largest;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_returns_descending_priorities() {
        let mut h = IndexedMaxHeap::new(5);
        h.push_or_update(0, 1.0);
        h.push_or_update(1, 5.0);
        h.push_or_update(2, 3.0);
        h.push_or_update(3, 4.0);
        h.push_or_update(4, 2.0);
        let order: Vec<usize> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
        assert!(h.is_empty());
    }

    #[test]
    fn from_priorities_heapifies() {
        let h = IndexedMaxHeap::from_priorities(&[0.5, 2.5, 1.5]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.peek(), Some((1, 2.5)));
        let sorted = h.into_sorted_vec();
        assert_eq!(
            sorted.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn update_moves_keys_in_both_directions() {
        let mut h = IndexedMaxHeap::from_priorities(&[1.0, 2.0, 3.0, 4.0]);
        h.update(0, 10.0); // up
        assert_eq!(h.peek(), Some((0, 10.0)));
        h.update(0, -1.0); // down
        assert_eq!(h.peek(), Some((3, 4.0)));
        assert_eq!(h.priority(0), Some(-1.0));
    }

    #[test]
    fn push_or_update_is_idempotent_on_membership() {
        let mut h = IndexedMaxHeap::new(3);
        h.push_or_update(1, 1.0);
        h.push_or_update(1, 9.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek(), Some((1, 9.0)));
    }

    #[test]
    fn remove_arbitrary_key() {
        let mut h = IndexedMaxHeap::from_priorities(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(h.remove(2), Some(4.0));
        assert_eq!(h.remove(2), None);
        assert!(!h.contains(2));
        let order: Vec<usize> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(order, vec![0, 4, 3, 1]);
    }

    #[test]
    fn ties_break_by_smaller_key() {
        let mut h = IndexedMaxHeap::new(4);
        for k in [3, 1, 2, 0] {
            h.push_or_update(k, 7.0);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nan_priorities_sink_to_the_bottom() {
        let mut h = IndexedMaxHeap::new(3);
        h.push_or_update(0, f64::NAN);
        h.push_or_update(1, 0.0);
        h.push_or_update(2, -1.0);
        let order: Vec<usize> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn priority_and_contains_track_membership() {
        let mut h = IndexedMaxHeap::new(2);
        assert!(!h.contains(0));
        assert_eq!(h.priority(0), None);
        h.push_or_update(0, 3.5);
        assert!(h.contains(0));
        assert_eq!(h.priority(0), Some(3.5));
        h.pop();
        assert!(!h.contains(0));
    }

    #[test]
    fn flat_heap_agrees_with_indexed_heap_under_random_updates() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 300usize;
        let priorities: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut flat = FlatMaxHeap::new();
        flat.rebuild(n, |k| priorities[k]);
        let mut reference = IndexedMaxHeap::from_priorities(&priorities);
        assert_eq!(flat.peek(), reference.peek());
        for _ in 0..5_000 {
            let key = rng.gen_range(0..n);
            let p = rng.gen_range(-5.0..5.0);
            flat.update(key, p);
            reference.update(key, p);
            assert_eq!(flat.peek(), reference.peek());
            assert_eq!(flat.priority(key), p);
        }
        assert_eq!(flat.len(), n);
        assert!(!flat.is_empty());
    }

    #[test]
    fn flat_heap_ties_and_nan_match_the_indexed_order() {
        let mut flat = FlatMaxHeap::new();
        flat.rebuild(4, |_| 7.0);
        assert_eq!(flat.peek(), Some((0, 7.0)));
        flat.update(0, f64::NAN);
        assert_eq!(flat.peek(), Some((1, 7.0)));
        flat.update(2, 9.0);
        assert_eq!(flat.peek(), Some((2, 9.0)));
        // Rebuild shrinks and grows cleanly.
        flat.rebuild(2, |k| k as f64);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.peek(), Some((1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "exceeds heap capacity")]
    fn push_beyond_capacity_panics() {
        let mut h = IndexedMaxHeap::new(1);
        h.push_or_update(5, 1.0);
    }

    #[test]
    fn heap_matches_reference_sort_on_random_input() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        let priorities: Vec<f64> = (0..200).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let heap = IndexedMaxHeap::from_priorities(&priorities);
        let drained: Vec<f64> = heap.into_sorted_vec().into_iter().map(|(_, p)| p).collect();
        let mut expected = priorities.clone();
        expected.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (a, b) in drained.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
