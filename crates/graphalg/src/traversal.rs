//! Breadth-first traversal and connectivity over deterministic graphs.

use std::collections::VecDeque;

use crate::dgraph::DeterministicGraph;

/// Connected components of `g`: returns `(labels, count)` where `labels[u]`
/// is the component index of vertex `u` (components numbered in discovery
/// order from vertex 0 upward).
pub fn connected_components(g: &DeterministicGraph) -> (Vec<usize>, usize) {
    let n = g.num_vertices();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (labels, next)
}

/// Returns `true` if `g` consists of a single connected component (graphs
/// with at most one vertex are connected by convention).
pub fn is_connected(g: &DeterministicGraph) -> bool {
    if g.num_vertices() <= 1 {
        return true;
    }
    let (_, count) = connected_components(g);
    count == 1
}

/// Hop distances from `source` to every vertex by BFS.  Unreachable vertices
/// get `usize::MAX`.
pub fn bfs_distances(g: &DeterministicGraph, source: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Hop distance between a single pair of vertices (early-exit BFS), or
/// `None` if `target` is unreachable from `source`.
pub fn bfs_pair_distance(g: &DeterministicGraph, source: usize, target: usize) -> Option<usize> {
    if source == target {
        return Some(0);
    }
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                if v == target {
                    return Some(du + 1);
                }
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DeterministicGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        DeterministicGraph::from_edges(n, &edges)
    }

    #[test]
    fn components_of_connected_and_disconnected_graphs() {
        let g = path_graph(5);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(is_connected(&g));

        let g = DeterministicGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn single_vertex_and_empty_graphs_are_connected() {
        assert!(is_connected(&DeterministicGraph::from_edges(1, &[])));
        assert!(is_connected(&DeterministicGraph::from_edges(0, &[])));
        assert!(!is_connected(&DeterministicGraph::from_edges(2, &[])));
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = path_graph(6);
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4, 5]);
        let dist = bfs_distances(&g, 3);
        assert_eq!(dist, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_distances_mark_unreachable() {
        let g = DeterministicGraph::from_edges(4, &[(0, 1)]);
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[2], usize::MAX);
        assert_eq!(dist[3], usize::MAX);
    }

    #[test]
    fn pair_distance_matches_full_bfs() {
        let g = DeterministicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        for s in 0..6 {
            let full = bfs_distances(&g, s);
            for (t, &expected) in full.iter().enumerate() {
                let pair = bfs_pair_distance(&g, s, t);
                if expected == usize::MAX {
                    assert_eq!(pair, None);
                } else {
                    assert_eq!(pair, Some(expected));
                }
            }
        }
    }

    #[test]
    fn pair_distance_same_vertex_is_zero() {
        let g = path_graph(3);
        assert_eq!(bfs_pair_distance(&g, 1, 1), Some(0));
    }
}
