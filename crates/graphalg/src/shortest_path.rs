//! Shortest paths: Dijkstra on weighted graphs and hop distances on
//! deterministic graphs.
//!
//! The paper's `SP` query is the *expected shortest-path distance between a
//! pair of vertices over the connected possible worlds*; individual worlds
//! are unweighted, so hop distances (BFS) suffice there.  Dijkstra is needed
//! by the spanner baseline machinery and by weighted analyses (most-probable
//! paths under the `-log p` transform).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::dgraph::DeterministicGraph;
use crate::traversal;
use crate::wgraph::WeightedGraph;

/// Re-export of the BFS hop-distance primitive for convenience.
pub use crate::traversal::bfs_distances as bfs_hop_distances;

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest distance pops
        // first.  NaN never occurs because weights are validated non-negative.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest path distances on a weighted graph with
/// non-negative weights.  Unreachable vertices get `f64::INFINITY`.
///
/// # Panics
/// Panics (debug assertion) if a negative weight is encountered.
pub fn dijkstra(g: &WeightedGraph, source: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapItem { dist: d, vertex: u }) = heap.pop() {
        if d > dist[u] {
            continue; // stale entry
        }
        for (v, _, w) in g.neighbors(u) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapItem {
                    dist: nd,
                    vertex: v,
                });
            }
        }
    }
    dist
}

/// Shortest weighted distance between a pair of vertices, or `None` if
/// disconnected.
pub fn dijkstra_pair(g: &WeightedGraph, source: usize, target: usize) -> Option<f64> {
    let dist = dijkstra(g, source);
    if dist[target].is_finite() {
        Some(dist[target])
    } else {
        None
    }
}

/// Average hop distance between `pairs` in the deterministic graph `g`,
/// counting only pairs that are connected.  Returns `(average, connected
/// pairs)`; the average is 0 when no pair is connected.
pub fn average_pair_hop_distance(g: &DeterministicGraph, pairs: &[(usize, usize)]) -> (f64, usize) {
    let mut total = 0usize;
    let mut connected = 0usize;
    for &(s, t) in pairs {
        if let Some(d) = traversal::bfs_pair_distance(g, s, t) {
            total += d;
            connected += 1;
        }
    }
    if connected == 0 {
        (0.0, 0)
    } else {
        (total as f64 / connected as f64, connected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> WeightedGraph {
        // 0 -1.0- 1
        // |        |
        // 4.0     1.0
        // |        |
        // 3 -1.0- 2
        WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 4.0)])
    }

    #[test]
    fn dijkstra_prefers_cheaper_multi_hop_path() {
        let g = weighted_square();
        let dist = dijkstra(&g, 0);
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[1], 1.0);
        assert_eq!(dist[2], 2.0);
        assert_eq!(dist[3], 3.0); // via 1,2 — not the direct 4.0 edge
    }

    #[test]
    fn dijkstra_marks_unreachable_as_infinite() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0)]);
        let dist = dijkstra(&g, 0);
        assert!(dist[2].is_infinite());
        assert_eq!(dijkstra_pair(&g, 0, 2), None);
        assert_eq!(dijkstra_pair(&g, 0, 1), Some(1.0));
    }

    #[test]
    fn dijkstra_handles_zero_weight_edges() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 0.0), (1, 2, 2.0)]);
        let dist = dijkstra(&g, 0);
        assert_eq!(dist, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)];
        let unit: Vec<(usize, usize, f64)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        let wg = WeightedGraph::from_edges(5, &unit);
        let dg = DeterministicGraph::from_edges(5, &edges);
        for s in 0..5 {
            let dd = dijkstra(&wg, s);
            let bd = traversal::bfs_distances(&dg, s);
            for v in 0..5 {
                assert_eq!(dd[v] as usize, bd[v]);
            }
        }
    }

    #[test]
    fn average_pair_distance_skips_disconnected_pairs() {
        let g = DeterministicGraph::from_edges(5, &[(0, 1), (1, 2)]);
        let pairs = [(0, 2), (0, 1), (0, 4), (3, 4)];
        let (avg, connected) = average_pair_hop_distance(&g, &pairs);
        assert_eq!(connected, 2);
        assert!((avg - 1.5).abs() < 1e-12);
        let (avg, connected) = average_pair_hop_distance(&g, &[(0, 4)]);
        assert_eq!(connected, 0);
        assert_eq!(avg, 0.0);
    }
}
