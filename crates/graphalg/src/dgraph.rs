//! Unweighted deterministic graphs in CSR form.
//!
//! A [`DeterministicGraph`] is the materialisation of one possible world of
//! an uncertain graph (or any plain undirected graph).  The Monte-Carlo query
//! engine builds one per sampled world and runs classical algorithms
//! (BFS, PageRank, clustering coefficient, …) on it.

use uncertain_graph::{PossibleWorld, UncertainGraph};

use crate::template::WorldTemplate;

/// An undirected, unweighted graph in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicGraph {
    num_vertices: usize,
    num_edges: usize,
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl DeterministicGraph {
    /// Builds a graph from an explicit undirected edge list.  Self loops and
    /// duplicate edges are kept as provided (the caller is responsible for
    /// simplicity if required).
    pub fn from_edges(num_vertices: usize, edges: &[(usize, usize)]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(u, v) in edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        for d in &degree {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; edges.len() * 2];
        for &(u, v) in edges {
            neighbors[cursor[u]] = v as u32;
            cursor[u] += 1;
            neighbors[cursor[v]] = u as u32;
            cursor[v] += 1;
        }
        DeterministicGraph {
            num_vertices,
            num_edges: edges.len(),
            offsets,
            neighbors,
        }
    }

    /// Materialises the possible world `world` of the uncertain graph `g`.
    pub fn from_world(g: &UncertainGraph, world: &PossibleWorld) -> Self {
        let edges: Vec<(usize, usize)> =
            world.present_edges().map(|e| g.edge_endpoints(e)).collect();
        Self::from_edges(g.num_vertices(), &edges)
    }

    /// Materialises the *support* of `g` (every edge present).
    pub fn support(g: &UncertainGraph) -> Self {
        let edges: Vec<(usize, usize)> = g.edges().map(|e| (e.u, e.v)).collect();
        Self::from_edges(g.num_vertices(), &edges)
    }

    /// Creates an empty graph whose internal buffers are pre-sized for
    /// worlds of `template`, so that subsequent
    /// [`DeterministicGraph::materialize_from_template`] /
    /// [`DeterministicGraph::materialize_masked`] calls never allocate.
    pub fn with_capacity_for(template: &WorldTemplate) -> Self {
        DeterministicGraph {
            num_vertices: 0,
            num_edges: 0,
            offsets: Vec::with_capacity(template.num_vertices() + 1),
            neighbors: Vec::with_capacity(2 * template.num_edges()),
        }
    }

    /// Rebuilds `self` in place as the world of `template` whose present
    /// edges are `present` (edge ids into the template).
    ///
    /// Cost is `O(|V| + |present|)`; the CSR is compacted into `self`'s
    /// existing buffers, so steady-state materialisation performs **zero**
    /// heap allocations.  The adjacency of every vertex lists neighbours in
    /// the order the present edges are given — callers that need the exact
    /// layout of [`DeterministicGraph::from_world`] must pass ascending edge
    /// ids.
    pub fn materialize_from_template(&mut self, template: &WorldTemplate, present: &[u32]) {
        let n = template.num_vertices();
        let k = present.len();
        self.num_vertices = n;
        self.num_edges = k;
        // Degree-count pass into offsets[1..], then prefix sums: offsets[u]
        // becomes the start of u's range (and doubles as the fill cursor).
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &e in present {
            let (u, v) = template.endpoints(e as usize);
            self.offsets[u as usize + 1] += 1;
            self.offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.offsets.copy_within(0..n, 1);
        self.offsets[0] = 0;
        // offsets[1..=n] now hold the range starts; use them as cursors.
        self.neighbors.resize(2 * k, 0);
        for &e in present {
            let (u, v) = template.endpoints(e as usize);
            let cu = self.offsets[u as usize + 1];
            self.neighbors[cu] = v;
            self.offsets[u as usize + 1] = cu + 1;
            let cv = self.offsets[v as usize + 1];
            self.neighbors[cv] = u;
            self.offsets[v as usize + 1] = cv + 1;
        }
        // After the fill, offsets[u + 1] has advanced to the end of u's
        // range — exactly the CSR offset array.
    }

    /// Like [`DeterministicGraph::materialize_from_template`], but from a
    /// pre-resolved endpoint list (`pairs[i]` are the endpoints of the
    /// `i`-th present edge).
    ///
    /// Hot-path variant used by the world engine: the engine resolves edge
    /// ids to endpoints once while collecting the world, so both
    /// materialisation passes here scan `pairs` sequentially instead of
    /// gathering from the (much larger) edge table — measurably fewer cache
    /// misses per world.  Zero heap allocations in steady state.
    pub fn materialize_from_endpoints(&mut self, num_vertices: usize, pairs: &[(u32, u32)]) {
        let n = num_vertices;
        let k = pairs.len();
        self.num_vertices = n;
        self.num_edges = k;
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(u, v) in pairs {
            self.offsets[u as usize + 1] += 1;
            self.offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.offsets.copy_within(0..n, 1);
        self.offsets[0] = 0;
        self.neighbors.resize(2 * k, 0);
        for &(u, v) in pairs {
            let cu = self.offsets[u as usize + 1];
            self.neighbors[cu] = v;
            self.offsets[u as usize + 1] = cu + 1;
            let cv = self.offsets[v as usize + 1];
            self.neighbors[cv] = u;
            self.offsets[v as usize + 1] = cv + 1;
        }
    }

    /// Rebuilds `self` in place as the world of `template` selected by an
    /// edge inclusion `mask` (indexed by edge id), by compacting the support
    /// CSR.  Cost is `O(|V| + 2|E|)` independent of how many edges are
    /// present; zero heap allocations in steady state.
    ///
    /// Unlike [`DeterministicGraph::materialize_from_template`] this keeps
    /// every adjacency list in support order, which matches
    /// [`DeterministicGraph::from_world`] exactly.
    pub fn materialize_masked(&mut self, template: &WorldTemplate, mask: &[bool]) {
        let n = template.num_vertices();
        assert_eq!(
            mask.len(),
            template.num_edges(),
            "mask does not match template"
        );
        self.num_vertices = n;
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        self.neighbors.resize(2 * template.num_edges(), 0);
        let mut cursor = 0usize;
        for u in 0..n {
            let (neighbors, edge_ids) = template.support_adjacency(u);
            for (&v, &e) in neighbors.iter().zip(edge_ids) {
                if mask[e as usize] {
                    self.neighbors[cursor] = v;
                    cursor += 1;
                }
            }
            self.offsets[u + 1] = cursor;
        }
        self.neighbors.truncate(cursor);
        self.num_edges = cursor / 2;
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Neighbourhood of `u` as a slice.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbors[self.offsets[u]..self.offsets[u + 1]]
            .iter()
            .map(|&v| v as usize)
    }

    /// Neighbourhood of `u` as the raw `u32` slice (used by hot loops).
    #[inline]
    pub fn neighbor_slice(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_graph::UncertainGraph;

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = DeterministicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.neighbors(3).collect::<Vec<_>>(), vec![2]);
        assert_eq!(g.neighbor_slice(2), &[1, 3]);
    }

    #[test]
    fn from_world_keeps_only_present_edges() {
        let ug = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let world = uncertain_graph::PossibleWorld::new(vec![true, false]);
        let g = DeterministicGraph::from_world(&ug, &world);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn support_keeps_all_edges() {
        let ug = UncertainGraph::from_edges(3, [(0, 1, 0.2), (1, 2, 0.2), (0, 2, 0.2)]).unwrap();
        let g = DeterministicGraph::support(&ug);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn empty_graph() {
        let g = DeterministicGraph::from_edges(2, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.neighbors(1).count(), 0);
    }

    /// Exhaustively checks that every in-place materialisation path agrees
    /// with `from_world` on all 2^|E| worlds of a small graph.
    #[test]
    fn all_materialisation_paths_agree_with_from_world() {
        let ug = UncertainGraph::from_edges(
            5,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
                (3, 4, 0.5),
                (0, 2, 0.5),
                (1, 4, 0.5),
            ],
        )
        .unwrap();
        let template = WorldTemplate::new(&ug);
        let m = ug.num_edges();
        let mut from_template = DeterministicGraph::with_capacity_for(&template);
        let mut from_endpoints = DeterministicGraph::with_capacity_for(&template);
        let mut masked = DeterministicGraph::with_capacity_for(&template);
        for bits in 0..(1u32 << m) {
            let mask: Vec<bool> = (0..m).map(|e| (bits >> e) & 1 == 1).collect();
            let present: Vec<u32> = (0..m as u32).filter(|&e| mask[e as usize]).collect();
            let pairs: Vec<(u32, u32)> = present
                .iter()
                .map(|&e| template.endpoints(e as usize))
                .collect();
            let reference = DeterministicGraph::from_world(
                &ug,
                &uncertain_graph::PossibleWorld::new(mask.clone()),
            );
            from_template.materialize_from_template(&template, &present);
            from_endpoints.materialize_from_endpoints(template.num_vertices(), &pairs);
            masked.materialize_masked(&template, &mask);
            // Ascending present order ⇒ all paths match from_world exactly,
            // adjacency layout included.
            assert_eq!(from_template, reference, "template path, world {bits:#b}");
            assert_eq!(from_endpoints, reference, "endpoint path, world {bits:#b}");
            assert_eq!(masked, reference, "masked path, world {bits:#b}");
        }
    }

    /// The buffer-reuse contract: materialising a large world after a small
    /// one (and vice versa) leaves no stale state behind.
    #[test]
    fn materialisation_reuse_resets_previous_world() {
        let ug =
            UncertainGraph::from_edges(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.5)])
                .unwrap();
        let template = WorldTemplate::new(&ug);
        let mut world = DeterministicGraph::with_capacity_for(&template);
        world.materialize_from_template(&template, &[0, 1, 2, 3]);
        assert_eq!(world.num_edges(), 4);
        assert_eq!(world.degree(0), 2);
        world.materialize_from_template(&template, &[1]);
        assert_eq!(world.num_edges(), 1);
        assert_eq!(world.degree(0), 0);
        assert_eq!(world.neighbors(1).collect::<Vec<_>>(), vec![2]);
        world.materialize_masked(&template, &[false, false, false, true]);
        assert_eq!(world.num_edges(), 1);
        assert_eq!(world.neighbors(0).collect::<Vec<_>>(), vec![3]);
    }
}
