//! Unweighted deterministic graphs in CSR form.
//!
//! A [`DeterministicGraph`] is the materialisation of one possible world of
//! an uncertain graph (or any plain undirected graph).  The Monte-Carlo query
//! engine builds one per sampled world and runs classical algorithms
//! (BFS, PageRank, clustering coefficient, …) on it.

use uncertain_graph::{PossibleWorld, UncertainGraph};

/// An undirected, unweighted graph in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicGraph {
    num_vertices: usize,
    num_edges: usize,
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl DeterministicGraph {
    /// Builds a graph from an explicit undirected edge list.  Self loops and
    /// duplicate edges are kept as provided (the caller is responsible for
    /// simplicity if required).
    pub fn from_edges(num_vertices: usize, edges: &[(usize, usize)]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(u, v) in edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        for d in &degree {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; edges.len() * 2];
        for &(u, v) in edges {
            neighbors[cursor[u]] = v as u32;
            cursor[u] += 1;
            neighbors[cursor[v]] = u as u32;
            cursor[v] += 1;
        }
        DeterministicGraph { num_vertices, num_edges: edges.len(), offsets, neighbors }
    }

    /// Materialises the possible world `world` of the uncertain graph `g`.
    pub fn from_world(g: &UncertainGraph, world: &PossibleWorld) -> Self {
        let edges: Vec<(usize, usize)> =
            world.present_edges().map(|e| g.edge_endpoints(e)).collect();
        Self::from_edges(g.num_vertices(), &edges)
    }

    /// Materialises the *support* of `g` (every edge present).
    pub fn support(g: &UncertainGraph) -> Self {
        let edges: Vec<(usize, usize)> = g.edges().map(|e| (e.u, e.v)).collect();
        Self::from_edges(g.num_vertices(), &edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Neighbourhood of `u` as a slice.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbors[self.offsets[u]..self.offsets[u + 1]].iter().map(|&v| v as usize)
    }

    /// Neighbourhood of `u` as the raw `u32` slice (used by hot loops).
    #[inline]
    pub fn neighbor_slice(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_graph::UncertainGraph;

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = DeterministicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.neighbors(3).collect::<Vec<_>>(), vec![2]);
        assert_eq!(g.neighbor_slice(2), &[1, 3]);
    }

    #[test]
    fn from_world_keeps_only_present_edges() {
        let ug = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let world = uncertain_graph::PossibleWorld::new(vec![true, false]);
        let g = DeterministicGraph::from_world(&ug, &world);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn support_keeps_all_edges() {
        let ug = UncertainGraph::from_edges(3, [(0, 1, 0.2), (1, 2, 0.2), (0, 2, 0.2)]).unwrap();
        let g = DeterministicGraph::support(&ug);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn empty_graph() {
        let g = DeterministicGraph::from_edges(2, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.neighbors(1).count(), 0);
    }
}
