//! PageRank on deterministic graphs.
//!
//! The paper evaluates PageRank (`PR`) as one of the four query workloads:
//! the PageRank of every vertex is estimated by averaging deterministic
//! PageRank over sampled possible worlds.  This module implements the
//! deterministic power-iteration kernel; the Monte-Carlo averaging lives in
//! `ugs-queries`.

use crate::dgraph::DeterministicGraph;

/// Configuration of the PageRank power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (the classical 0.85).
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }
}

/// Computes PageRank scores for an undirected deterministic graph using
/// power iteration.  Dangling vertices (degree 0) redistribute their mass
/// uniformly, the standard correction.  The returned vector sums to 1 (for a
/// non-empty vertex set).
pub fn pagerank(g: &DeterministicGraph, config: &PageRankConfig) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    for _ in 0..config.max_iterations {
        // Mass from dangling vertices is spread uniformly.
        let dangling_mass: f64 = (0..n).filter(|&u| g.degree(u) == 0).map(|u| rank[u]).sum();
        let base = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for (u, &rank_u) in rank.iter().enumerate() {
            let deg = g.degree(u);
            if deg == 0 {
                continue;
            }
            let share = config.damping * rank_u / deg as f64;
            for v in g.neighbors(u) {
                next[v] += share;
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_sums_to_one() {
        let g = DeterministicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_graph_gives_uniform_ranks() {
        // A cycle is vertex-transitive: all ranks equal.
        let g = DeterministicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        for &x in &pr {
            assert!((x - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn star_center_has_highest_rank() {
        let g = DeterministicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        for leaf in 1..5 {
            assert!(pr[0] > pr[leaf]);
            assert!((pr[leaf] - pr[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_vertices_keep_distribution_normalised() {
        let g = DeterministicGraph::from_edges(4, &[(0, 1)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // isolated vertices still receive teleport + dangling mass
        assert!(pr[2] > 0.0);
        assert!((pr[2] - pr[3]).abs() < 1e-12);
        assert!(pr[0] > pr[2]);
    }

    #[test]
    fn empty_graph_returns_empty_vector() {
        let g = DeterministicGraph::from_edges(0, &[]);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn respects_iteration_limit() {
        let g = DeterministicGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let rough = pagerank(
            &g,
            &PageRankConfig {
                damping: 0.85,
                max_iterations: 1,
                tolerance: 0.0,
            },
        );
        let precise = pagerank(&g, &PageRankConfig::default());
        // With only one iteration the result should differ from the converged one.
        let diff: f64 = rough
            .iter()
            .zip(precise.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6);
    }
}
