//! Local clustering coefficients.
//!
//! The clustering coefficient (`CC`) query of the paper measures, for each
//! vertex, the ratio of edges among its neighbours to the maximum possible
//! number of such edges.  The Monte-Carlo query engine averages these values
//! over sampled possible worlds; this module provides the deterministic
//! kernel.

use crate::dgraph::DeterministicGraph;

/// Local clustering coefficient of every vertex.
///
/// `cc(u) = 2·T(u) / (deg(u)·(deg(u)-1))` where `T(u)` is the number of edges
/// between neighbours of `u`; vertices with degree < 2 get 0 by convention.
///
/// The implementation sorts adjacency lists once and counts triangles via
/// merge-style intersection, `O(Σ_u deg(u)·d_max)` worst case but cache
/// friendly and allocation free per vertex pair.
pub fn local_clustering_coefficients(g: &DeterministicGraph) -> Vec<f64> {
    let n = g.num_vertices();
    // Sorted copies of the adjacency lists for O(d1 + d2) intersections.
    let sorted: Vec<Vec<u32>> = (0..n)
        .map(|u| {
            let mut ns: Vec<u32> = g.neighbor_slice(u).to_vec();
            ns.sort_unstable();
            ns.dedup();
            ns
        })
        .collect();
    let mut cc = vec![0.0; n];
    for u in 0..n {
        let neighbors = &sorted[u];
        let deg = neighbors.len();
        if deg < 2 {
            continue;
        }
        let mut triangles = 0usize;
        for (i, &v) in neighbors.iter().enumerate() {
            let nv = &sorted[v as usize];
            // Count common neighbours of u and v that come after v in u's
            // list (each triangle counted once per (v, w) pair with v < w).
            let rest = &neighbors[i + 1..];
            triangles += sorted_intersection_size(rest, nv);
        }
        cc[u] = 2.0 * triangles as f64 / (deg * (deg - 1)) as f64;
    }
    cc
}

/// Average of the local clustering coefficients over all vertices (the
/// scalar usually reported for a network).
pub fn average_clustering_coefficient(g: &DeterministicGraph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    local_clustering_coefficients(g).iter().sum::<f64>() / n as f64
}

fn sorted_intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_coefficient_one() {
        let g = DeterministicGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let cc = local_clustering_coefficients(&g);
        assert_eq!(cc, vec![1.0, 1.0, 1.0]);
        assert!((average_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_coefficient_zero() {
        let g = DeterministicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cc = local_clustering_coefficients(&g);
        assert_eq!(cc, vec![0.0; 4]);
    }

    #[test]
    fn square_with_one_diagonal() {
        // 0-1, 1-2, 2-3, 3-0 and diagonal 0-2.
        let g = DeterministicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let cc = local_clustering_coefficients(&g);
        // Vertices 1 and 3 have degree 2 and their two neighbours (0, 2) are
        // linked: cc = 1.  Vertices 0 and 2 have degree 3 and two edges among
        // their three neighbours: cc = 2/3.
        assert!((cc[1] - 1.0).abs() < 1e-12);
        assert!((cc[3] - 1.0).abs() < 1e-12);
        assert!((cc[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cc[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_and_degree_one_vertices_get_zero() {
        let g = DeterministicGraph::from_edges(4, &[(0, 1)]);
        let cc = local_clustering_coefficients(&g);
        assert_eq!(cc, vec![0.0; 4]);
        assert_eq!(
            average_clustering_coefficient(&DeterministicGraph::from_edges(0, &[])),
            0.0
        );
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 30;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < 0.2 {
                    edges.push((u, v));
                }
            }
        }
        let g = DeterministicGraph::from_edges(n, &edges);
        let fast = local_clustering_coefficients(&g);
        // brute force
        let adj: Vec<std::collections::HashSet<usize>> = (0..n)
            .map(|u| g.neighbors(u).collect::<std::collections::HashSet<_>>())
            .collect();
        for u in 0..n {
            let ns: Vec<usize> = adj[u].iter().copied().collect();
            let d = ns.len();
            let expected = if d < 2 {
                0.0
            } else {
                let mut t = 0usize;
                for i in 0..d {
                    for j in (i + 1)..d {
                        if adj[ns[i]].contains(&ns[j]) {
                            t += 1;
                        }
                    }
                }
                2.0 * t as f64 / (d * (d - 1)) as f64
            };
            assert!((fast[u] - expected).abs() < 1e-12, "vertex {u}");
        }
    }
}
