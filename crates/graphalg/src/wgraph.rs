//! Weighted undirected graphs in CSR form.
//!
//! The deterministic-sparsification baselines of the paper operate on
//! weighted graphs obtained by transforming edge probabilities
//! (`w = ⌊p / p_min⌉` for the Nagamochi–Ibaraki cut sparsifier,
//! `w = -log p` for the Baswana–Sen spanner).  [`WeightedGraph`] provides the
//! CSR adjacency those algorithms need, together with conversions from an
//! [`UncertainGraph`].  Edge identifiers are preserved across the conversion
//! so the baselines can map selected edges back to the original uncertain
//! graph.

use uncertain_graph::UncertainGraph;

/// An undirected graph with `f64` edge weights in CSR form.
///
/// Edges keep the identifier of the uncertain-graph edge they came from
/// (or just their insertion index when built from a raw edge list).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    num_vertices: usize,
    /// `(u, v, weight)` per edge, indexed by edge id.
    edges: Vec<(u32, u32, f64)>,
    offsets: Vec<usize>,
    /// `(neighbour, edge id)` pairs.
    adj: Vec<(u32, u32)>,
}

impl WeightedGraph {
    /// Builds a weighted graph from an edge list.
    pub fn from_edges(num_vertices: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(u, v, _) in edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        for d in &degree {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![(0u32, 0u32); edges.len() * 2];
        let mut stored = Vec::with_capacity(edges.len());
        for (e, &(u, v, w)) in edges.iter().enumerate() {
            stored.push((u as u32, v as u32, w));
            adj[cursor[u]] = (v as u32, e as u32);
            cursor[u] += 1;
            adj[cursor[v]] = (u as u32, e as u32);
            cursor[v] += 1;
        }
        WeightedGraph {
            num_vertices,
            edges: stored,
            offsets,
            adj,
        }
    }

    /// Converts an uncertain graph to a weighted graph through an arbitrary
    /// probability-to-weight transform.  Edge ids are preserved.
    pub fn from_uncertain_with<F>(g: &UncertainGraph, mut transform: F) -> Self
    where
        F: FnMut(f64) -> f64,
    {
        let edges: Vec<(usize, usize, f64)> =
            g.edges().map(|e| (e.u, e.v, transform(e.p))).collect();
        Self::from_edges(g.num_vertices(), &edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Endpoints and weight of edge `e`.
    #[inline]
    pub fn edge(&self, e: usize) -> (usize, usize, f64) {
        let (u, v, w) = self.edges[e];
        (u as usize, v as usize, w)
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: usize) -> f64 {
        self.edges[e].2
    }

    /// Mutable access to the weight of edge `e` (the Nagamochi–Ibaraki
    /// forest decomposition decrements weights in place).
    pub fn weight_mut(&mut self, e: usize) -> &mut f64 {
        &mut self.edges[e].2
    }

    /// Iterator over `(edge id, u, v, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, usize, f64)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(e, &(u, v, w))| (e, u as usize, v as usize, w))
    }

    /// Neighbourhood of `u` as `(neighbour, edge id, weight)` triples.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj[self.offsets[u]..self.offsets[u + 1]]
            .iter()
            .map(move |&(v, e)| (v as usize, e as usize, self.edges[e as usize].2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_graph::UncertainGraph;

    #[test]
    fn from_edges_preserves_weights_and_ids() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 2.5), (1, 2, 0.5)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(0), (0, 1, 2.5));
        assert_eq!(g.weight(1), 0.5);
        assert_eq!(g.degree(1), 2);
        let ns: Vec<(usize, usize, f64)> = g.neighbors(1).collect();
        assert!(ns.contains(&(0, 0, 2.5)));
        assert!(ns.contains(&(2, 1, 0.5)));
    }

    #[test]
    fn from_uncertain_applies_transform_and_keeps_edge_ids() {
        let ug = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)]).unwrap();
        let wg = WeightedGraph::from_uncertain_with(&ug, |p| -p.ln());
        assert_eq!(wg.num_edges(), 2);
        assert!((wg.weight(0) - 0.5f64.ln().abs()).abs() < 1e-12);
        assert!((wg.weight(1) - 0.25f64.ln().abs()).abs() < 1e-12);
        // edge ids line up with the uncertain graph
        let (u, v, _) = wg.edge(1);
        assert_eq!(ug.edge_endpoints(1), (u, v));
    }

    #[test]
    fn weight_mut_allows_in_place_updates() {
        let mut g = WeightedGraph::from_edges(2, &[(0, 1, 3.0)]);
        *g.weight_mut(0) -= 1.0;
        assert_eq!(g.weight(0), 2.0);
    }

    #[test]
    fn edges_iterator_reports_all() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 2.0)]);
        let all: Vec<(usize, usize, usize, f64)> = g.edges().collect();
        assert_eq!(all, vec![(0, 0, 1, 1.0), (1, 2, 3, 2.0)]);
    }
}
