//! Precomputed *support template* of an uncertain graph: everything the
//! Monte-Carlo engine needs to materialise a sampled possible world as a
//! [`crate::DeterministicGraph`] without allocating.
//!
//! The template is built once per graph and holds the edge endpoint table
//! plus a CSR image of the full support (offsets / neighbour / edge-id
//! arrays).  Each world is then materialised by *compacting* into reusable
//! per-thread scratch buffers — either from a present-edge list (cost
//! `O(|V| + present)`, the skip-sampling fast path) or from an edge mask by
//! filtering the support CSR (cost `O(|V| + 2|E|)`).  Both paths perform
//! zero heap allocations once the scratch buffers have reached capacity.

use uncertain_graph::UncertainGraph;

/// Immutable per-graph data shared by every world materialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldTemplate {
    num_vertices: usize,
    /// Endpoints of every edge, indexed by edge id.
    endpoints: Vec<(u32, u32)>,
    /// CSR offsets over the full support (length `|V| + 1`).
    support_offsets: Vec<u32>,
    /// Support neighbours, `2|E|` entries.
    support_neighbors: Vec<u32>,
    /// Edge id of every support adjacency entry, parallel to
    /// `support_neighbors`.
    support_edge_ids: Vec<u32>,
}

impl WorldTemplate {
    /// Builds the template for `g` (one `O(|V| + |E|)` pass).
    pub fn new(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let endpoints: Vec<(u32, u32)> = g.edges().map(|e| (e.u as u32, e.v as u32)).collect();
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &endpoints {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; 2 * m];
        let mut edge_ids = vec![0u32; 2 * m];
        for (e, &(u, v)) in endpoints.iter().enumerate() {
            let cu = cursor[u as usize] as usize;
            neighbors[cu] = v;
            edge_ids[cu] = e as u32;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            neighbors[cv] = u;
            edge_ids[cv] = e as u32;
            cursor[v as usize] += 1;
        }
        WorldTemplate {
            num_vertices: n,
            endpoints,
            support_offsets: offsets,
            support_neighbors: neighbors,
            support_edge_ids: edge_ids,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges of the full support.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Endpoints `(u, v)` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: usize) -> (u32, u32) {
        self.endpoints[e]
    }

    /// The support-CSR adjacency range of vertex `u` as parallel
    /// `(neighbors, edge_ids)` slices.
    #[inline]
    pub fn support_adjacency(&self, u: usize) -> (&[u32], &[u32]) {
        let lo = self.support_offsets[u] as usize;
        let hi = self.support_offsets[u + 1] as usize;
        (
            &self.support_neighbors[lo..hi],
            &self.support_edge_ids[lo..hi],
        )
    }

    /// Degree of `u` in the full support.
    #[inline]
    pub fn support_degree(&self, u: usize) -> usize {
        (self.support_offsets[u + 1] - self.support_offsets[u]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0), (0, 2, 0.75)])
            .unwrap()
    }

    #[test]
    fn template_mirrors_the_support_graph() {
        let g = toy();
        let t = WorldTemplate::new(&g);
        assert_eq!(t.num_vertices(), 4);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.endpoints(0), (0, 1));
        assert_eq!(t.support_degree(0), 2);
        assert_eq!(t.support_degree(2), 3);
        let (neighbors, edge_ids) = t.support_adjacency(2);
        let mut pairs: Vec<(u32, u32)> = neighbors
            .iter()
            .copied()
            .zip(edge_ids.iter().copied())
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 3), (1, 1), (3, 2)]);
    }

    #[test]
    fn adjacency_entries_agree_with_endpoints() {
        let g = toy();
        let t = WorldTemplate::new(&g);
        for u in 0..t.num_vertices() {
            let (neighbors, edge_ids) = t.support_adjacency(u);
            for (&v, &e) in neighbors.iter().zip(edge_ids) {
                let (a, b) = t.endpoints(e as usize);
                assert!(
                    (a, b) == (u as u32, v) || (a, b) == (v, u as u32),
                    "edge {e} endpoints {a},{b} vs adjacency {u},{v}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_template() {
        let g = UncertainGraph::from_edges(3, []).unwrap();
        let t = WorldTemplate::new(&g);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.support_degree(1), 0);
        assert_eq!(t.support_adjacency(0).0.len(), 0);
    }
}
