//! Maximum spanning trees and forests (Kruskal).
//!
//! Algorithm 1 of the paper (Backbone Graph Initialization) repeatedly
//! extracts *maximum* spanning forests of the uncertain graph, using the edge
//! probabilities as weights, until the backbone holds `α'|E|` edges.  The
//! Nagamochi–Ibaraki baseline also relies on iterated spanning forests.
//! This module implements both primitives over plain edge lists so that the
//! callers can work with whichever graph representation they hold.

use crate::dsu::UnionFind;

/// Computes a maximum spanning forest of the subgraph formed by the edges in
/// `candidates` (indices into `edges`), using Kruskal's algorithm on weights
/// in decreasing order.
///
/// Returns the indices (into `edges`) of the forest edges.  If the candidate
/// subgraph is connected the result is a spanning tree of its vertices;
/// otherwise one tree per connected component.
///
/// Ties are broken by edge index so the result is deterministic.
pub fn maximum_spanning_forest(
    num_vertices: usize,
    edges: &[(usize, usize, f64)],
    candidates: &[usize],
) -> Vec<usize> {
    let mut order: Vec<usize> = candidates.to_vec();
    order.sort_by(|&a, &b| {
        edges[b]
            .2
            .partial_cmp(&edges[a].2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut uf = UnionFind::new(num_vertices);
    let mut forest = Vec::new();
    for e in order {
        let (u, v, _) = edges[e];
        if uf.union(u, v) {
            forest.push(e);
            if forest.len() + 1 == num_vertices {
                break;
            }
        }
    }
    forest
}

/// Convenience wrapper: maximum spanning forest over *all* edges.
pub fn maximum_spanning_forest_all(
    num_vertices: usize,
    edges: &[(usize, usize, f64)],
) -> Vec<usize> {
    let all: Vec<usize> = (0..edges.len()).collect();
    maximum_spanning_forest(num_vertices, edges, &all)
}

/// Total weight of a maximum spanning forest over all edges (useful for
/// testing and for sanity checks in the backbone construction).
pub fn maximum_spanning_tree_weight(num_vertices: usize, edges: &[(usize, usize, f64)]) -> f64 {
    maximum_spanning_forest_all(num_vertices, edges)
        .iter()
        .map(|&e| edges[e].2)
        .sum()
}

/// Decomposes the candidate edges into successive maximum spanning forests
/// `F_1, F_2, …` (each `F_i` is a maximum spanning forest of the edges not
/// used by `F_1..F_{i-1}`).  Stops when `max_forests` forests have been
/// produced or no candidate edges remain.
///
/// This is the iterated-forest primitive used both by backbone initialisation
/// (Algorithm 1) and by the Nagamochi–Ibaraki edge-connectivity index.
pub fn iterated_spanning_forests(
    num_vertices: usize,
    edges: &[(usize, usize, f64)],
    max_forests: usize,
) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..edges.len()).collect();
    let mut forests = Vec::new();
    for _ in 0..max_forests {
        if remaining.is_empty() {
            break;
        }
        let forest = maximum_spanning_forest(num_vertices, edges, &remaining);
        if forest.is_empty() {
            break;
        }
        let in_forest: std::collections::HashSet<usize> = forest.iter().copied().collect();
        remaining.retain(|e| !in_forest.contains(e));
        forests.push(forest);
    }
    forests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_edges() -> Vec<(usize, usize, f64)> {
        // A square with one heavy diagonal.
        vec![
            (0, 1, 0.9),  // 0
            (1, 2, 0.8),  // 1
            (2, 3, 0.7),  // 2
            (3, 0, 0.1),  // 3
            (0, 2, 0.95), // 4
        ]
    }

    #[test]
    fn max_spanning_tree_picks_heaviest_edges() {
        let edges = toy_edges();
        let tree = maximum_spanning_forest_all(4, &edges);
        assert_eq!(tree.len(), 3);
        // heaviest spanning tree: (0,2,0.95), (0,1,0.9), (2,3,0.7)
        let mut got = tree.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 4]);
        assert!((maximum_spanning_tree_weight(4, &edges) - (0.95 + 0.9 + 0.7)).abs() < 1e-12);
    }

    #[test]
    fn forest_on_disconnected_graph_spans_each_component() {
        let edges = vec![(0, 1, 0.5), (2, 3, 0.5), (2, 4, 0.4), (3, 4, 0.9)];
        let forest = maximum_spanning_forest_all(5, &edges);
        assert_eq!(forest.len(), 3); // 1 edge + 2 edges
        assert!(forest.contains(&0));
        assert!(forest.contains(&3)); // heaviest in second component
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let edges = toy_edges();
        // Exclude the two heaviest edges from the candidate set.
        let forest = maximum_spanning_forest(4, &edges, &[1, 2, 3]);
        let mut got = forest.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn iterated_forests_partition_edges() {
        let edges = toy_edges();
        let forests = iterated_spanning_forests(4, &edges, 10);
        let total: usize = forests.iter().map(Vec::len).sum();
        assert_eq!(total, edges.len());
        // No edge appears twice.
        let mut seen = std::collections::HashSet::new();
        for f in &forests {
            for &e in f {
                assert!(seen.insert(e));
            }
        }
        // First forest is a spanning tree of the connected graph.
        assert_eq!(forests[0].len(), 3);
    }

    #[test]
    fn iterated_forests_respect_limit() {
        let edges = toy_edges();
        let forests = iterated_spanning_forests(4, &edges, 1);
        assert_eq!(forests.len(), 1);
    }

    #[test]
    fn empty_input_yields_empty_forest() {
        let forest = maximum_spanning_forest_all(3, &[]);
        assert!(forest.is_empty());
        assert!(iterated_spanning_forests(3, &[], 5).is_empty());
    }

    #[test]
    fn deterministic_under_ties() {
        let edges = vec![(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)];
        let a = maximum_spanning_forest_all(3, &edges);
        let b = maximum_spanning_forest_all(3, &edges);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1]); // smallest indices win ties
    }
}
