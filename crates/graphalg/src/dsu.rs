//! Disjoint-set union (union-find) with union by rank and path compression.

/// Disjoint-set forest over the dense element range `0..len`.
///
/// Used by Kruskal's maximum-spanning-forest construction (backbone
/// initialisation, Algorithm 1), by the Nagamochi–Ibaraki spanning-forest
/// decomposition (baseline `NI`) and by world-level connectivity checks.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets `{0}, {1}, …, {len-1}`.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            rank: vec![0; len],
            num_sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of the set containing `x`, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression pass.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges the sets containing `a` and `b`.  Returns `true` if a merge
    /// happened (i.e. they were in different sets).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.num_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Resets the structure back to singletons without reallocating.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i;
        }
        self.rank.fill(0);
        self.num_sets = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
        assert_eq!(uf.num_sets(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_and_counts_sets() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already together
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert!(uf.union(3, 4));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn path_compression_keeps_results_consistent() {
        let mut uf = UnionFind::new(64);
        // Build a long chain by always unioning adjacent elements.
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        let root = uf.find(0);
        for i in 0..64 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.reset();
        assert_eq!(uf.num_sets(), 3);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn empty_structure_is_valid() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
