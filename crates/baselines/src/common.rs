//! Shared machinery of the baseline adaptations: forcing an edge selection to
//! exactly `α|E|` edges, as described at the end of Section 3.2.
//!
//! Both benchmark methods only control their output size in expectation
//! (through `ε` for `NI`, through the stretch `t` for the spanner), so the
//! paper calibrates the parameter until the selection has *at most* `α|E|`
//! edges and then tops the selection up to exactly `α|E|` by sampling the
//! remaining edges with their original probabilities.

use rand::Rng;
use uncertain_graph::{EdgeId, UncertainGraph};

/// Adjusts `selection` to exactly `target` edges:
///
/// * if it is too large, the lowest-probability edges are dropped (the
///   calibration loops normally prevent this; it is a safety net),
/// * if it is too small, missing edges are drawn from the rest of the graph
///   by probability-proportional sampling without replacement.
pub fn resize_selection<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mut selection: Vec<EdgeId>,
    target: usize,
    rng: &mut R,
) -> Vec<EdgeId> {
    selection.sort_unstable();
    selection.dedup();
    if selection.len() > target {
        // Keep the highest-probability edges; deterministic tie-break by id.
        selection.sort_by(|&a, &b| {
            g.edge_probability(b)
                .partial_cmp(&g.edge_probability(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        selection.truncate(target);
        selection.sort_unstable();
        return selection;
    }
    if selection.len() == target {
        return selection;
    }
    let mut chosen = vec![false; g.num_edges()];
    for &e in &selection {
        chosen[e] = true;
    }
    let mut pool: Vec<EdgeId> = (0..g.num_edges()).filter(|&e| !chosen[e]).collect();
    while selection.len() < target && !pool.is_empty() {
        let total: f64 = pool.iter().map(|&e| g.edge_probability(e)).sum();
        let idx = if total <= 0.0 {
            rng.gen_range(0..pool.len())
        } else {
            let mut ticket = rng.gen::<f64>() * total;
            let mut found = pool.len() - 1;
            for (i, &e) in pool.iter().enumerate() {
                ticket -= g.edge_probability(e);
                if ticket <= 0.0 {
                    found = i;
                    break;
                }
            }
            found
        };
        let e = pool.swap_remove(idx);
        selection.push(e);
    }
    selection.sort_unstable();
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph() -> UncertainGraph {
        UncertainGraph::from_edges(
            6,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (2, 3, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (5, 0, 0.4),
                (0, 2, 0.3),
                (1, 3, 0.2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn oversized_selection_keeps_highest_probability_edges() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(1);
        let resized = resize_selection(&g, vec![0, 1, 2, 3, 4, 5, 6, 7], 3, &mut rng);
        assert_eq!(resized, vec![0, 1, 2]);
    }

    #[test]
    fn undersized_selection_is_topped_up_without_duplicates() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(2);
        let resized = resize_selection(&g, vec![7], 5, &mut rng);
        assert_eq!(resized.len(), 5);
        let unique: std::collections::HashSet<_> = resized.iter().collect();
        assert_eq!(unique.len(), 5);
        assert!(resized.contains(&7), "existing selection must be preserved");
    }

    #[test]
    fn exact_selection_is_untouched() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(3);
        let resized = resize_selection(&g, vec![3, 1], 2, &mut rng);
        assert_eq!(resized, vec![1, 3]);
    }

    #[test]
    fn duplicates_in_input_are_removed_before_resizing() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(4);
        let resized = resize_selection(&g, vec![2, 2, 2], 2, &mut rng);
        assert_eq!(resized.len(), 2);
        assert!(resized.contains(&2));
    }

    #[test]
    fn target_larger_than_graph_returns_all_edges() {
        let g = graph();
        let mut rng = SmallRng::seed_from_u64(5);
        let resized = resize_selection(&g, vec![], 50, &mut rng);
        assert_eq!(resized.len(), g.num_edges());
    }
}
