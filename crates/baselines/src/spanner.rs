//! The `SS` baseline: Baswana–Sen `(2t−1)`-spanner adapted to uncertain
//! graphs (Section 3.2 and Appendix Algorithm 5).
//!
//! The uncertain graph is mapped to a weighted deterministic graph with
//! `w_e = −log p_e`, so that the lightest paths are the most probable ones.
//! A Baswana–Sen spanner of stretch `2t−1` is then computed; `t` is chosen by
//! solving `α|E| = t·n^{1+1/t}` and calibrated (in integer steps) until the
//! spanner holds at most `α|E|` edges.  The spanner keeps the *original*
//! probabilities — no redistribution at all — and is topped up to exactly
//! `α|E|` edges by probability-proportional sampling, exactly as the paper
//! prescribes.  The total absence of probability redistribution is what makes
//! `SS` the weakest baseline in every experiment of Section 6.

use std::time::Instant;

use rand::{Rng, RngCore};
use uncertain_graph::{EdgeId, UncertainGraph};

use crate::common::resize_selection;
use ugs_core::backbone::target_edge_count;
use ugs_core::spec::{materialize, Diagnostics, PhaseTimings, Sparsifier, SparsifyOutput};
use ugs_core::SparsifyError;

/// Configuration of the `SS` baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannerConfig {
    /// Sparsification ratio `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Maximum number of stretch-calibration rounds (each round increases
    /// `t` by one).
    pub max_calibration_rounds: usize,
    /// Upper bound on the stretch parameter `t`.
    pub max_t: usize,
}

impl Default for SpannerConfig {
    fn default() -> Self {
        SpannerConfig {
            alpha: 0.16,
            max_calibration_rounds: 12,
            max_t: 32,
        }
    }
}

/// The Baswana–Sen spanner baseline.
#[derive(Debug, Clone, Default)]
pub struct SpannerSparsifier {
    config: SpannerConfig,
}

impl SpannerSparsifier {
    /// Creates the baseline with ratio `alpha` and default calibration
    /// settings.
    pub fn new(alpha: f64) -> Self {
        SpannerSparsifier {
            config: SpannerConfig {
                alpha,
                ..Default::default()
            },
        }
    }

    /// Creates the baseline from a full configuration.
    pub fn with_config(config: SpannerConfig) -> Self {
        SpannerSparsifier { config }
    }

    /// Runs the baseline.
    pub fn sparsify<R: Rng + ?Sized>(
        &self,
        g: &UncertainGraph,
        rng: &mut R,
    ) -> Result<SparsifyOutput, SparsifyError> {
        let start = Instant::now();
        let config = &self.config;
        let target = target_edge_count(g, config.alpha)?;
        let n = g.num_vertices();

        // -log p weights (deterministic edges get weight 0, the lightest).
        let weights: Vec<f64> = g.probabilities().iter().map(|&p| -(p.ln())).collect();

        // Initial stretch: smallest integer t ≥ 2 with t·n^(1+1/t) ≤ α|E|,
        // i.e. the smallest spanner (in expectation) that still fits.
        let target_f = target as f64;
        let expected_size = |t: usize| t as f64 * (n as f64).powf(1.0 + 1.0 / t as f64);
        let mut t = (2..=config.max_t)
            .find(|&t| expected_size(t) <= target_f)
            .unwrap_or(config.max_t);

        let mut selection = Vec::new();
        let mut calibration_rounds = 0usize;
        while calibration_rounds < config.max_calibration_rounds {
            calibration_rounds += 1;
            selection = baswana_sen_spanner(g, &weights, t, rng);
            if selection.len() <= target || t >= config.max_t {
                break;
            }
            t += 1; // larger stretch → sparser spanner
        }

        // Keep the original probabilities and adjust to exactly α|E| edges.
        let resized = resize_selection(g, selection, target, rng);
        let assignment: Vec<(EdgeId, f64)> = resized
            .into_iter()
            .map(|e| (e, g.edge_probability(e)))
            .collect();

        let graph = materialize(g, &assignment)?;
        let diagnostics = Diagnostics {
            method: "SS".into(),
            alpha: config.alpha,
            target_edges: target,
            iterations: calibration_rounds,
            swaps: 0,
            objective_trace: Vec::new(),
            entropy_original: g.entropy(),
            entropy_sparsified: graph.entropy(),
            elapsed: start.elapsed(),
            phases: PhaseTimings::default(),
        };
        Ok(SparsifyOutput { graph, diagnostics })
    }
}

impl Sparsifier for SpannerSparsifier {
    fn name(&self) -> String {
        "SS".into()
    }

    fn sparsify_dyn(
        &self,
        g: &UncertainGraph,
        rng: &mut dyn RngCore,
    ) -> Result<SparsifyOutput, SparsifyError> {
        self.sparsify(g, rng)
    }
}

/// Baswana–Sen randomized `(2t−1)`-spanner (Appendix Algorithm 5): `t − 1`
/// clustering iterations followed by a vertex–cluster joining phase, plus the
/// final cluster-connection step the paper adds to keep the spanner
/// connected.  Returns the selected edge ids.
fn baswana_sen_spanner<R: Rng + ?Sized>(
    g: &UncertainGraph,
    weights: &[f64],
    t: usize,
    rng: &mut R,
) -> Vec<EdgeId> {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return Vec::new();
    }
    let t = t.max(2);
    let sample_probability = (n as f64).powf(-1.0 / t as f64);

    // cluster[v] = Some(cluster id) while v is still clustered, None once v
    // has been settled (it added edges to all its adjacent clusters).
    let mut cluster: Vec<Option<usize>> = (0..n).map(Some).collect();
    let mut edge_alive: Vec<bool> = vec![true; g.num_edges()];
    let mut spanner: Vec<EdgeId> = Vec::new();
    let mut in_spanner: Vec<bool> = vec![false; g.num_edges()];

    let add_edge = |e: EdgeId, spanner: &mut Vec<EdgeId>, in_spanner: &mut Vec<bool>| {
        if !in_spanner[e] {
            in_spanner[e] = true;
            spanner.push(e);
        }
    };

    // ---------------- Phase 1: t − 1 clustering iterations ----------------
    for _ in 1..t {
        // Sample the surviving clusters.
        let cluster_ids: std::collections::HashSet<usize> =
            cluster.iter().flatten().copied().collect();
        if cluster_ids.is_empty() {
            break;
        }
        let sampled: std::collections::HashSet<usize> = cluster_ids
            .iter()
            .copied()
            .filter(|_| rng.gen::<f64>() < sample_probability)
            .collect();

        let previous = cluster.clone();
        for v in 0..n {
            let Some(own) = previous[v] else { continue };
            if sampled.contains(&own) {
                continue; // v's own cluster survived; v stays in it.
            }
            // Least-weight alive edge from v to each adjacent cluster.
            let mut best_per_cluster: std::collections::HashMap<usize, (f64, EdgeId)> =
                std::collections::HashMap::new();
            for (u, e, _) in g.neighbors(v) {
                if !edge_alive[e] {
                    continue;
                }
                let Some(cu) = previous[u] else { continue };
                if cu == own {
                    continue;
                }
                let w = weights[e];
                let entry = best_per_cluster.entry(cu).or_insert((w, e));
                if w < entry.0 || (w == entry.0 && e < entry.1) {
                    *entry = (w, e);
                }
            }
            // Adjacent sampled cluster with the overall lightest edge.
            let best_sampled = best_per_cluster
                .iter()
                .filter(|(c, _)| sampled.contains(c))
                .min_by(|a, b| {
                    a.1 .0
                        .partial_cmp(&b.1 .0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1 .1.cmp(&b.1 .1))
                })
                .map(|(&c, &(w, e))| (c, w, e));

            match best_sampled {
                None => {
                    // No sampled neighbour: connect to every adjacent cluster
                    // with its lightest edge and retire v.
                    for (&c, &(_, e)) in &best_per_cluster {
                        add_edge(e, &mut spanner, &mut in_spanner);
                        // discard remaining edges between v and cluster c
                        for (u, e2, _) in g.neighbors(v) {
                            if previous[u] == Some(c) {
                                edge_alive[e2] = false;
                            }
                        }
                    }
                    cluster[v] = None;
                }
                Some((c_star, w_star, e_star)) => {
                    // Join the sampled cluster through its lightest edge.
                    add_edge(e_star, &mut spanner, &mut in_spanner);
                    cluster[v] = Some(c_star);
                    // Connect to every adjacent cluster with a strictly
                    // lighter edge and discard the handled edges.
                    for (&c, &(w, e)) in &best_per_cluster {
                        if c == c_star || w < w_star {
                            if c != c_star {
                                add_edge(e, &mut spanner, &mut in_spanner);
                            }
                            for (u, e2, _) in g.neighbors(v) {
                                if previous[u] == Some(c) {
                                    edge_alive[e2] = false;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // ---------------- Phase 2: vertex–cluster joining ----------------------
    for v in 0..n {
        let mut best_per_cluster: std::collections::HashMap<usize, (f64, EdgeId)> =
            std::collections::HashMap::new();
        for (u, e, _) in g.neighbors(v) {
            if !edge_alive[e] {
                continue;
            }
            let Some(cu) = cluster[u] else { continue };
            if cluster[v] == Some(cu) {
                continue;
            }
            let w = weights[e];
            let entry = best_per_cluster.entry(cu).or_insert((w, e));
            if w < entry.0 || (w == entry.0 && e < entry.1) {
                *entry = (w, e);
            }
        }
        for &(_, e) in best_per_cluster.values() {
            add_edge(e, &mut spanner, &mut in_spanner);
        }
    }

    // ------- Final step of Appendix Algorithm 5: keep the spanner connected.
    // Join the connected components of the current spanner with the lightest
    // available edges (a maximum-probability spanning forest over the
    // remaining edges restricted to inter-component pairs).
    let mut uf = graph_algos::UnionFind::new(n);
    for &e in &spanner {
        let (u, v) = g.edge_endpoints(e);
        uf.union(u, v);
    }
    if uf.num_sets() > 1 {
        let mut order: Vec<EdgeId> = (0..g.num_edges()).filter(|&e| !in_spanner[e]).collect();
        order.sort_by(|&a, &b| {
            weights[a]
                .partial_cmp(&weights[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for e in order {
            let (u, v) = g.edge_endpoints(e);
            if uf.union(u, v) {
                add_edge(e, &mut spanner, &mut in_spanner);
                if uf.num_sets() == 1 {
                    break;
                }
            }
        }
    }

    spanner
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::UncertainGraphBuilder;

    fn random_graph(seed: u64, n: usize, m: usize) -> UncertainGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = UncertainGraphBuilder::new(n);
        for u in 0..n {
            b.add_edge(u, (u + 1) % n, rng.gen_range(0.05..0.95))
                .unwrap();
        }
        let mut added = n;
        while added < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v
                && b.add_edge_if_absent(u, v, rng.gen_range(0.05..0.95))
                    .unwrap()
            {
                added += 1;
            }
        }
        b.build()
    }

    #[test]
    fn produces_exact_edge_count_and_keeps_original_probabilities() {
        let g = random_graph(1, 40, 240);
        for alpha in [0.15, 0.3, 0.6] {
            let mut rng = SmallRng::seed_from_u64(5);
            let out = SpannerSparsifier::new(alpha)
                .sparsify(&g, &mut rng)
                .unwrap();
            let expected = (alpha * 240.0).round() as usize;
            assert_eq!(out.graph.num_edges(), expected, "alpha {alpha}");
            // SS performs no probability redistribution at all.
            for e in out.graph.edges() {
                let original = g.edge_probability(g.find_edge(e.u, e.v).unwrap());
                assert!((e.p - original).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn entropy_is_not_reduced_relative_to_edge_count() {
        // Because SS keeps original probabilities, the entropy of its output
        // is exactly the sum of the original entropies of the kept edges.
        let g = random_graph(2, 30, 150);
        let mut rng = SmallRng::seed_from_u64(9);
        let out = SpannerSparsifier::new(0.3).sparsify(&g, &mut rng).unwrap();
        let expected_entropy: f64 = out
            .graph
            .edges()
            .map(|e| {
                uncertain_graph::entropy::edge_entropy(
                    g.edge_probability(g.find_edge(e.u, e.v).unwrap()),
                )
            })
            .sum();
        assert!((out.diagnostics.entropy_sparsified - expected_entropy).abs() < 1e-9);
    }

    #[test]
    fn spanner_output_is_connected_when_enough_edges_are_allowed() {
        let g = random_graph(3, 30, 180);
        let mut rng = SmallRng::seed_from_u64(3);
        let out = SpannerSparsifier::new(0.4).sparsify(&g, &mut rng).unwrap();
        assert!(out.graph.support_is_connected());
    }

    #[test]
    fn spanner_core_respects_connectivity_step() {
        let g = random_graph(4, 25, 100);
        let weights: Vec<f64> = g.probabilities().iter().map(|&p| -(p.ln())).collect();
        let mut rng = SmallRng::seed_from_u64(8);
        let spanner = baswana_sen_spanner(&g, &weights, 3, &mut rng);
        // spanning requirement
        let mut uf = graph_algos::UnionFind::new(g.num_vertices());
        for &e in &spanner {
            let (u, v) = g.edge_endpoints(e);
            uf.union(u, v);
        }
        assert_eq!(uf.num_sets(), 1, "spanner must connect the graph");
        // no duplicates
        let unique: std::collections::HashSet<_> = spanner.iter().collect();
        assert_eq!(unique.len(), spanner.len());
    }

    #[test]
    fn larger_stretch_produces_sparser_spanners_on_average() {
        let g = random_graph(5, 60, 600);
        let weights: Vec<f64> = g.probabilities().iter().map(|&p| -(p.ln())).collect();
        let mut sizes = Vec::new();
        for t in [2usize, 6] {
            let mut total = 0usize;
            for seed in 0..5u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                total += baswana_sen_spanner(&g, &weights, t, &mut rng).len();
            }
            sizes.push(total as f64 / 5.0);
        }
        assert!(
            sizes[1] <= sizes[0] + 1.0,
            "stretch 11 spanner ({}) should not be denser than stretch 3 ({})",
            sizes[1],
            sizes[0]
        );
    }

    #[test]
    fn invalid_alpha_is_rejected() {
        let g = random_graph(6, 10, 20);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            SpannerSparsifier::new(1.5).sparsify(&g, &mut rng),
            Err(SparsifyError::InvalidAlpha { .. })
        ));
    }

    #[test]
    fn trait_object_interface_works() {
        let g = random_graph(7, 20, 80);
        let s: Box<dyn Sparsifier> = Box::new(SpannerSparsifier::new(0.25));
        assert_eq!(s.name(), "SS");
        let mut rng = SmallRng::seed_from_u64(2);
        let out = s.sparsify_dyn(&g, &mut rng).unwrap();
        assert_eq!(out.graph.num_edges(), 20);
        assert_eq!(out.diagnostics.method, "SS");
    }

    #[test]
    fn handles_tiny_graphs() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)]).unwrap();
        let weights = vec![1.0, 1.0, 1.0];
        let mut rng = SmallRng::seed_from_u64(0);
        let spanner = baswana_sen_spanner(&g, &weights, 2, &mut rng);
        assert!(!spanner.is_empty());
        let empty = UncertainGraph::from_edges(2, []).unwrap();
        assert!(baswana_sen_spanner(&empty, &[], 2, &mut rng).is_empty());
    }
}
