//! # ugs-baselines
//!
//! Benchmark sparsifiers adapted from the *deterministic* graph
//! sparsification literature, exactly as Section 3.2 and the appendix of the
//! paper adapt them to the uncertain setting:
//!
//! * [`ni`] — `NI`, the Nagamochi–Ibaraki cut sparsifier: edge probabilities
//!   are converted to integer weights (`w_e = ⌊p_e / p_min⌉`), the iterated
//!   spanning-forest index determines a per-edge sampling probability, the
//!   sampled weights are converted back to probabilities capped at 1, and an
//!   `ε` calibration loop plus probability-proportional top-up force the
//!   result to exactly `α|E|` edges.
//! * [`spanner`] — `SS`, the Baswana–Sen `(2t−1)`-spanner run on the weights
//!   `w_e = −log p_e` (preserving most-probable paths), with the stretch `t`
//!   calibrated so the spanner has at most `α|E|` edges, original
//!   probabilities retained, and the same top-up step.
//!
//! Both implement the [`ugs_core::Sparsifier`] trait so experiments can treat
//! them interchangeably with `GDB`/`EMD`/`LP`.  As the paper demonstrates
//! (Figures 6–12), these adaptations perform poorly on uncertain graphs —
//! they redistribute little or no probability mass and do not reduce entropy
//! — which is precisely the motivation for purpose-built uncertain
//! sparsifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod ni;
pub mod spanner;

pub use ni::{NagamochiIbaraki, NiConfig};
pub use spanner::{SpannerConfig, SpannerSparsifier};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::ni::{NagamochiIbaraki, NiConfig};
    pub use crate::spanner::{SpannerConfig, SpannerSparsifier};
}
