//! The `NI` baseline: Nagamochi–Ibaraki cut sparsification adapted to
//! uncertain graphs (Section 3.2 and Appendix Algorithm 4).
//!
//! Pipeline:
//!
//! 1. convert probabilities to integer weights `w_e = ⌊p_e / p_min⌉`
//!    (capped, see [`NiConfig::max_weight`]),
//! 2. run the iterated spanning-forest decomposition: each round extracts a
//!    spanning forest of the edges that still have weight left and decrements
//!    their weights; when an edge's weight reaches zero its *NI index* is the
//!    current round `r`, and it is sampled with probability
//!    `ℓ_e = min(ln|V| / (ε²·r), 1)`, receiving weight `w_e / ℓ_e` if kept,
//! 3. calibrate `ε` (starting from `√(|V| ln|V| / (α|E|))`) until the sample
//!    has at most `α|E|` edges, then top up to exactly `α|E|` edges by
//!    probability-proportional sampling,
//! 4. map weights back to probabilities `p'_e = min(w'_e · p_min, 1)`.
//!
//! Because probabilities are bounded by 1 the inverse transform truncates the
//! enlarged weights, so `NI` performs only a mild probability redistribution
//! — the behaviour the paper identifies as the reason it fails to preserve
//! degrees and cuts in practice.

use std::time::Instant;

use rand::{Rng, RngCore};
use uncertain_graph::{EdgeId, UncertainGraph};

use crate::common::resize_selection;
use graph_algos::UnionFind;
use ugs_core::backbone::target_edge_count;
use ugs_core::spec::{materialize, Diagnostics, PhaseTimings, Sparsifier, SparsifyOutput};
use ugs_core::SparsifyError;

/// Configuration of the `NI` baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NiConfig {
    /// Sparsification ratio `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Multiplicative factor applied to `ε` during calibration (the paper's
    /// "small factor θ").
    pub epsilon_step: f64,
    /// Maximum number of calibration rounds.
    pub max_calibration_rounds: usize,
    /// Cap on the integer weights `⌊p_e / p_min⌉` so that graphs containing
    /// very rare edges do not explode the number of forest rounds.
    pub max_weight: u32,
}

impl Default for NiConfig {
    fn default() -> Self {
        NiConfig {
            alpha: 0.16,
            epsilon_step: 1.25,
            max_calibration_rounds: 40,
            max_weight: 1_000,
        }
    }
}

/// The Nagamochi–Ibaraki cut-sparsifier baseline.
#[derive(Debug, Clone, Default)]
pub struct NagamochiIbaraki {
    config: NiConfig,
}

impl NagamochiIbaraki {
    /// Creates the baseline with ratio `alpha` and default calibration
    /// settings.
    pub fn new(alpha: f64) -> Self {
        NagamochiIbaraki {
            config: NiConfig {
                alpha,
                ..Default::default()
            },
        }
    }

    /// Creates the baseline from a full configuration.
    pub fn with_config(config: NiConfig) -> Self {
        NagamochiIbaraki { config }
    }

    /// Runs the baseline.
    pub fn sparsify<R: Rng + ?Sized>(
        &self,
        g: &UncertainGraph,
        rng: &mut R,
    ) -> Result<SparsifyOutput, SparsifyError> {
        let start = Instant::now();
        let config = &self.config;
        if config.epsilon_step <= 1.0 || !config.epsilon_step.is_finite() {
            return Err(SparsifyError::InvalidParameter {
                name: "epsilon_step",
                message: "must be a finite number greater than 1".into(),
            });
        }
        let target = target_edge_count(g, config.alpha)?;
        let n = g.num_vertices();
        let m = g.num_edges();

        // Probability → integer weight transform.
        let p_min = g
            .probabilities()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(f64::MIN_POSITIVE);
        let weights: Vec<u32> = g
            .probabilities()
            .iter()
            .map(|&p| ((p / p_min).round() as u64).clamp(1, config.max_weight as u64) as u32)
            .collect();

        // Initial ε = sqrt(|V| ln|V| / (α|E|)).
        let ln_n = (n.max(2) as f64).ln();
        let mut epsilon = ((n as f64) * ln_n / (config.alpha * m as f64))
            .sqrt()
            .max(1e-6);

        // Calibrate ε until the sampled sparsifier is no larger than α|E|.
        let mut selection: Option<Vec<(EdgeId, f64)>> = None;
        let mut calibration_rounds = 0usize;
        for round in 0..config.max_calibration_rounds {
            calibration_rounds = round + 1;
            let candidate = ni_core(g, &weights, epsilon, rng);
            if candidate.len() <= target {
                // The paper keeps the first parameterisation that fits and
                // fills the remainder by random sampling.
                selection = Some(candidate);
                break;
            }
            // Too many edges kept: a larger ε lowers every sampling
            // probability.
            epsilon *= config.epsilon_step;
        }
        let weighted_selection = selection.unwrap_or_else(|| {
            // Calibration failed to get under the target (pathological
            // inputs); fall back to an empty core selection and let the
            // resize step fill the quota with the original probabilities.
            Vec::new()
        });

        // Inverse transform with the probability cap: p' = min(w'·p_min, 1).
        let mut assignment: Vec<(EdgeId, f64)> = weighted_selection
            .iter()
            .map(|&(e, w)| (e, (w * p_min).min(1.0)))
            .collect();

        // Top up / trim to exactly α|E| edges.  Added edges keep their
        // original probabilities.
        let selected_ids: Vec<EdgeId> = assignment.iter().map(|&(e, _)| e).collect();
        let resized = resize_selection(g, selected_ids, target, rng);
        let by_id: std::collections::HashMap<EdgeId, f64> = assignment.drain(..).collect();
        let assignment: Vec<(EdgeId, f64)> = resized
            .into_iter()
            .map(|e| {
                (
                    e,
                    by_id
                        .get(&e)
                        .copied()
                        .unwrap_or_else(|| g.edge_probability(e)),
                )
            })
            .collect();

        let graph = materialize(g, &assignment)?;
        let diagnostics = Diagnostics {
            method: "NI".into(),
            alpha: config.alpha,
            target_edges: target,
            iterations: calibration_rounds,
            swaps: 0,
            objective_trace: Vec::new(),
            entropy_original: g.entropy(),
            entropy_sparsified: graph.entropy(),
            elapsed: start.elapsed(),
            phases: PhaseTimings::default(),
        };
        Ok(SparsifyOutput { graph, diagnostics })
    }
}

impl Sparsifier for NagamochiIbaraki {
    fn name(&self) -> String {
        "NI".into()
    }

    fn sparsify_dyn(
        &self,
        g: &UncertainGraph,
        rng: &mut dyn RngCore,
    ) -> Result<SparsifyOutput, SparsifyError> {
        self.sparsify(g, rng)
    }
}

/// Core of Appendix Algorithm 4: the iterated spanning-forest decomposition
/// with index-based sampling.  Returns `(edge, sampled weight)` pairs.
fn ni_core<R: Rng + ?Sized>(
    g: &UncertainGraph,
    weights: &[u32],
    epsilon: f64,
    rng: &mut R,
) -> Vec<(EdgeId, f64)> {
    let n = g.num_vertices();
    let ln_n = (n.max(2) as f64).ln();
    let mut remaining: Vec<u32> = weights.to_vec();
    let mut alive: Vec<bool> = vec![true; g.num_edges()];
    let mut alive_count = g.num_edges();
    let mut result = Vec::new();
    let mut round = 0usize;

    while alive_count > 0 {
        round += 1;
        // Spanning forest of the still-alive edges, preferring high remaining
        // weight so heavy edges stay in contiguous forests (the NI property
        // that an edge of weight w participates in w consecutive forests).
        let mut order: Vec<EdgeId> = (0..g.num_edges()).filter(|&e| alive[e]).collect();
        order.sort_by(|&a, &b| remaining[b].cmp(&remaining[a]).then(a.cmp(&b)));
        let mut uf = UnionFind::new(n);
        let mut forest = Vec::new();
        for &e in &order {
            let (u, v) = g.edge_endpoints(e);
            if uf.union(u, v) {
                forest.push(e);
            }
        }
        if forest.is_empty() {
            // Remaining edges are self-contained duplicates (cannot happen in
            // a simple graph) — bail out defensively.
            break;
        }
        for e in forest {
            remaining[e] -= 1;
            if remaining[e] == 0 {
                alive[e] = false;
                alive_count -= 1;
                // The NI index of e is the current round.
                let sampling = (ln_n / (epsilon * epsilon * round as f64)).min(1.0);
                if rng.gen::<f64>() < sampling {
                    result.push((e, weights[e] as f64 / sampling));
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::UncertainGraphBuilder;

    fn random_graph(seed: u64, n: usize, m: usize, p_low: f64, p_high: f64) -> UncertainGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = UncertainGraphBuilder::new(n);
        for u in 0..n {
            b.add_edge(u, (u + 1) % n, rng.gen_range(p_low..p_high))
                .unwrap();
        }
        let mut added = n;
        while added < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v
                && b.add_edge_if_absent(u, v, rng.gen_range(p_low..p_high))
                    .unwrap()
            {
                added += 1;
            }
        }
        b.build()
    }

    #[test]
    fn produces_exact_edge_count_with_valid_probabilities() {
        let g = random_graph(1, 40, 200, 0.05, 0.95);
        for alpha in [0.1, 0.25, 0.5] {
            let mut rng = SmallRng::seed_from_u64(7);
            let out = NagamochiIbaraki::new(alpha).sparsify(&g, &mut rng).unwrap();
            let expected = (alpha * 200.0).round() as usize;
            assert_eq!(out.graph.num_edges(), expected, "alpha {alpha}");
            assert_eq!(out.graph.num_vertices(), g.num_vertices());
            for e in out.graph.edges() {
                assert!(e.p > 0.0 && e.p <= 1.0);
            }
        }
    }

    #[test]
    fn dense_areas_are_sampled_away_first() {
        // A graph with a dense clique and a sparse path: NI's index-based
        // sampling keeps path (low-connectivity) edges with higher
        // probability than clique (high-connectivity) edges.
        let mut b = UncertainGraphBuilder::new(16);
        // clique on vertices 0..8
        for u in 0..8usize {
            for v in (u + 1)..8 {
                b.add_edge(u, v, 0.5).unwrap();
            }
        }
        // path on vertices 8..16 connected to the clique
        for u in 7..15usize {
            b.add_edge(u, u + 1, 0.5).unwrap();
        }
        let g = b.build();
        let weights = vec![1u32; g.num_edges()];
        let mut rng = SmallRng::seed_from_u64(3);
        // With ε small enough everything is kept; we only check the NI index
        // behaviour through the assigned sampled weights: path edges must be
        // settled in round 1 (weight / 1.0) while some clique edges settle in
        // later rounds and, when kept, carry inflated weights.
        let kept = ni_core(&g, &weights, 1.0, &mut rng);
        assert!(!kept.is_empty());
        let path_edge = g.find_edge(10, 11).unwrap();
        let path_weight = kept.iter().find(|&&(e, _)| e == path_edge).map(|&(_, w)| w);
        // Path edges are bridges: they appear in the first forest and their
        // sampling probability is the highest possible, so if kept their
        // weight is the smallest possible (ln n / ε² ≥ 1 → weight 1).
        if let Some(w) = path_weight {
            assert!((w - 1.0).abs() < 1e-9, "bridge edge weight {w}");
        }
        let max_clique_weight = kept
            .iter()
            .filter(|&&(e, _)| {
                let (u, v) = g.edge_endpoints(e);
                u < 8 && v < 8
            })
            .map(|&(_, w)| w)
            .fold(0.0f64, f64::max);
        assert!(max_clique_weight >= 1.0);
    }

    #[test]
    fn ni_redistribution_is_coarse_and_capped_at_one() {
        // The weight round trip only produces original probabilities (for
        // topped-up edges), integer multiples of p_min (for edges kept by the
        // core with their inflated weights), or the cap 1.0 — the "mild
        // probability redistribution" the paper blames for NI's poor degree
        // and cut preservation.
        let g = random_graph(5, 30, 150, 0.8, 0.99);
        let p_min = g
            .probabilities()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let mut rng = SmallRng::seed_from_u64(11);
        let out = NagamochiIbaraki::new(0.3).sparsify(&g, &mut rng).unwrap();
        for e in out.graph.edges() {
            let original = g.edge_probability(g.find_edge(e.u, e.v).unwrap());
            // NI never *lowers* a probability: kept core edges carry
            // inflated weights (≥ their original integer weight) and
            // topped-up edges keep the original value; everything is capped
            // at 1.
            assert!(e.p <= 1.0 + 1e-12);
            assert!(
                e.p >= p_min - 1e-12,
                "probability {} fell below p_min {p_min}",
                e.p
            );
            assert!(
                e.p >= original.min(p_min * (original / p_min).floor()) - 1e-9,
                "probability {} dropped far below the original {original}",
                e.p
            );
        }
    }

    #[test]
    fn calibration_shrinks_the_core_selection_under_the_target() {
        let g = random_graph(9, 50, 300, 0.05, 0.95);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = NagamochiIbaraki::new(0.1).sparsify(&g, &mut rng).unwrap();
        assert_eq!(out.graph.num_edges(), 30);
        assert!(out.diagnostics.iterations >= 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let g = random_graph(1, 10, 20, 0.1, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            NagamochiIbaraki::new(0.0).sparsify(&g, &mut rng),
            Err(SparsifyError::InvalidAlpha { .. })
        ));
        let bad = NagamochiIbaraki::with_config(NiConfig {
            epsilon_step: 1.0,
            ..Default::default()
        });
        assert!(matches!(
            bad.sparsify(&g, &mut rng),
            Err(SparsifyError::InvalidParameter {
                name: "epsilon_step",
                ..
            })
        ));
    }

    #[test]
    fn trait_object_interface_works() {
        let g = random_graph(4, 20, 60, 0.1, 0.9);
        let s: Box<dyn Sparsifier> = Box::new(NagamochiIbaraki::new(0.25));
        assert_eq!(s.name(), "NI");
        let mut rng = SmallRng::seed_from_u64(0);
        let out = s.sparsify_dyn(&g, &mut rng).unwrap();
        assert_eq!(out.graph.num_edges(), 15);
        assert_eq!(out.diagnostics.method, "NI");
    }
}
