//! Distributed loopback, over real process boundaries: two `ugs serve
//! --shard K --shards 2` worker processes are driven by `ugs coordinate`,
//! and the distributed report must carry exactly the results the
//! in-process `ugs plan` run produces — for the boundary-exchange count
//! queries *and* the ghost-halo neighbourhood queries (`pagerank`,
//! `clustering`, `knn`) in one mixed plan.  A dead fleet must fail with
//! the typed `worker_lost` error — quickly, never a hang.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use uncertain_graph::{io, UncertainGraph};

const UGS: &str = env!("CARGO_BIN_EXE_ugs");

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ugs-dist-loopback");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn write_graph(name: &str) -> String {
    let n = 30;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n, 0.15 + 0.02 * i as f64));
    }
    for i in (0..n).step_by(5) {
        edges.push((i, (i + 11) % n, 0.55));
    }
    let g = UncertainGraph::from_edges(n, edges).unwrap();
    let path = temp_path(name);
    io::write_text_file(&g, &path).unwrap();
    path.to_string_lossy().to_string()
}

/// Spawns `ugs serve --shard k --shards 2` and waits for its announce file.
fn spawn_worker(graph: &str, k: usize) -> (Child, String) {
    let announce = temp_path(&format!("worker-{k}.addr"));
    std::fs::remove_file(&announce).ok();
    let child = Command::new(UGS)
        .args([
            "serve",
            graph,
            "--shard",
            &k.to_string(),
            "--shards",
            "2",
            "--announce",
            &announce.to_string_lossy(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&announce) {
            if !addr.trim().is_empty() {
                break addr.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "worker {k} never announced");
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

fn run_ugs(args: &[&str]) -> Output {
    Command::new(UGS).args(args).output().expect("run ugs")
}

fn shutdown(addr: &str, mut child: Child) {
    let output = run_ugs(&["request", addr, "--op", "shutdown"]);
    assert!(output.status.success(), "shutdown request failed");
    child.wait().expect("worker did not exit");
}

#[test]
fn coordinator_over_two_worker_processes_matches_the_in_process_run() {
    let graph = write_graph("loopback.txt");
    let plan_path = temp_path("loopback-plan.json");
    std::fs::write(
        &plan_path,
        r#"{"worlds": 150, "threads": 2, "seed": 11,
            "queries": [{"type": "connectivity"},
                        {"type": "degree_histogram"},
                        {"type": "edge_frequency"},
                        {"type": "pagerank", "tolerance": 0.01},
                        {"type": "clustering"},
                        {"type": "knn", "source": 4, "k": 6}]}"#,
    )
    .unwrap();
    let plan = plan_path.to_string_lossy().to_string();

    let (child0, addr0) = spawn_worker(&graph, 0);
    let (child1, addr1) = spawn_worker(&graph, 1);

    let distributed = run_ugs(&[
        "coordinate",
        &graph,
        &plan,
        "--workers",
        &format!("{addr0},{addr1}"),
        "--compact",
    ]);
    assert!(
        distributed.status.success(),
        "coordinate failed: {}",
        String::from_utf8_lossy(&distributed.stderr)
    );
    let in_process = run_ugs(&["plan", &plan, "--graph", &graph, "--compact"]);
    assert!(in_process.status.success());

    // Same plan, same worlds: the per-query results must agree byte for
    // byte (the report envelopes differ only in the graph label — the
    // coordinator reports the fleet's fingerprint, `ugs plan` the path).
    let parse = |output: &Output| {
        minijson::Value::parse(std::str::from_utf8(&output.stdout).unwrap().trim()).unwrap()
    };
    let (dist_doc, mono_doc) = (parse(&distributed), parse(&in_process));
    assert_eq!(
        dist_doc.get("results").unwrap().render(),
        mono_doc.get("results").unwrap().render(),
        "distributed results differ from the in-process run"
    );
    for field in ["worlds", "threads", "seed", "mode"] {
        assert_eq!(
            dist_doc.get(field).map(minijson::Value::render),
            mono_doc.get(field).map(minijson::Value::render),
            "envelope field {field} differs"
        );
    }

    // Fault path: with the fleet gone, coordinate degrades to the typed
    // error in bounded time instead of hanging.
    shutdown(&addr0, child0);
    shutdown(&addr1, child1);
    let started = Instant::now();
    let dead = run_ugs(&[
        "coordinate",
        &graph,
        &plan,
        "--workers",
        &format!("{addr0},{addr1}"),
    ]);
    assert!(!dead.status.success());
    assert!(
        String::from_utf8_lossy(&dead.stderr).contains("worker_lost"),
        "expected worker_lost, got: {}",
        String::from_utf8_lossy(&dead.stderr)
    );
    assert!(started.elapsed() < Duration::from_secs(60), "must not hang");

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&plan_path).ok();
}
