//! Process-level failover, end to end: `ugs supervise` launches a real
//! two-worker fleet, a worker is SIGKILLed while `ugs coordinate` drives a
//! plan through it, the supervisor respawns the corpse on its fixed port,
//! and the plan still completes with results byte-identical to the
//! in-process `ugs plan` run.  A standby address backs the coordinator so
//! the test never depends on respawn timing.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use uncertain_graph::{io, UncertainGraph};

const UGS: &str = env!("CARGO_BIN_EXE_ugs");

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ugs-supervise-loopback");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn write_graph(name: &str) -> String {
    let n = 30;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n, 0.15 + 0.02 * i as f64));
    }
    for i in (0..n).step_by(5) {
        edges.push((i, (i + 11) % n, 0.55));
    }
    let g = UncertainGraph::from_edges(n, edges).unwrap();
    let path = temp_path(name);
    io::write_text_file(&g, &path).unwrap();
    path.to_string_lossy().to_string()
}

fn run_ugs(args: &[&str]) -> Output {
    Command::new(UGS).args(args).output().expect("run ugs")
}

/// Two ports the OS considers free right now (bound then released; the
/// supervisor's workers re-bind them moments later).
fn free_ports() -> (u16, u16) {
    let a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    (
        a.local_addr().unwrap().port(),
        b.local_addr().unwrap().port(),
    )
}

/// Parses the announce file into `(name, addr, pid)` rows.
fn read_announce(path: &PathBuf) -> Vec<(String, String, u32)> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            Some((
                parts.next()?.to_string(),
                parts.next()?.to_string(),
                parts.next()?.parse().ok()?,
            ))
        })
        .collect()
}

/// Waits until the announce file lists a running `shard-1` whose pid
/// differs from `not` (pass 0 to accept any), returning its `(addr, pid)`.
fn wait_for_shard1(path: &PathBuf, not: u32, what: &str) -> (String, u32) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some((_, addr, pid)) = read_announce(path)
            .into_iter()
            .find(|(name, _, pid)| name == "shard-1" && *pid != not)
        {
            return (addr, pid);
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Spawns a standby `ugs serve --shard 1 --shards 2` and returns its
/// address once announced.
fn spawn_standby(graph: &str) -> (Child, String) {
    let announce = temp_path("standby.addr");
    std::fs::remove_file(&announce).ok();
    let child = Command::new(UGS)
        .args([
            "serve",
            graph,
            "--shard",
            "1",
            "--shards",
            "2",
            "--announce",
            &announce.to_string_lossy(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn standby");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&announce) {
            if !addr.trim().is_empty() {
                break addr.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "standby never announced");
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

#[test]
fn a_sigkilled_worker_is_respawned_and_the_plan_completes_bit_identically() {
    let graph = write_graph("fleet.txt");
    let plan_path = temp_path("fleet-plan.json");
    // Enough worlds that the coordinate run below is still paging when the
    // kill lands (and cheap enough to finish promptly either way).
    std::fs::write(
        &plan_path,
        r#"{"worlds": 400000, "threads": 2, "seed": 23,
            "queries": [{"type": "connectivity"},
                        {"type": "degree_histogram"},
                        {"type": "edge_frequency"}]}"#,
    )
    .unwrap();
    let plan = plan_path.to_string_lossy().to_string();
    let announce = temp_path("fleet.announce");
    std::fs::remove_file(&announce).ok();

    let (port0, port1) = free_ports();
    let mut supervisor = Command::new(UGS)
        .args([
            "supervise",
            &graph,
            "--ports",
            &format!("{port0},{port1}"),
            "--announce",
            &announce.to_string_lossy(),
            // Generous budgets: this test ends the fleet with graceful
            // shutdowns, never by exhausting the supervisor.
            "--max-respawns",
            "300",
            "--crash-loop",
            "300",
            "--backoff-ms",
            "300",
            "--ping-ms",
            "200",
            "--compact",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn supervisor");

    let (victim_addr, victim_pid) = wait_for_shard1(&announce, 0, "the fleet to come up");
    let worker0_addr = format!("127.0.0.1:{port0}");
    assert_eq!(victim_addr, format!("127.0.0.1:{port1}"));
    let (standby_child, standby_addr) = spawn_standby(&graph);

    // Drive the plan through the fleet while the kill lands.  The retry
    // budget rides out the respawn window; the standby catches the case
    // where the respawn loses the race entirely.
    let started = Instant::now();
    let coordinate = Command::new(UGS)
        .args([
            "coordinate",
            &graph,
            &plan,
            "--workers",
            &format!("{worker0_addr},{victim_addr}"),
            "--standbys",
            &standby_addr,
            "--retries",
            "60",
            "--backoff-ms",
            "150",
            "--timeout-ms",
            "4000",
            "--compact",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn coordinate");

    std::thread::sleep(Duration::from_millis(250));
    let killed = Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {victim_pid} failed");

    let distributed = coordinate.wait_with_output().expect("coordinate exits");
    assert!(
        distributed.status.success(),
        "coordinate failed after the kill: {}",
        String::from_utf8_lossy(&distributed.stderr)
    );
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "recovery must be bounded, took {:?}",
        started.elapsed()
    );

    // Byte-identical results despite losing a worker mid-plan.
    let in_process = run_ugs(&["plan", &plan, "--graph", &graph, "--compact"]);
    assert!(in_process.status.success());
    let parse = |output: &Output| {
        minijson::Value::parse(std::str::from_utf8(&output.stdout).unwrap().trim()).unwrap()
    };
    let (dist_doc, mono_doc) = (parse(&distributed), parse(&in_process));
    assert_eq!(
        dist_doc.get("results").unwrap().render(),
        mono_doc.get("results").unwrap().render(),
        "recovered distributed results differ from the in-process run"
    );

    // Respawn proof: the supervisor brings shard-1 back on its fixed port
    // under a fresh pid.
    let (respawned_addr, respawned_pid) =
        wait_for_shard1(&announce, victim_pid, "the respawned worker");
    assert_eq!(respawned_addr, victim_addr, "respawns re-bind the address");
    assert_ne!(respawned_pid, victim_pid);

    // Graceful teardown: shutdown ops exit every worker with status 0, so
    // the supervisor finishes on its own and reports what it did.
    for addr in [&worker0_addr, &victim_addr] {
        let output = run_ugs(&["request", addr, "--op", "shutdown"]);
        assert!(
            output.status.success(),
            "shutdown of {addr} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    let report = loop {
        match supervisor.try_wait().expect("poll supervisor") {
            Some(status) => {
                assert!(status.success(), "supervisor exited with {status}");
                break supervisor.wait_with_output().expect("supervisor output");
            }
            None => {
                assert!(Instant::now() < deadline, "supervisor never finished");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    let report =
        minijson::Value::parse(std::str::from_utf8(&report.stdout).unwrap().trim()).unwrap();
    let workers = report.get("workers").unwrap().as_array().unwrap();
    assert_eq!(workers.len(), 2);
    for worker in workers {
        assert_eq!(
            worker.get_str("outcome"),
            Some("done"),
            "{}",
            report.render()
        );
    }
    let shard1 = workers
        .iter()
        .find(|w| w.get_str("name") == Some("shard-1"))
        .unwrap();
    assert!(
        shard1.get_usize("respawns").unwrap() >= 1,
        "the kill must show up as a respawn: {}",
        report.render()
    );

    let _ = run_ugs(&["request", &standby_addr, "--op", "shutdown"]);
    let mut standby_child = standby_child;
    standby_child.wait().ok();
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&plan_path).ok();
    std::fs::remove_file(&announce).ok();
}
