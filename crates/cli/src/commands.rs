//! Implementation of the CLI subcommands.
//!
//! Every command returns its report as a `String` so it can be unit tested
//! without capturing stdout; `main` only prints the result.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::{io, GraphStatistics, UncertainGraph};

use crate::args::{ArgsError, ParsedArgs};
use ugs_baselines::{NagamochiIbaraki, SpannerSparsifier};
use ugs_core::prelude::*;
use ugs_datasets::prelude::*;
use ugs_metrics::cuts::CutSamplingConfig;
use ugs_metrics::degree::MetricDiscrepancy;
use ugs_queries::prelude::*;

/// Errors surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing / validation error.
    Args(ArgsError),
    /// Graph I/O or validation error.
    Graph(uncertain_graph::GraphError),
    /// Sparsification error.
    Sparsify(SparsifyError),
    /// Any other user-facing problem.
    Message(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Sparsify(e) => write!(f, "{e}"),
            CliError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::Args(e)
    }
}
impl From<uncertain_graph::GraphError> for CliError {
    fn from(e: uncertain_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}
impl From<SparsifyError> for CliError {
    fn from(e: SparsifyError) -> Self {
        CliError::Sparsify(e)
    }
}

/// The usage / help text.
pub fn usage() -> String {
    "ugs — uncertain graph sparsification toolkit

USAGE:
    ugs <command> [arguments] [--option value ...]

COMMANDS:
    generate   --dataset flickr|twitter|er --scale tiny|small|medium|paper
               [--seed N] [--er-vertices N] [--er-density Q] --output FILE
               Generate a synthetic uncertain graph and write it as a text edge list.

    stats      <graph.txt>
               Print Table-1-style statistics of an uncertain graph.

    sparsify   <graph.txt> --alpha A [--method gdb|emd|lp|ni|ss]
               [--discrepancy absolute|relative] [--backbone random|spanning|local-degree]
               [--h H] [--k K] [--seed N] [--output FILE]
               Sparsify the graph to A·|E| edges and report diagnostics.

    query      <graph.txt> --query pagerank|cc|sp|rl|connectivity|knn
               [--worlds N] [--pairs N] [--top K] [--source V] [--seed N]
               [--threads N] [--sequential] [--mode auto|skip|per-edge]
               Run a Monte-Carlo query and print a summary.  Worlds are
               evaluated on all cores by default (--threads 0 = auto);
               --sequential forces the machine-independent single-thread
               path and --mode overrides the world-sampling strategy.

    compare    <original.txt> <sparsified.txt> [--worlds N] [--pairs N] [--cuts N] [--seed N]
               [--threads N] [--sequential] [--mode auto|skip|per-edge]
               Compare a sparsified graph against its original (degree/cut MAE,
               relative entropy, earth mover's distance of PageRank and reliability).

    batch      <graph.txt> --queries q1,q2,... [--worlds N] [--pairs N] [--top K]
               [--source V] [--seed N] [--threads N] [--sequential]
               [--mode auto|skip|per-edge] [--compact]
               Evaluate several Monte-Carlo queries over ONE shared set of
               sampled worlds (queries: pagerank|cc|sp|connectivity|
               degree-hist|edge-freq|knn) and print the results as JSON.
               Sampling and world materialisation are paid once for the whole
               query mix instead of once per query.

    help       Show this message.
"
    .to_string()
}

fn load(path: &str) -> Result<UncertainGraph, CliError> {
    Ok(io::read_text_file(path)?)
}

/// `ugs generate`.
pub fn generate(args: &ParsedArgs) -> Result<String, CliError> {
    let dataset = args.option_or("dataset", "flickr");
    let scale_name = args.option_or("scale", "tiny");
    let scale = Scale::parse(&scale_name).ok_or_else(|| {
        CliError::Message(format!(
            "unknown scale {scale_name:?}; expected tiny|small|medium|paper"
        ))
    })?;
    let seed = args.u64_or("seed", 42)?;
    let output = args.required("output")?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = match dataset.as_str() {
        "flickr" => flickr_like(scale, &mut rng),
        "twitter" => twitter_like(scale, &mut rng),
        "er" => {
            let vertices = args.usize_or("er-vertices", 500)?;
            let density = args.f64_or("er-density", 0.05)?;
            erdos_renyi(vertices, density, ProbabilityModel::FlickrLike, &mut rng)
        }
        other => {
            return Err(CliError::Message(format!(
                "unknown dataset {other:?}; expected flickr|twitter|er"
            )))
        }
    };
    io::write_text_file(&graph, output)?;
    let stats = GraphStatistics::compute(&graph);
    Ok(format!(
        "wrote {} ({} vertices, {} edges, E[p] = {:.3}) to {}",
        dataset, stats.num_vertices, stats.num_edges, stats.mean_edge_probability, output
    ))
}

/// `ugs stats`.
pub fn stats(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let stats = GraphStatistics::compute(&graph);
    let mut out = String::new();
    out.push_str(&GraphStatistics::table_header());
    out.push('\n');
    out.push_str(&stats.table_row(path));
    out.push('\n');
    out.push_str(&format!(
        "entropy: {:.2} bits   density: {:.4}   support connected: {}\n",
        stats.entropy, stats.density, stats.support_connected
    ));
    Ok(out)
}

fn build_sparsifier(args: &ParsedArgs, alpha: f64) -> Result<Box<dyn Sparsifier>, CliError> {
    let method = args.option_or("method", "gdb");
    let discrepancy = match args.option_or("discrepancy", "absolute").as_str() {
        "absolute" | "abs" => DiscrepancyKind::Absolute,
        "relative" | "rel" => DiscrepancyKind::Relative,
        other => {
            return Err(CliError::Message(format!(
                "unknown discrepancy {other:?}; expected absolute|relative"
            )))
        }
    };
    let backbone = match args.option_or("backbone", "spanning").as_str() {
        "random" => BackboneKind::Random,
        "spanning" => BackboneKind::SpanningForests,
        "local-degree" => BackboneKind::LocalDegree,
        other => {
            return Err(CliError::Message(format!(
                "unknown backbone {other:?}; expected random|spanning|local-degree"
            )))
        }
    };
    let h = args.f64_or("h", 0.05)?;
    let k = args.usize_or("k", 1)?;
    let cut_rule = if k <= 1 {
        CutRule::Degree
    } else {
        CutRule::Cuts(k)
    };
    let spec = |base: SparsifierSpec| {
        base.alpha(alpha)
            .discrepancy(discrepancy)
            .backbone(backbone)
            .entropy_h(h)
            .cut_rule(cut_rule)
    };
    Ok(match method.as_str() {
        "gdb" => Box::new(spec(SparsifierSpec::gdb())),
        "emd" => Box::new(spec(SparsifierSpec::emd())),
        "lp" => Box::new(spec(SparsifierSpec::lp())),
        "ni" => Box::new(NagamochiIbaraki::new(alpha)),
        "ss" => Box::new(SpannerSparsifier::new(alpha)),
        other => {
            return Err(CliError::Message(format!(
                "unknown method {other:?}; expected gdb|emd|lp|ni|ss"
            )))
        }
    })
}

/// `ugs sparsify`.
pub fn sparsify(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.positional(0, "graph.txt")?;
    let alpha = args.f64_or("alpha", 0.16)?;
    let seed = args.u64_or("seed", 42)?;
    let graph = load(path)?;
    let sparsifier = build_sparsifier(args, alpha)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let output = sparsifier.sparsify_dyn(&graph, &mut rng)?;
    let mut report = format!(
        "method          : {}\nedges           : {} -> {}\nrelative entropy: {:.4}\ndegree MAE      : {:.6}\niterations      : {}\ntime            : {:?}\n",
        output.diagnostics.method,
        graph.num_edges(),
        output.graph.num_edges(),
        output.diagnostics.relative_entropy(),
        ugs_metrics::degree_discrepancy_mae(&graph, &output.graph, MetricDiscrepancy::Absolute),
        output.diagnostics.iterations,
        output.diagnostics.elapsed,
    );
    if let Some(out_path) = args.options.get("output") {
        io::write_text_file(&output.graph, out_path)?;
        report.push_str(&format!("written to      : {out_path}\n"));
    }
    Ok(report)
}

/// Builds the Monte-Carlo configuration shared by `query` and `compare`:
/// `--worlds`, `--threads` (0 = all cores), `--sequential` and `--mode`.
fn monte_carlo_config(args: &ParsedArgs, default_worlds: usize) -> Result<MonteCarlo, CliError> {
    let worlds = args.usize_or("worlds", default_worlds)?;
    let threads = if args.flag("sequential") {
        1
    } else {
        match args.usize_or("threads", 0)? {
            0 => ugs_queries::mc::available_threads(),
            n => n,
        }
    };
    let method = match args.option_or("mode", "auto").as_str() {
        "auto" => SampleMethod::Auto,
        "skip" => SampleMethod::Skip,
        "per-edge" | "peredge" => SampleMethod::PerEdge,
        other => {
            return Err(CliError::Message(format!(
                "unknown sampling mode {other:?}; expected auto|skip|per-edge"
            )))
        }
    };
    Ok(MonteCarlo::worlds(worlds)
        .with_threads(threads)
        .with_method(method))
}

/// `ugs query`.
pub fn query(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let query = args.option_or("query", "pagerank");
    let seed = args.u64_or("seed", 42)?;
    let mc = monte_carlo_config(args, 500)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let top = args.usize_or("top", 10)?;
    match query.as_str() {
        "pagerank" | "pr" => {
            let scores = expected_pagerank(&graph, &mc, &mut rng);
            Ok(format_top("expected PageRank", &scores, top))
        }
        "cc" | "clustering" => {
            let scores = expected_clustering_coefficients(&graph, &mc, &mut rng);
            Ok(format_top("expected clustering coefficient", &scores, top))
        }
        "sp" | "rl" | "reliability" | "distance" => {
            let pairs = random_pairs(graph.num_vertices(), args.usize_or("pairs", 100)?, &mut rng);
            let result = pair_queries(&graph, &pairs, &mc, &mut rng);
            let finite = result.finite_distances();
            let mean_sp = finite.iter().sum::<f64>() / finite.len().max(1) as f64;
            let mean_rl =
                result.reliability.iter().sum::<f64>() / result.reliability.len().max(1) as f64;
            Ok(format!(
                "pairs evaluated      : {}\nmean shortest path   : {:.3} hops (over {} reachable pairs)\nmean reliability     : {:.3}\n",
                pairs.len(),
                mean_sp,
                finite.len(),
                mean_rl
            ))
        }
        "connectivity" => {
            let estimate = ugs_queries::connectivity_query(&graph, &mc, &mut rng);
            Ok(format!(
                "P(connected)             : {:.4}\nexpected #components     : {:.3}\nexpected largest component: {:.2} vertices\nexpected isolated fraction: {:.4}\n",
                estimate.probability_connected,
                estimate.expected_components,
                estimate.expected_largest_component,
                estimate.expected_isolated_fraction
            ))
        }
        "knn" => {
            let source = args.usize_or("source", 0)?;
            let neighbors = k_nearest_neighbors(&graph, source, top, &mc, &mut rng);
            let mut out = format!("{top} nearest neighbours of vertex {source}:\n");
            for n in neighbors {
                out.push_str(&format!(
                    "  vertex {:>6}  E[distance] {:.3}  reachability {:.3}\n",
                    n.vertex, n.expected_distance, n.reachability
                ));
            }
            Ok(out)
        }
        other => Err(CliError::Message(format!(
            "unknown query {other:?}; expected pagerank|cc|sp|rl|connectivity|knn"
        ))),
    }
}

/// `ugs batch`: one shared sampling pass over `--worlds` possible worlds
/// feeding every query named in `--queries`, reported as a JSON document.
pub fn batch(args: &ParsedArgs) -> Result<String, CliError> {
    use minijson::{ObjBuilder, Value};

    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let n = graph.num_vertices();
    let seed = args.u64_or("seed", 42)?;
    let mc = monte_carlo_config(args, 500)?;
    let top = args.usize_or("top", 10)?;
    let list = args.option_or("queries", "pagerank,connectivity");
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut batch = QueryBatch::new(&graph, &mc);
    let mut h_pagerank = None;
    let mut h_clustering = None;
    let mut h_pairs = None;
    let mut h_connectivity = None;
    let mut h_histogram = None;
    let mut h_edge_freq = None;
    let mut h_knn = None;
    let mut order: Vec<&'static str> = Vec::new();
    for query in list.split(',').map(str::trim).filter(|q| !q.is_empty()) {
        let canonical = match query {
            "pagerank" | "pr" => {
                if h_pagerank.is_none() {
                    h_pagerank = Some(batch.register(PageRankObserver::new(&graph)));
                }
                "pagerank"
            }
            "cc" | "clustering" => {
                if h_clustering.is_none() {
                    h_clustering = Some(batch.register(ClusteringObserver::new(&graph)));
                }
                "clustering"
            }
            "sp" | "rl" | "reliability" | "distance" => {
                if h_pairs.is_none() {
                    let pairs = random_pairs(n, args.usize_or("pairs", 100)?, &mut rng);
                    h_pairs = Some(batch.register(PairQueriesObserver::new(&pairs)));
                }
                "sp"
            }
            "connectivity" => {
                if h_connectivity.is_none() {
                    h_connectivity = Some(batch.register(ConnectivityObserver::new(&graph)));
                }
                "connectivity"
            }
            "degree-hist" | "degrees" => {
                if h_histogram.is_none() {
                    h_histogram = Some(batch.register(DegreeHistogramObserver::new(&graph)));
                }
                "degree_histogram"
            }
            "edge-freq" | "frequencies" => {
                if h_edge_freq.is_none() {
                    h_edge_freq = Some(batch.register(EdgeFrequencyObserver::new(&graph)));
                }
                "edge_frequencies"
            }
            "knn" => {
                if h_knn.is_none() {
                    let source = args.usize_or("source", 0)?;
                    if source >= n {
                        return Err(CliError::Message(format!(
                            "--source {source} out of range (graph has {n} vertices)"
                        )));
                    }
                    h_knn = Some(batch.register(KnnObserver::new(&graph, source, top)));
                }
                "knn"
            }
            other => {
                return Err(CliError::Message(format!(
                    "unknown query {other:?}; expected \
                     pagerank|cc|sp|connectivity|degree-hist|edge-freq|knn"
                )))
            }
        };
        if !order.contains(&canonical) {
            order.push(canonical);
        }
    }
    if batch.num_observers() == 0 {
        return Err(CliError::Message(
            "no queries given; try --queries pagerank,connectivity".to_string(),
        ));
    }

    let mut results = batch.run(&mut rng);
    let ranked = |scores: &[f64]| -> Value {
        Value::Arr(
            ranked_vertices(scores, top)
                .into_iter()
                .map(|v| {
                    ObjBuilder::new()
                        .field("vertex", v)
                        .field("score", scores[v])
                        .build()
                })
                .collect(),
        )
    };
    let mut queries: Vec<(String, Value)> = Vec::new();
    for name in order {
        let value = match name {
            "pagerank" => ranked(&results.take(h_pagerank.expect("registered"))),
            "clustering" => ranked(&results.take(h_clustering.expect("registered"))),
            "sp" => {
                let pair_result = results.take(h_pairs.expect("registered"));
                let finite = pair_result.finite_distances();
                let mean_sp = finite.iter().sum::<f64>() / finite.len().max(1) as f64;
                let mean_rl = pair_result.reliability.iter().sum::<f64>()
                    / pair_result.reliability.len().max(1) as f64;
                ObjBuilder::new()
                    .field("pairs", pair_result.pairs.len())
                    .field("reachable_pairs", finite.len())
                    .field("mean_shortest_path", mean_sp)
                    .field("mean_reliability", mean_rl)
                    .build()
            }
            "connectivity" => {
                let estimate = results.take(h_connectivity.expect("registered"));
                ObjBuilder::new()
                    .field("probability_connected", estimate.probability_connected)
                    .field("expected_components", estimate.expected_components)
                    .field(
                        "expected_largest_component",
                        estimate.expected_largest_component,
                    )
                    .field(
                        "expected_isolated_fraction",
                        estimate.expected_isolated_fraction,
                    )
                    .build()
            }
            "degree_histogram" => Value::Arr(
                results
                    .take(h_histogram.expect("registered"))
                    .into_iter()
                    .map(Value::from)
                    .collect(),
            ),
            "edge_frequencies" => Value::Arr(
                results
                    .take(h_edge_freq.expect("registered"))
                    .into_iter()
                    .map(Value::from)
                    .collect(),
            ),
            "knn" => Value::Arr(
                results
                    .take(h_knn.expect("registered"))
                    .into_iter()
                    .map(|neighbor| {
                        ObjBuilder::new()
                            .field("vertex", neighbor.vertex)
                            .field("expected_distance", neighbor.expected_distance)
                            .field("reachability", neighbor.reachability)
                            .build()
                    })
                    .collect(),
            ),
            other => unreachable!("unregistered canonical query {other}"),
        };
        queries.push((name.to_string(), value));
    }
    let document = ObjBuilder::new()
        .field("graph", path)
        .field("worlds", mc.num_worlds)
        .field("threads", mc.threads)
        .field("mode", args.option_or("mode", "auto"))
        .field("seed", seed as f64)
        .field("queries", Value::Obj(queries))
        .build();
    Ok(if args.flag("compact") {
        document.render()
    } else {
        document.pretty()
    })
}

/// The top `top` vertex ids by descending score, ties broken by ascending
/// vertex id — the ranking shared by `query` and `batch` reports.
fn ranked_vertices(scores: &[f64], top: usize) -> Vec<usize> {
    let mut ranked: Vec<usize> = (0..scores.len()).collect();
    ranked.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    ranked.truncate(top);
    ranked
}

fn format_top(label: &str, scores: &[f64], top: usize) -> String {
    let mut out = format!("top {} vertices by {label}:\n", top.min(scores.len()));
    for v in ranked_vertices(scores, top) {
        out.push_str(&format!("  vertex {:>6}  {:.6}\n", v, scores[v]));
    }
    out
}

/// `ugs compare`.
pub fn compare(args: &ParsedArgs) -> Result<String, CliError> {
    let original = load(args.positional(0, "original.txt")?)?;
    let sparsified = load(args.positional(1, "sparsified.txt")?)?;
    if original.num_vertices() != sparsified.num_vertices() {
        return Err(CliError::Message(format!(
            "vertex counts differ: {} vs {}",
            original.num_vertices(),
            sparsified.num_vertices()
        )));
    }
    let seed = args.u64_or("seed", 42)?;
    let num_pairs = args.usize_or("pairs", 100)?;
    let num_cuts = args.usize_or("cuts", 500)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mc = monte_carlo_config(args, 200)?;

    let degree_mae =
        ugs_metrics::degree_discrepancy_mae(&original, &sparsified, MetricDiscrepancy::Absolute);
    let cut_mae = ugs_metrics::cut_discrepancy_mae(
        &original,
        &sparsified,
        &CutSamplingConfig {
            num_cuts,
            max_cardinality: original.num_vertices(),
        },
        &mut rng,
    );
    let rel_entropy = ugs_metrics::relative_entropy(&original, &sparsified);

    let pr_original = expected_pagerank(&original, &mc, &mut rng);
    let pr_sparse = expected_pagerank(&sparsified, &mc, &mut rng);
    let pairs = random_pairs(original.num_vertices(), num_pairs, &mut rng);
    let rl_original = pair_queries(&original, &pairs, &mc, &mut rng);
    let rl_sparse = pair_queries(&sparsified, &pairs, &mc, &mut rng);

    Ok(format!(
        "edges                  : {} -> {}\ndegree discrepancy MAE : {:.6}\ncut discrepancy MAE    : {:.6}\nrelative entropy       : {:.4}\nD_em (PageRank)        : {:.6}\nD_em (reliability)     : {:.6}\n",
        original.num_edges(),
        sparsified.num_edges(),
        degree_mae,
        cut_mae,
        rel_entropy,
        ugs_metrics::earth_movers_distance(&pr_original, &pr_sparse),
        ugs_metrics::earth_movers_distance(&rl_original.reliability, &rl_sparse.reliability),
    ))
}

/// Dispatches a parsed command line.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "stats" => stats(args),
        "sparsify" => sparsify(args),
        "query" => query(args),
        "compare" => compare(args),
        "batch" => batch(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Message(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ugs-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn write_toy_graph(name: &str) -> String {
        let g = UncertainGraph::from_edges(
            6,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (2, 3, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (5, 0, 0.4),
                (0, 2, 0.3),
                (1, 3, 0.2),
                (2, 4, 0.35),
                (3, 5, 0.45),
            ],
        )
        .unwrap();
        let path = temp_path(name);
        io::write_text_file(&g, &path).unwrap();
        path.to_string_lossy().to_string()
    }

    #[test]
    fn generate_then_stats_round_trip() {
        let out = temp_path("generated.txt").to_string_lossy().to_string();
        let args = ParsedArgs::parse([
            "generate",
            "--dataset",
            "twitter",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--output",
            &out,
        ])
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("wrote twitter"));
        let stats_args = ParsedArgs::parse(["stats", out.as_str()]).unwrap();
        let report = run(&stats_args).unwrap();
        assert!(report.contains("entropy"));
        assert!(report.contains("200"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn generate_rejects_unknown_inputs() {
        let args =
            ParsedArgs::parse(["generate", "--dataset", "mars", "--output", "/tmp/x"]).unwrap();
        assert!(run(&args).is_err());
        let args =
            ParsedArgs::parse(["generate", "--scale", "galactic", "--output", "/tmp/x"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["generate"]).unwrap();
        assert!(run(&args).is_err()); // missing --output
    }

    #[test]
    fn sparsify_writes_output_and_reports_diagnostics() {
        let input = write_toy_graph("sparsify-in.txt");
        let output = temp_path("sparsify-out.txt").to_string_lossy().to_string();
        let args = ParsedArgs::parse([
            "sparsify",
            &input,
            "--alpha",
            "0.5",
            "--method",
            "emd",
            "--discrepancy",
            "relative",
            "--output",
            &output,
        ])
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("EMD^R-t"), "{report}");
        assert!(report.contains("10 -> 5"), "{report}");
        let written = io::read_text_file(&output).unwrap();
        assert_eq!(written.num_edges(), 5);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparsify_supports_every_method_name() {
        let input = write_toy_graph("methods.txt");
        for method in ["gdb", "emd", "lp", "ni", "ss"] {
            let args = ParsedArgs::parse([
                "sparsify",
                &input,
                "--alpha",
                "0.5",
                "--method",
                method,
                "--backbone",
                "random",
            ])
            .unwrap();
            let report = run(&args).unwrap();
            assert!(report.contains("edges"), "{method}: {report}");
        }
        let bad = ParsedArgs::parse(["sparsify", &input, "--method", "magic"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn query_commands_produce_summaries() {
        let input = write_toy_graph("query.txt");
        for (query, needle) in [
            ("pagerank", "PageRank"),
            ("cc", "clustering"),
            ("sp", "reliability"),
            ("connectivity", "P(connected)"),
            ("knn", "nearest neighbours"),
        ] {
            let args = ParsedArgs::parse([
                "query", &input, "--query", query, "--worlds", "50", "--pairs", "5", "--top", "3",
            ])
            .unwrap();
            let report = run(&args).unwrap();
            assert!(report.contains(needle), "{query}: {report}");
        }
        let bad = ParsedArgs::parse(["query", &input, "--query", "nope"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn query_honours_engine_options() {
        let input = write_toy_graph("query-engine.txt");
        // same seed + sequential ⇒ identical reports, whatever the mode
        let run_with = |extra: &[&str]| {
            let mut argv = vec!["query", &input, "--query", "pagerank", "--worlds", "80"];
            argv.extend_from_slice(extra);
            run(&ParsedArgs::parse(argv).unwrap()).unwrap()
        };
        let sequential_a = run_with(&["--sequential"]);
        let sequential_b = run_with(&["--sequential"]);
        assert_eq!(sequential_a, sequential_b);
        let skip = run_with(&["--sequential", "--mode", "skip"]);
        let per_edge = run_with(&["--sequential", "--mode", "per-edge"]);
        assert!(skip.contains("PageRank") && per_edge.contains("PageRank"));
        let threaded = run_with(&["--threads", "2"]);
        assert!(threaded.contains("PageRank"));
        let bad = ParsedArgs::parse(["query", &input, "--mode", "psychic"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn batch_evaluates_several_queries_in_one_json_report() {
        let input = write_toy_graph("batch.txt");
        let args = ParsedArgs::parse([
            "batch",
            &input,
            "--queries",
            "pagerank,cc,sp,connectivity,degree-hist,edge-freq,knn",
            "--worlds",
            "60",
            "--pairs",
            "5",
            "--top",
            "3",
            "--sequential",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        let doc = minijson::Value::parse(&report).expect("valid JSON");
        assert_eq!(doc.get_usize("worlds"), Some(60));
        let queries = doc.get("queries").expect("queries object");
        for key in [
            "pagerank",
            "clustering",
            "sp",
            "connectivity",
            "degree_histogram",
            "edge_frequencies",
            "knn",
        ] {
            assert!(queries.get(key).is_some(), "{key} missing: {report}");
        }
        assert_eq!(
            queries
                .get("pagerank")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(3)
        );
        // Deterministic: same seed, same report, byte for byte.
        assert_eq!(report, run(&args).unwrap());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn batch_rejects_bad_query_lists() {
        let input = write_toy_graph("batch-bad.txt");
        let bad = ParsedArgs::parse(["batch", &input, "--queries", "psychic"]).unwrap();
        assert!(run(&bad).is_err());
        let empty = ParsedArgs::parse(["batch", &input, "--queries", ","]).unwrap();
        assert!(run(&empty).is_err());
        let out_of_range =
            ParsedArgs::parse(["batch", &input, "--queries", "knn", "--source", "999"]).unwrap();
        assert!(run(&out_of_range).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn compare_reports_all_metrics() {
        let input = write_toy_graph("compare-in.txt");
        let sparse_path = temp_path("compare-sparse.txt")
            .to_string_lossy()
            .to_string();
        let sparsify_args = ParsedArgs::parse([
            "sparsify",
            &input,
            "--alpha",
            "0.5",
            "--output",
            &sparse_path,
        ])
        .unwrap();
        run(&sparsify_args).unwrap();
        let args = ParsedArgs::parse([
            "compare",
            &input,
            &sparse_path,
            "--worlds",
            "50",
            "--pairs",
            "5",
            "--cuts",
            "50",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        for needle in [
            "degree discrepancy",
            "cut discrepancy",
            "relative entropy",
            "D_em",
        ] {
            assert!(report.contains(needle), "{report}");
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&sparse_path).ok();
    }

    #[test]
    fn help_and_unknown_commands() {
        let help = run(&ParsedArgs::parse(["help"]).unwrap()).unwrap();
        assert!(help.contains("USAGE"));
        assert!(run(&ParsedArgs::parse(["frobnicate"]).unwrap()).is_err());
    }
}
