//! Implementation of the CLI subcommands.
//!
//! Every command returns its report as a `String` so it can be unit tested
//! without capturing stdout; `main` only prints the result.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::{io, GraphStatistics, UncertainGraph};

use crate::args::{ArgsError, ParsedArgs};
use ugs_baselines::{NagamochiIbaraki, SpannerSparsifier};
use ugs_core::prelude::*;
use ugs_datasets::prelude::*;
use ugs_metrics::cuts::CutSamplingConfig;
use ugs_metrics::degree::MetricDiscrepancy;
use ugs_queries::prelude::*;
use ugs_service::{BatchPolicy, QueryPlan, QueryResult, QueryService, QuerySpec};

/// Errors surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing / validation error.
    Args(ArgsError),
    /// Graph I/O or validation error.
    Graph(uncertain_graph::GraphError),
    /// Sparsification error.
    Sparsify(SparsifyError),
    /// Any other user-facing problem.
    Message(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Sparsify(e) => write!(f, "{e}"),
            CliError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::Args(e)
    }
}
impl From<uncertain_graph::GraphError> for CliError {
    fn from(e: uncertain_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}
impl From<SparsifyError> for CliError {
    fn from(e: SparsifyError) -> Self {
        CliError::Sparsify(e)
    }
}

/// One subcommand's help entry.  The `OPTIONS` consts below are each
/// command's option allowlist, enforced with [`ParsedArgs::expect_options`]
/// at the top of the command implementation.
struct CommandHelp {
    name: &'static str,
    usage: &'static str,
}

const GENERATE_OPTIONS: &[&str] = &[
    "dataset",
    "scale",
    "seed",
    "output",
    "er-vertices",
    "er-density",
];
const STATS_OPTIONS: &[&str] = &[];
const SPARSIFY_OPTIONS: &[&str] = &[
    "alpha",
    "method",
    "discrepancy",
    "backbone",
    "h",
    "k",
    "seed",
    "output",
    "engine",
    "time",
];
const QUERY_OPTIONS: &[&str] = &[
    "query",
    "worlds",
    "pairs",
    "top",
    "source",
    "seed",
    "threads",
    "sequential",
    "mode",
    "epsilon",
    "delta",
    "deadline-ms",
    "max-worlds",
];
const COMPARE_OPTIONS: &[&str] = &[
    "worlds",
    "pairs",
    "cuts",
    "seed",
    "threads",
    "sequential",
    "mode",
];
const BATCH_OPTIONS: &[&str] = &[
    "queries",
    "worlds",
    "pairs",
    "top",
    "source",
    "seed",
    "threads",
    "sequential",
    "mode",
    "compact",
    "shards",
    "epsilon",
    "delta",
    "deadline-ms",
    "max-worlds",
];
const PLAN_OPTIONS: &[&str] = &[
    "graph",
    "compact",
    "shards",
    "epsilon",
    "delta",
    "deadline-ms",
    "max-worlds",
];
const PARTITION_OPTIONS: &[&str] = &["shards", "strategy", "compact"];
const SESSION_OPTIONS: &[&str] = &[
    "rounds",
    "worlds",
    "workers",
    "batch-max",
    "batch-wait-ms",
    "seed",
    "mode",
    "top",
    "source",
];
const SERVE_OPTIONS: &[&str] = &[
    "addr",
    "executors",
    "queue",
    "max-inflight",
    "cache-bytes",
    "max-plan-threads",
    "max-line-bytes",
    "announce",
    "shard",
    "shards",
    "fault-plan",
];
const REQUEST_OPTIONS: &[&str] = &["op", "plan", "compact", "timeout-ms"];
const COORDINATE_OPTIONS: &[&str] = &[
    "workers",
    "standbys",
    "timeout-ms",
    "retries",
    "backoff-ms",
    "fault-plan",
    "compact",
];
const SUPERVISE_OPTIONS: &[&str] = &[
    "ports",
    "shards",
    "shard-base",
    "host",
    "announce",
    "max-respawns",
    "backoff-ms",
    "max-backoff-ms",
    "crash-loop",
    "ping-ms",
    "compact",
];
const HELP_OPTIONS: &[&str] = &[];

const COMMANDS: &[CommandHelp] = &[
    CommandHelp {
        name: "generate",
        usage: "generate   --dataset flickr|twitter|er --scale tiny|small|medium|paper
               [--seed N] [--er-vertices N] [--er-density Q] --output FILE
               Generate a synthetic uncertain graph and write it as a text edge list.",
    },
    CommandHelp {
        name: "stats",
        usage: "stats      <graph.txt>
               Print Table-1-style statistics of an uncertain graph.",
    },
    CommandHelp {
        name: "sparsify",
        usage: "sparsify   <graph.txt> --alpha A [--method gdb|emd|lp|ni|ss]
               [--discrepancy absolute|relative] [--backbone random|spanning|local-degree]
               [--h H] [--k K] [--seed N] [--output FILE]
               [--engine reference|indexed] [--time]
               Sparsify the graph to A·|E| edges and report diagnostics.
               --engine selects the optimisation implementation for gdb/emd
               (worklist-indexed by default; both are bit-identical) and
               --time appends a JSON field with per-phase wall-clock times.",
    },
    CommandHelp {
        name: "query",
        usage: "query      <graph.txt> --query pagerank|cc|sp|rl|connectivity|knn
               [--worlds N] [--pairs N] [--top K] [--source V] [--seed N]
               [--threads N] [--sequential] [--mode auto|skip|per-edge]
               [--epsilon E] [--delta D] [--deadline-ms MS] [--max-worlds N]
               Run a Monte-Carlo query and print a summary.  Worlds are
               evaluated on all cores by default (--threads 0 = auto);
               --sequential forces the machine-independent single-thread
               path and --mode overrides the world-sampling strategy.
               --epsilon E makes the world budget adaptive: sampling stops
               at the first epoch whose confidence half-width reaches E
               (failure probability --delta, default 0.05), capped by
               --worlds/--max-worlds and the optional --deadline-ms.",
    },
    CommandHelp {
        name: "compare",
        usage: "compare    <original.txt> <sparsified.txt> [--worlds N] [--pairs N] [--cuts N] [--seed N]
               [--threads N] [--sequential] [--mode auto|skip|per-edge]
               Compare a sparsified graph against its original (degree/cut MAE,
               relative entropy, earth mover's distance of PageRank and reliability).",
    },
    CommandHelp {
        name: "batch",
        usage: "batch      <graph.txt> --queries q1,q2,... [--worlds N] [--pairs N] [--top K]
               [--source V] [--seed N] [--threads N] [--sequential]
               [--mode auto|skip|per-edge] [--shards N] [--compact]
               [--epsilon E] [--delta D] [--deadline-ms MS] [--max-worlds N]
               Evaluate several Monte-Carlo queries over ONE shared set of
               sampled worlds (queries: pagerank|cc|sp|connectivity|
               degree-hist|edge-freq|knn) and print the results as JSON.
               Sampling and world materialisation are paid once for the whole
               query mix instead of once per query.  --shards N evaluates over
               a graph partition with cut-aware observers (count queries only;
               results are bit-identical to the monolithic run).  With
               --epsilon the shared budget is adaptive (sequential stopping;
               the report gains worlds_used/half_width).  A thin wrapper
               over the query-plan path (`ugs plan`).",
    },
    CommandHelp {
        name: "plan",
        usage: "plan       <plan.json> [--graph FILE] [--shards N] [--compact]
               [--epsilon E] [--delta D] [--deadline-ms MS] [--max-worlds N]
               Execute a JSON query plan end-to-end and print the full report
               as JSON.  The plan names the graph (overridable with --graph),
               the shared world budget, the worker count, the graph-shard
               count (overridable with --shards), the sampling mode, the seed
               and a list of query specs such as
               {\"type\": \"knn\", \"source\": 0, \"k\": 5}; all queries share
               one set of sampled worlds, sharded across the workers.  An
               optional \"precision\" block in the plan — or --epsilon and
               friends, which override it — makes the budget adaptive.",
    },
    CommandHelp {
        name: "partition",
        usage: "partition  <graph.txt> [--shards N] [--strategy contiguous|spanning] [--compact]
               Partition the graph's vertex set into shards and print a JSON
               report: per-shard vertex/edge counts, the cut-edge count and
               the cut probability mass (the expected number of boundary
               edges per sampled world).  `spanning` (the default) carves
               chunked DFS walks out of the maximum spanning forest, keeping
               high-probability edges inside shards; `contiguous` splits the
               vertex range naively.",
    },
    CommandHelp {
        name: "session",
        usage: "session    <graph.txt> [--rounds N] [--worlds N] [--workers N]
               [--batch-max N] [--batch-wait-ms MS] [--seed N]
               [--mode auto|skip|per-edge] [--top K] [--source V]
               Demo of the streaming query service: submit `rounds`
               interleaved rounds of a four-query mix (PageRank,
               connectivity, degree histogram, k-NN) to a long-lived
               QueryService, which micro-batches them by arrival window and
               shards each batch's world budget across `workers` persistent
               engine workers (--workers 0 = all cores).",
    },
    CommandHelp {
        name: "serve",
        usage: "serve      <graph.txt> [--addr HOST:PORT] [--executors N] [--queue N]
               [--max-inflight N] [--cache-bytes N] [--max-plan-threads N]
               [--announce FILE] [--shard K --shards W]
               Serve the graph over a line-delimited JSON TCP protocol
               (submit/poll/cancel on query-plan documents) with a
               deterministic result cache and typed admission control.
               --addr defaults to 127.0.0.1:0 (a free loopback port; the
               bound address is printed to stderr and, with --announce,
               written to FILE).  Runs until a client sends
               {\"op\": \"shutdown\"}.  With --shard K --shards W the server
               additionally acts as shard K of a W-shard worker fleet:
               it holds only that shard's state and answers the
               shard_submit / boundary / shard_result ops that
               `ugs coordinate` drives.  --max-line-bytes caps the accepted
               request-line length (oversized lines get a typed bad_request
               and the connection survives).  --fault-plan SPEC (requires
               UGS_FAULTS=1; see `ugs help coordinate`) arms seeded wire
               fault injection for chaos tests.",
    },
    CommandHelp {
        name: "coordinate",
        usage: "coordinate <graph.txt> <plan.json> --workers HOST:PORT,HOST:PORT,...
               [--standbys HOST:PORT,...] [--timeout-ms MS] [--retries N]
               [--backoff-ms MS] [--compact]
               Execute a JSON query plan over a fleet of shard workers
               (each an `ugs serve --shard K --shards W` process, one per
               listed address, in order) and print the full report as
               JSON — bit-identical to running the plan in-process.
               Count queries only (connectivity|degree-hist|edge-freq).
               A worker that stops responding is retried (reconnect +
               deterministic resubmit, --backoff-ms between attempts);
               when its retries run out the shard fails over to the first
               --standbys address that validates, still bit-identically.
               Only an exhausted standby pool degrades the plan to a typed
               worker_lost error.  --fault-plan SPEC (requires UGS_FAULTS=1)
               arms seeded coordinator-side fault injection; SPEC is
               comma-separated key=value pairs: seed=N,count=N,horizon=N
               for a seeded schedule, at=N / wedge=N for explicit ops,
               kind=drop|delay|disconnect|garble, delay-ms=N.",
    },
    CommandHelp {
        name: "supervise",
        usage: "supervise  <graph.txt> --ports P1,P2,... [--shards W] [--shard-base B]
               [--host H] [--announce FILE] [--max-respawns N] [--backoff-ms MS]
               [--max-backoff-ms MS] [--crash-loop N] [--ping-ms MS] [--compact]
               Launch one `ugs serve --shard K --shards W` worker per listed
               port (shards B.., W defaulting to B + the port count — so on a
               single host just list the ports; across hosts give each
               supervisor its --shard-base slice of the fleet-wide --shards W)
               and babysit the fleet: liveness is
               watched via process exits and periodic pings (--ping-ms 0
               disables probes), a crashed or wedged worker is respawned on
               its fixed port with exponential backoff (--backoff-ms base,
               capped by --max-backoff-ms) up to --max-respawns times, and
               --crash-loop consecutive fast exits give a worker up as
               crash-looping.  A worker that exits 0 (a client sent
               {\"op\": \"shutdown\"}) is done and never respawned.
               --announce FILE is rewritten atomically with one
               `name addr pid` line per running worker on every membership
               change.  Prints a JSON report once every worker is terminal.",
    },
    CommandHelp {
        name: "request",
        usage: "request    <host:port> [--op ping|stats|shutdown] [--plan FILE]
               [--timeout-ms MS] [--compact]
               Talk to a running `ugs serve` instance.  --plan submits the
               JSON plan document in FILE (no \"graph\" field: the server
               owns its graph), polls until the report arrives and prints
               it; otherwise --op sends a single control request.",
    },
    CommandHelp {
        name: "help",
        usage: "help       [command]
               Show this message, or the usage of one command.",
    },
];

/// The usage / help text for every subcommand.
pub fn usage() -> String {
    let mut out = String::from(
        "ugs — uncertain graph sparsification toolkit

USAGE:
    ugs <command> [arguments] [--option value ...]

COMMANDS:
",
    );
    for command in COMMANDS {
        out.push_str("    ");
        out.push_str(command.usage);
        out.push_str("\n\n");
    }
    out.pop();
    out
}

/// The usage text of one subcommand (`ugs help <command>`).
pub fn usage_for(name: &str) -> Option<String> {
    COMMANDS
        .iter()
        .find(|command| command.name == name)
        .map(|command| format!("USAGE:\n    {}\n", command.usage))
}

fn load(path: &str) -> Result<UncertainGraph, CliError> {
    Ok(io::read_text_file(path)?)
}

/// `ugs generate`.
pub fn generate(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_options(GENERATE_OPTIONS)?;
    let dataset = args.option_or("dataset", "flickr");
    let scale_name = args.option_or("scale", "tiny");
    let scale = Scale::parse(&scale_name).ok_or_else(|| {
        CliError::Message(format!(
            "unknown scale {scale_name:?}; expected tiny|small|medium|paper"
        ))
    })?;
    let seed = args.u64_or("seed", 42)?;
    let output = args.required("output")?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = match dataset.as_str() {
        "flickr" => flickr_like(scale, &mut rng),
        "twitter" => twitter_like(scale, &mut rng),
        "er" => {
            let vertices = args.usize_or("er-vertices", 500)?;
            let density = args.f64_or("er-density", 0.05)?;
            erdos_renyi(vertices, density, ProbabilityModel::FlickrLike, &mut rng)
        }
        other => {
            return Err(CliError::Message(format!(
                "unknown dataset {other:?}; expected flickr|twitter|er"
            )))
        }
    };
    io::write_text_file(&graph, output)?;
    let stats = GraphStatistics::compute(&graph);
    Ok(format!(
        "wrote {} ({} vertices, {} edges, E[p] = {:.3}) to {}",
        dataset, stats.num_vertices, stats.num_edges, stats.mean_edge_probability, output
    ))
}

/// `ugs stats`.
pub fn stats(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_options(STATS_OPTIONS)?;
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let stats = GraphStatistics::compute(&graph);
    let mut out = String::new();
    out.push_str(&GraphStatistics::table_header());
    out.push('\n');
    out.push_str(&stats.table_row(path));
    out.push('\n');
    out.push_str(&format!(
        "entropy: {:.2} bits   density: {:.4}   support connected: {}\n",
        stats.entropy, stats.density, stats.support_connected
    ));
    Ok(out)
}

/// Parses `--engine`, defaulting to the indexed engine.
fn parse_engine(args: &ParsedArgs) -> Result<Engine, CliError> {
    let engine_name = args.option_or("engine", "indexed");
    Engine::parse(&engine_name).ok_or_else(|| {
        CliError::Message(format!(
            "unknown engine {engine_name:?}; expected reference|indexed"
        ))
    })
}

fn build_sparsifier(
    args: &ParsedArgs,
    alpha: f64,
    engine: Engine,
) -> Result<Box<dyn Sparsifier>, CliError> {
    let method = args.option_or("method", "gdb");
    let discrepancy = match args.option_or("discrepancy", "absolute").as_str() {
        "absolute" | "abs" => DiscrepancyKind::Absolute,
        "relative" | "rel" => DiscrepancyKind::Relative,
        other => {
            return Err(CliError::Message(format!(
                "unknown discrepancy {other:?}; expected absolute|relative"
            )))
        }
    };
    let backbone = match args.option_or("backbone", "spanning").as_str() {
        "random" => BackboneKind::Random,
        "spanning" => BackboneKind::SpanningForests,
        "local-degree" => BackboneKind::LocalDegree,
        other => {
            return Err(CliError::Message(format!(
                "unknown backbone {other:?}; expected random|spanning|local-degree"
            )))
        }
    };
    let h = args.f64_or("h", 0.05)?;
    let k = args.usize_or("k", 1)?;
    let cut_rule = if k <= 1 {
        CutRule::Degree
    } else {
        CutRule::Cuts(k)
    };
    let spec = |base: SparsifierSpec| {
        base.alpha(alpha)
            .discrepancy(discrepancy)
            .backbone(backbone)
            .entropy_h(h)
            .cut_rule(cut_rule)
            .engine(engine)
    };
    Ok(match method.as_str() {
        "gdb" => Box::new(spec(SparsifierSpec::gdb())),
        "emd" => Box::new(spec(SparsifierSpec::emd())),
        "lp" => Box::new(spec(SparsifierSpec::lp())),
        "ni" => Box::new(NagamochiIbaraki::new(alpha)),
        "ss" => Box::new(SpannerSparsifier::new(alpha)),
        other => {
            return Err(CliError::Message(format!(
                "unknown method {other:?}; expected gdb|emd|lp|ni|ss"
            )))
        }
    })
}

/// `ugs sparsify`.
pub fn sparsify(args: &ParsedArgs) -> Result<String, CliError> {
    use minijson::ObjBuilder;

    args.expect_options(SPARSIFY_OPTIONS)?;
    let path = args.positional(0, "graph.txt")?;
    let alpha = args.f64_or("alpha", 0.16)?;
    let seed = args.u64_or("seed", 42)?;
    let graph = load(path)?;
    let engine = parse_engine(args)?;
    let sparsifier = build_sparsifier(args, alpha, engine)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let output = sparsifier.sparsify_dyn(&graph, &mut rng)?;
    // The engine line is only meaningful for the spec-based methods; the
    // NI/SS/LP paths have no reference/indexed dimension.
    let engine_line = match args.option_or("method", "gdb").as_str() {
        "gdb" | "emd" => format!("engine          : {}\n", engine.name()),
        _ => String::new(),
    };
    let mut report = format!(
        "method          : {}\n{engine_line}edges           : {} -> {}\nrelative entropy: {:.4}\ndegree MAE      : {:.6}\niterations      : {}\ntime            : {:?}\n",
        output.diagnostics.method,
        graph.num_edges(),
        output.graph.num_edges(),
        output.diagnostics.relative_entropy(),
        ugs_metrics::degree_discrepancy_mae(&graph, &output.graph, MetricDiscrepancy::Absolute),
        output.diagnostics.iterations,
        output.diagnostics.elapsed,
    );
    if args.flag("time") {
        let phases = output.diagnostics.phases;
        let timings = ObjBuilder::new()
            .field("backbone_ms", phases.backbone.as_secs_f64() * 1e3)
            .field("optimize_ms", phases.optimize.as_secs_f64() * 1e3)
            .field("materialize_ms", phases.materialize.as_secs_f64() * 1e3)
            .field("total_ms", output.diagnostics.elapsed.as_secs_f64() * 1e3)
            .build();
        report.push_str(&format!("timings         : {}\n", timings.render()));
    }
    if let Some(out_path) = args.options.get("output") {
        io::write_text_file(&output.graph, out_path)?;
        report.push_str(&format!("written to      : {out_path}\n"));
    }
    Ok(report)
}

/// Builds the Monte-Carlo configuration shared by `query` and `compare`:
/// `--worlds`, `--threads` (0 = all cores), `--sequential` and `--mode`.
fn monte_carlo_config(args: &ParsedArgs, default_worlds: usize) -> Result<MonteCarlo, CliError> {
    let worlds = args.usize_or("worlds", default_worlds)?;
    let threads = if args.flag("sequential") {
        1
    } else {
        match args.usize_or("threads", 0)? {
            0 => ugs_queries::mc::available_threads(),
            n => n,
        }
    };
    let mode = args.option_or("mode", "auto");
    let method = ugs_service::parse_mode(&mode).ok_or_else(|| {
        CliError::Message(format!(
            "unknown sampling mode {mode:?}; expected auto|skip|per-edge"
        ))
    })?;
    Ok(MonteCarlo::worlds(worlds)
        .with_threads(threads)
        .with_method(method))
}

/// Parses the adaptive-precision flags shared by `query`, `batch` and
/// `plan`.  `--epsilon` switches the world budget to sequential stopping;
/// `--delta`, `--deadline-ms` and `--max-worlds` refine the target and are
/// rejected without it.
fn precision_from_args(args: &ParsedArgs) -> Result<Option<Precision>, CliError> {
    if !args.options.contains_key("epsilon") {
        for dependent in ["delta", "deadline-ms", "max-worlds"] {
            if args.options.contains_key(dependent) {
                return Err(CliError::Message(format!(
                    "--{dependent} requires --epsilon (the adaptive-precision target)"
                )));
            }
        }
        return Ok(None);
    }
    let epsilon = args.f64_or("epsilon", 0.0)?;
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(CliError::Message(format!(
            "--epsilon must be a finite positive number, got {epsilon}"
        )));
    }
    let mut precision = Precision::new(epsilon);
    if args.options.contains_key("delta") {
        let delta = args.f64_or("delta", precision.delta)?;
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CliError::Message(format!(
                "--delta must lie strictly between 0 and 1, got {delta}"
            )));
        }
        precision = precision.with_delta(delta);
    }
    if args.options.contains_key("deadline-ms") {
        let ms = args.u64_or("deadline-ms", 0)?;
        precision = precision.with_deadline(std::time::Duration::from_millis(ms));
    }
    if args.options.contains_key("max-worlds") {
        precision = precision.with_max_worlds(args.usize_or("max-worlds", 0)?);
    }
    Ok(Some(precision))
}

/// `ugs query`.
pub fn query(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_options(QUERY_OPTIONS)?;
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let query = args.option_or("query", "pagerank");
    let seed = args.u64_or("seed", 42)?;
    let mut mc = monte_carlo_config(args, 500)?;
    if let Some(precision) = precision_from_args(args)? {
        mc = mc.with_precision(precision);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let top = args.usize_or("top", 10)?;
    match query.as_str() {
        "pagerank" | "pr" => {
            let scores = expected_pagerank(&graph, &mc, &mut rng);
            Ok(format_top("expected PageRank", &scores, top))
        }
        "cc" | "clustering" => {
            let scores = expected_clustering_coefficients(&graph, &mc, &mut rng);
            Ok(format_top("expected clustering coefficient", &scores, top))
        }
        "sp" | "rl" | "reliability" | "distance" => {
            let pairs = random_pairs(graph.num_vertices(), args.usize_or("pairs", 100)?, &mut rng);
            let result = pair_queries(&graph, &pairs, &mc, &mut rng);
            let finite = result.finite_distances();
            let mean_sp = finite.iter().sum::<f64>() / finite.len().max(1) as f64;
            let mean_rl =
                result.reliability.iter().sum::<f64>() / result.reliability.len().max(1) as f64;
            Ok(format!(
                "pairs evaluated      : {}\nmean shortest path   : {:.3} hops (over {} reachable pairs)\nmean reliability     : {:.3}\n",
                pairs.len(),
                mean_sp,
                finite.len(),
                mean_rl
            ))
        }
        "connectivity" => {
            let estimate = ugs_queries::connectivity_query(&graph, &mc, &mut rng);
            let mut out = format!(
                "P(connected)             : {:.4}\nexpected #components     : {:.3}\nexpected largest component: {:.2} vertices\nexpected isolated fraction: {:.4}\n",
                estimate.probability_connected,
                estimate.expected_components,
                estimate.expected_largest_component,
                estimate.expected_isolated_fraction
            );
            if mc.precision.is_some() {
                out.push_str(&format!(
                    "worlds sampled (adaptive) : {}\n",
                    estimate.num_worlds
                ));
            }
            Ok(out)
        }
        "knn" => {
            let source = args.usize_or("source", 0)?;
            let neighbors = k_nearest_neighbors(&graph, source, top, &mc, &mut rng);
            let mut out = format!("{top} nearest neighbours of vertex {source}:\n");
            for n in neighbors {
                out.push_str(&format!(
                    "  vertex {:>6}  E[distance] {:.3}  reachability {:.3}\n",
                    n.vertex, n.expected_distance, n.reachability
                ));
            }
            Ok(out)
        }
        other => Err(CliError::Message(format!(
            "unknown query {other:?}; expected pagerank|cc|sp|rl|connectivity|knn"
        ))),
    }
}

/// `ugs batch`: one shared sampling pass over `--worlds` possible worlds
/// feeding every query named in `--queries`, reported as a JSON document.
///
/// A thin wrapper over the query-plan path: the query names become
/// [`QuerySpec`]s, run as one [`QueryPlan`] micro-batch through the
/// streaming service, and the typed [`QueryResult`]s are rendered in the
/// classic `batch` report shape.
pub fn batch(args: &ParsedArgs) -> Result<String, CliError> {
    use minijson::{ObjBuilder, Value};

    args.expect_options(BATCH_OPTIONS)?;
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let n = graph.num_vertices();
    let seed = args.u64_or("seed", 42)?;
    let mc = monte_carlo_config(args, 500)?;
    let top = args.usize_or("top", 10)?;
    let list = args.option_or("queries", "pagerank,connectivity");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Map the query names to (report key, spec), deduplicating repeats.
    let mut entries: Vec<(&'static str, QuerySpec)> = Vec::new();
    for query in list.split(',').map(str::trim).filter(|q| !q.is_empty()) {
        let key = match query {
            "pagerank" | "pr" => "pagerank",
            "cc" | "clustering" => "clustering",
            "sp" | "rl" | "reliability" | "distance" => "sp",
            "connectivity" => "connectivity",
            "degree-hist" | "degrees" => "degree_histogram",
            "edge-freq" | "frequencies" => "edge_frequencies",
            "knn" => "knn",
            other => {
                return Err(CliError::Message(format!(
                    "unknown query {other:?}; expected \
                     pagerank|cc|sp|connectivity|degree-hist|edge-freq|knn"
                )))
            }
        };
        if entries.iter().any(|(existing, _)| *existing == key) {
            continue;
        }
        let spec = match key {
            "pagerank" => QuerySpec::pagerank(),
            "clustering" => QuerySpec::Clustering,
            "sp" => QuerySpec::PairQueries {
                pairs: random_pairs(n, args.usize_or("pairs", 100)?, &mut rng),
            },
            "connectivity" => QuerySpec::Connectivity,
            "degree_histogram" => QuerySpec::DegreeHistogram,
            "edge_frequencies" => QuerySpec::EdgeFrequency,
            "knn" => QuerySpec::Knn {
                source: args.usize_or("source", 0)?,
                k: top,
            },
            other => unreachable!("unmapped canonical query {other}"),
        };
        entries.push((key, spec));
    }
    if entries.is_empty() {
        return Err(CliError::Message(
            "no queries given; try --queries pagerank,connectivity".to_string(),
        ));
    }
    let shards = args.usize_or("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Message("--shards must be at least 1".to_string()));
    }
    // Validate up front so a bad spec fails the whole command, exactly like
    // the pre-plan implementation; with --shards this also rejects queries
    // without a cut-aware path (typed error, before any sampling).
    for (_, spec) in &entries {
        spec.validate_sharded(&graph, shards)
            .map_err(|e| CliError::Message(e.to_string()))?;
    }

    let precision = precision_from_args(args)?;
    let plan = QueryPlan {
        graph: None,
        worlds: mc.num_worlds,
        threads: mc.threads,
        shards,
        mode: mc.method,
        seed: rng.gen::<u64>(),
        precision,
        queries: entries.iter().map(|(_, spec)| spec.clone()).collect(),
    };
    let detailed = plan.execute_detailed(graph);
    // All queries share the micro-batch, so the adaptive effort is one
    // number for the whole report.
    let effort = detailed
        .iter()
        .find_map(|outcome| outcome.as_ref().ok())
        .map(|answer| (answer.worlds_used, answer.half_width));
    let outcomes: Vec<_> = detailed
        .into_iter()
        .map(|outcome| outcome.map(|answer| answer.result))
        .collect();

    let ranked = |scores: &[f64]| -> Value {
        Value::Arr(
            ranked_vertices(scores, top)
                .into_iter()
                .map(|v| {
                    ObjBuilder::new()
                        .field("vertex", v)
                        .field("score", scores[v])
                        .build()
                })
                .collect(),
        )
    };
    let mut queries: Vec<(String, Value)> = Vec::new();
    for ((key, _), outcome) in entries.iter().zip(outcomes) {
        let result = outcome.map_err(|e| CliError::Message(e.to_string()))?;
        let value = match result {
            QueryResult::PageRank(scores) => ranked(&scores),
            QueryResult::Clustering(scores) => ranked(&scores),
            QueryResult::PairQueries(pair_result) => {
                let finite = pair_result.finite_distances();
                let mean_sp = finite.iter().sum::<f64>() / finite.len().max(1) as f64;
                let mean_rl = pair_result.reliability.iter().sum::<f64>()
                    / pair_result.reliability.len().max(1) as f64;
                ObjBuilder::new()
                    .field("pairs", pair_result.pairs.len())
                    .field("reachable_pairs", finite.len())
                    .field("mean_shortest_path", mean_sp)
                    .field("mean_reliability", mean_rl)
                    .build()
            }
            QueryResult::Connectivity(estimate) => ObjBuilder::new()
                .field("probability_connected", estimate.probability_connected)
                .field("expected_components", estimate.expected_components)
                .field(
                    "expected_largest_component",
                    estimate.expected_largest_component,
                )
                .field(
                    "expected_isolated_fraction",
                    estimate.expected_isolated_fraction,
                )
                .build(),
            QueryResult::DegreeHistogram(histogram) => {
                Value::Arr(histogram.into_iter().map(Value::from).collect())
            }
            QueryResult::EdgeFrequency(frequencies) => {
                Value::Arr(frequencies.into_iter().map(Value::from).collect())
            }
            QueryResult::Knn(neighbors) => Value::Arr(
                neighbors
                    .into_iter()
                    .map(|neighbor| {
                        ObjBuilder::new()
                            .field("vertex", neighbor.vertex)
                            .field("expected_distance", neighbor.expected_distance)
                            .field("reachability", neighbor.reachability)
                            .build()
                    })
                    .collect(),
            ),
        };
        queries.push((key.to_string(), value));
    }
    let mut document = ObjBuilder::new()
        .field("graph", path)
        .field("worlds", mc.num_worlds)
        .field("threads", mc.threads)
        .field("mode", args.option_or("mode", "auto"))
        .field("seed", seed as f64);
    if precision.is_some() {
        if let Some((worlds_used, half_width)) = effort {
            document = document.field("worlds_used", worlds_used);
            if let Some(half_width) = half_width.filter(|hw| hw.is_finite()) {
                document = document.field("half_width", half_width);
            }
        }
    }
    let document = document.field("queries", Value::Obj(queries)).build();
    Ok(if args.flag("compact") {
        document.render()
    } else {
        document.pretty()
    })
}

/// `ugs plan`: execute a JSON query-plan file end-to-end through the
/// streaming query service and print the full report as JSON.
pub fn plan(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_options(PLAN_OPTIONS)?;
    let plan_path = args.positional(0, "plan.json")?;
    let text = std::fs::read_to_string(plan_path)
        .map_err(|e| CliError::Message(format!("cannot read plan {plan_path:?}: {e}")))?;
    let mut plan =
        QueryPlan::parse_str(&text).map_err(|e| CliError::Message(format!("{plan_path}: {e}")))?;
    plan.shards = args.usize_or("shards", plan.shards)?;
    if plan.shards == 0 {
        return Err(CliError::Message("--shards must be at least 1".to_string()));
    }
    // --epsilon and friends override the plan document's precision block.
    if let Some(precision) = precision_from_args(args)? {
        plan.precision = Some(precision);
    }
    let graph_path = match args.options.get("graph") {
        Some(path) => path.clone(),
        None => plan.graph.clone().ok_or_else(|| {
            CliError::Message(format!("{plan_path} names no \"graph\"; pass --graph FILE"))
        })?,
    };
    let graph = load(&graph_path)?;
    let report = plan.run_report(graph, &graph_path);
    Ok(if args.flag("compact") {
        report.render()
    } else {
        report.pretty()
    })
}

/// `ugs partition`: split a graph's vertex set into shards and report the
/// shard sizes and the cut structure as JSON.
pub fn partition(args: &ParsedArgs) -> Result<String, CliError> {
    use minijson::{ObjBuilder, Value};
    use uncertain_graph::{GraphPartition, HaloPlan};

    args.expect_options(PARTITION_OPTIONS)?;
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let shards = args.usize_or("shards", 2)?;
    if shards == 0 {
        return Err(CliError::Message("--shards must be at least 1".to_string()));
    }
    let strategy = args.option_or("strategy", "spanning");
    let partition = match strategy.as_str() {
        "contiguous" => GraphPartition::contiguous(&graph, shards),
        "spanning" => {
            let labels = ugs_core::spanning_partition_labels(&graph, shards);
            GraphPartition::from_labels(&graph, &labels, shards)
        }
        other => {
            return Err(CliError::Message(format!(
                "unknown strategy {other:?}; expected contiguous|spanning"
            )))
        }
    }
    .map_err(|e| CliError::Message(e.to_string()))?;

    // The ghost-halo layout the neighbourhood queries (pagerank,
    // clustering, knn) would replicate into each shard: operators read the
    // replication factor and per-shard ghost counts to judge a labelling
    // before deploying it.
    let halo_stats = HaloPlan::new(&graph, &partition).stats();
    let shard_entries: Vec<Value> = partition
        .shards()
        .iter()
        .zip(&halo_stats.shards)
        .enumerate()
        .map(|(s, (shard, halo))| {
            ObjBuilder::new()
                .field("shard", s)
                .field("vertices", shard.num_vertices())
                .field("edges", shard.num_edges())
                .field("expected_edges", shard.graph().expected_num_edges())
                .field(
                    "halo",
                    ObjBuilder::new()
                        .field("ghost_vertices", halo.ghost_vertices)
                        .field("boundary_vertices", halo.boundary_vertices)
                        .field("halo_edges", halo.halo_edges)
                        .field("expected_halo_mass", halo.expected_halo_mass)
                        .build(),
                )
                .build()
        })
        .collect();
    let cut_count = partition.cut_edges().len();
    let document = ObjBuilder::new()
        .field("graph", path)
        .field("strategy", strategy.as_str())
        .field("num_shards", shards)
        .field("vertices", graph.num_vertices())
        .field("edges", graph.num_edges())
        .field("shards", Value::Arr(shard_entries))
        .field(
            "cut",
            ObjBuilder::new()
                .field("edges", cut_count)
                .field(
                    "edge_fraction",
                    cut_count as f64 / graph.num_edges().max(1) as f64,
                )
                .field("probability_mass", partition.cut_probability_mass())
                .build(),
        )
        .field(
            "halo",
            ObjBuilder::new()
                .field("replication_factor", halo_stats.replication_factor)
                .build(),
        )
        .build();
    Ok(if args.flag("compact") {
        document.render()
    } else {
        document.pretty()
    })
}

/// `ugs session`: demo of the long-lived streaming [`QueryService`] —
/// interleaved rounds of a four-query mix are submitted over the service
/// channel, micro-batched by arrival window and sharded across persistent
/// engine workers; the tickets then resolve in submission order.
pub fn session(args: &ParsedArgs) -> Result<String, CliError> {
    use std::time::{Duration, Instant};

    args.expect_options(SESSION_OPTIONS)?;
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let n = graph.num_vertices();
    let rounds = args.usize_or("rounds", 2)?;
    let worlds = args.usize_or("worlds", 200)?;
    let workers = match args.usize_or("workers", 1)? {
        0 => ugs_queries::mc::available_threads(),
        w => w,
    };
    let seed = args.u64_or("seed", 42)?;
    let top = args.usize_or("top", 5)?;
    let source = args.usize_or("source", 0)?;
    if source >= n {
        return Err(CliError::Message(format!(
            "--source {source} out of range (graph has {n} vertices)"
        )));
    }
    let mode = ugs_service::parse_mode(&args.option_or("mode", "auto")).ok_or_else(|| {
        CliError::Message(format!(
            "unknown sampling mode {:?}; expected auto|skip|per-edge",
            args.option_or("mode", "auto")
        ))
    })?;
    let mix = vec![
        QuerySpec::pagerank(),
        QuerySpec::Connectivity,
        QuerySpec::DegreeHistogram,
        QuerySpec::Knn { source, k: top },
    ];
    let batch_max = args.usize_or("batch-max", mix.len())?;
    let wait_ms = args.usize_or("batch-wait-ms", 50)?;
    let policy = BatchPolicy {
        max_wait: Duration::from_millis(wait_ms as u64),
        max_queries: batch_max,
        num_worlds: worlds,
        threads: workers,
        mode,
        shards: 1,
        precision: None,
    };

    let started = Instant::now();
    let service = QueryService::start(graph, policy, seed);
    let mut tickets = Vec::with_capacity(rounds * mix.len());
    for round in 0..rounds {
        for spec in &mix {
            tickets.push((round, spec.kind(), service.submit(spec.clone())));
        }
    }
    let mut out = format!(
        "session over {path}: {} interleaved submissions ({rounds} rounds x {} queries), \
         {worlds} worlds per micro-batch, {workers} worker(s)\n",
        rounds * mix.len(),
        mix.len(),
    );
    for (round, kind, ticket) in tickets {
        match ticket.wait() {
            Ok(result) => out.push_str(&format!(
                "  [round {round}] {kind:<16} -> {}\n",
                summarize_result(&result)
            )),
            Err(error) => {
                out.push_str(&format!("  [round {round}] {kind:<16} -> error: {error}\n"))
            }
        }
    }
    let stats = service.shutdown();
    out.push_str(&format!(
        "micro-batches: {}   queries answered: {}   worlds sampled: {}   elapsed: {:.2?}\n",
        stats.micro_batches,
        stats.queries,
        stats.worlds_sampled,
        started.elapsed(),
    ));
    Ok(out)
}

/// One-line summary of a [`QueryResult`] for the `session` report.
fn summarize_result(result: &QueryResult) -> String {
    match result {
        QueryResult::PageRank(scores) => match ranked_vertices(scores, 1).first() {
            Some(&v) => format!("top vertex {v} (PR {:.4})", scores[v]),
            None => "empty graph".to_string(),
        },
        QueryResult::Clustering(scores) => match ranked_vertices(scores, 1).first() {
            Some(&v) => format!("top vertex {v} (CC {:.4})", scores[v]),
            None => "empty graph".to_string(),
        },
        QueryResult::PairQueries(result) => {
            let mean_rl =
                result.reliability.iter().sum::<f64>() / result.reliability.len().max(1) as f64;
            format!(
                "{} pairs, mean reliability {mean_rl:.3}",
                result.pairs.len()
            )
        }
        QueryResult::Connectivity(estimate) => format!(
            "P(connected) {:.3}, E[#components] {:.2}",
            estimate.probability_connected, estimate.expected_components
        ),
        QueryResult::DegreeHistogram(histogram) => {
            let vertices: f64 = histogram.iter().sum();
            let mean: f64 = histogram
                .iter()
                .enumerate()
                .map(|(d, h)| d as f64 * h)
                .sum::<f64>()
                / vertices.max(1.0);
            format!("{} degree bins, E[degree] {mean:.3}", histogram.len())
        }
        QueryResult::Knn(neighbors) => match neighbors.first() {
            Some(nearest) => format!(
                "{} neighbours, nearest {} (E[d] {:.2})",
                neighbors.len(),
                nearest.vertex,
                nearest.expected_distance
            ),
            None => "no reachable neighbours".to_string(),
        },
        QueryResult::EdgeFrequency(frequencies) => {
            let mean = frequencies.iter().sum::<f64>() / frequencies.len().max(1) as f64;
            format!("{} edges, mean frequency {mean:.3}", frequencies.len())
        }
    }
}

/// The top `top` vertex ids by descending score, ties broken by ascending
/// vertex id — the ranking shared by `query` and `batch` reports.
fn ranked_vertices(scores: &[f64], top: usize) -> Vec<usize> {
    let mut ranked: Vec<usize> = (0..scores.len()).collect();
    ranked.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    ranked.truncate(top);
    ranked
}

fn format_top(label: &str, scores: &[f64], top: usize) -> String {
    let mut out = format!("top {} vertices by {label}:\n", top.min(scores.len()));
    for v in ranked_vertices(scores, top) {
        out.push_str(&format!("  vertex {:>6}  {:.6}\n", v, scores[v]));
    }
    out
}

/// `ugs compare`.
pub fn compare(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_options(COMPARE_OPTIONS)?;
    let original = load(args.positional(0, "original.txt")?)?;
    let sparsified = load(args.positional(1, "sparsified.txt")?)?;
    if original.num_vertices() != sparsified.num_vertices() {
        return Err(CliError::Message(format!(
            "vertex counts differ: {} vs {}",
            original.num_vertices(),
            sparsified.num_vertices()
        )));
    }
    let seed = args.u64_or("seed", 42)?;
    let num_pairs = args.usize_or("pairs", 100)?;
    let num_cuts = args.usize_or("cuts", 500)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mc = monte_carlo_config(args, 200)?;

    let degree_mae =
        ugs_metrics::degree_discrepancy_mae(&original, &sparsified, MetricDiscrepancy::Absolute);
    let cut_mae = ugs_metrics::cut_discrepancy_mae(
        &original,
        &sparsified,
        &CutSamplingConfig {
            num_cuts,
            max_cardinality: original.num_vertices(),
        },
        &mut rng,
    );
    let rel_entropy = ugs_metrics::relative_entropy(&original, &sparsified);

    let pr_original = expected_pagerank(&original, &mc, &mut rng);
    let pr_sparse = expected_pagerank(&sparsified, &mc, &mut rng);
    let pairs = random_pairs(original.num_vertices(), num_pairs, &mut rng);
    let rl_original = pair_queries(&original, &pairs, &mc, &mut rng);
    let rl_sparse = pair_queries(&sparsified, &pairs, &mc, &mut rng);

    Ok(format!(
        "edges                  : {} -> {}\ndegree discrepancy MAE : {:.6}\ncut discrepancy MAE    : {:.6}\nrelative entropy       : {:.4}\nD_em (PageRank)        : {:.6}\nD_em (reliability)     : {:.6}\n",
        original.num_edges(),
        sparsified.num_edges(),
        degree_mae,
        cut_mae,
        rel_entropy,
        ugs_metrics::earth_movers_distance(&pr_original, &pr_sparse),
        ugs_metrics::earth_movers_distance(&rl_original.reliability, &rl_sparse.reliability),
    ))
}

/// Parses a `--fault-plan SPEC` option, gated behind `UGS_FAULTS=1`: fault
/// injection is a test/bench surface and must not be reachable by a stray
/// flag in production.
fn fault_plan_option(args: &ParsedArgs) -> Result<Option<ugs_server::FaultPlan>, CliError> {
    let Some(spec) = args.options.get("fault-plan") else {
        return Ok(None);
    };
    if std::env::var("UGS_FAULTS").as_deref() != Ok("1") {
        return Err(CliError::Message(
            "--fault-plan is a test/bench surface; set UGS_FAULTS=1 to enable it".to_string(),
        ));
    }
    ugs_server::FaultPlan::parse(spec)
        .map(Some)
        .map_err(CliError::Message)
}

/// Parses a comma-separated address list option.
fn addr_list(args: &ParsedArgs, option: &str) -> Vec<String> {
    args.options
        .get(option)
        .map(|list| {
            list.split(',')
                .map(|addr| addr.trim().to_string())
                .filter(|addr| !addr.is_empty())
                .collect()
        })
        .unwrap_or_default()
}

/// `ugs serve`: run the TCP query front-end over a graph until a client
/// sends `{"op": "shutdown"}`.
pub fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_options(SERVE_OPTIONS)?;
    let path = args.positional(0, "graph.txt")?;
    let graph = load(path)?;
    let shard = match (args.options.get("shard"), args.options.get("shards")) {
        (None, None) => None,
        (Some(_), None) | (None, Some(_)) => {
            return Err(CliError::Message(
                "--shard and --shards come as a pair (shard K of W workers)".to_string(),
            ))
        }
        (Some(_), Some(_)) => Some((args.usize_or("shard", 0)?, args.usize_or("shards", 1)?)),
    };
    let config = ugs_server::ServerConfig {
        addr: args.option_or("addr", "127.0.0.1:0"),
        executors: args.usize_or("executors", 2)?.max(1),
        queue_capacity: args.usize_or("queue", 64)?.max(1),
        max_inflight: args.usize_or("max-inflight", 8)?.max(1),
        cache_bytes: args.usize_or("cache-bytes", 1 << 20)?,
        max_plan_threads: args.usize_or("max-plan-threads", 8)?.max(1),
        max_line_bytes: args
            .usize_or("max-line-bytes", ugs_server::protocol::MAX_LINE_BYTES)?
            .max(64),
        shard,
        fault_plan: fault_plan_option(args)?,
    };
    let handle = ugs_server::serve(graph, config)
        .map_err(|e| CliError::Message(format!("cannot serve: {e}")))?;
    let addr = handle.addr();
    if let Some(announce) = args.options.get("announce") {
        std::fs::write(announce, addr.to_string())
            .map_err(|e| CliError::Message(format!("cannot write {announce:?}: {e}")))?;
    }
    eprintln!(
        "serving {path} on {addr} (line-delimited JSON; send {{\"op\": \"shutdown\"}} to stop)"
    );
    handle.wait();
    Ok(format!("server on {addr} stopped"))
}

/// `ugs coordinate`: execute a query plan over a fleet of shard workers
/// and print the report — bit-identical to the in-process run.
pub fn coordinate(args: &ParsedArgs) -> Result<String, CliError> {
    use std::time::Duration;

    args.expect_options(COORDINATE_OPTIONS)?;
    let graph_path = args.positional(0, "graph.txt")?;
    let plan_path = args.positional(1, "plan.json")?;
    let text = std::fs::read_to_string(plan_path)
        .map_err(|e| CliError::Message(format!("cannot read plan {plan_path:?}: {e}")))?;
    let plan =
        QueryPlan::parse_str(&text).map_err(|e| CliError::Message(format!("{plan_path}: {e}")))?;
    let workers = args
        .options
        .get("workers")
        .ok_or_else(|| CliError::Message("--workers HOST:PORT,... is required".to_string()))?;
    let addrs: Vec<String> = workers
        .split(',')
        .map(|addr| addr.trim().to_string())
        .filter(|addr| !addr.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err(CliError::Message(
            "--workers names no addresses".to_string(),
        ));
    }
    let graph = load(graph_path)?;
    let config = ugs_dist::CoordinatorConfig {
        timeout: Duration::from_millis(args.u64_or("timeout-ms", 10_000)?),
        retries: args.usize_or("retries", 2)?,
        reconnect_backoff: Duration::from_millis(args.u64_or("backoff-ms", 25)?),
        standbys: addr_list(args, "standbys"),
        faults: fault_plan_option(args)?,
        ..ugs_dist::CoordinatorConfig::default()
    };
    let mut coordinator = ugs_dist::DistCoordinator::connect(graph, &addrs, config)
        .map_err(|e| CliError::Message(format!("cannot assemble the fleet: {e}")))?;
    let report = coordinator.run_report(&plan);
    coordinator.shutdown();
    Ok(if args.flag("compact") {
        report.render()
    } else {
        report.pretty()
    })
}

/// `ugs supervise`: launch one `ugs serve --shard` worker per port and
/// babysit the fleet — respawn crashes with backoff, detect crash loops,
/// kill and respawn workers that stop answering pings.
pub fn supervise(args: &ParsedArgs) -> Result<String, CliError> {
    use std::time::Duration;

    args.expect_options(SUPERVISE_OPTIONS)?;
    let graph_path = args.positional(0, "graph.txt")?;
    // Validate the graph up front: an unreadable file should be one typed
    // error here, not a fleet of crash-looping workers.
    load(graph_path)?;
    let ports = args
        .options
        .get("ports")
        .ok_or_else(|| CliError::Message("--ports P1,P2,... is required".to_string()))?;
    let ports: Vec<u16> = ports
        .split(',')
        .map(|port| port.trim())
        .filter(|port| !port.is_empty())
        .map(|port| {
            port.parse::<u16>()
                .map_err(|_| CliError::Message(format!("--ports entry {port:?} is not a port")))
        })
        .collect::<Result<_, _>>()?;
    if ports.is_empty() {
        return Err(CliError::Message("--ports names no ports".to_string()));
    }
    // One host may supervise a slice of a wider fleet: --shard-base is the
    // first shard index here, --shards the fleet-wide count (defaulting to
    // base + port count, i.e. this host completes the fleet).
    let base = args.usize_or("shard-base", 0)?;
    let shards = match args.options.get("shards") {
        None => base + ports.len(),
        Some(declared) => {
            let declared: usize = declared
                .parse()
                .map_err(|_| CliError::Message(format!("--shards {declared:?} is not a count")))?;
            if declared < base + ports.len() {
                return Err(CliError::Message(format!(
                    "--shards {declared} cannot hold shards {base}..{} \
                     (shard-base {base} + {} listed ports)",
                    base + ports.len(),
                    ports.len()
                )));
            }
            declared
        }
    };
    let host = args.option_or("host", "127.0.0.1");
    let program = std::env::current_exe()
        .map_err(|e| CliError::Message(format!("cannot locate the ugs binary: {e}")))?;
    let specs: Vec<ugs_dist::WorkerSpec> = ports
        .iter()
        .enumerate()
        .map(|(i, port)| {
            let k = base + i;
            let addr = format!("{host}:{port}");
            ugs_dist::WorkerSpec {
                name: format!("shard-{k}"),
                addr: addr.clone(),
                program: program.clone(),
                args: vec![
                    "serve".to_string(),
                    graph_path.to_string(),
                    "--shard".to_string(),
                    k.to_string(),
                    "--shards".to_string(),
                    shards.to_string(),
                    "--addr".to_string(),
                    addr,
                ],
            }
        })
        .collect();
    let ping_ms = args.u64_or("ping-ms", 500)?;
    let defaults = ugs_dist::SupervisorConfig::default();
    let config = ugs_dist::SupervisorConfig {
        ping_interval: (ping_ms > 0).then(|| Duration::from_millis(ping_ms)),
        backoff: Duration::from_millis(args.u64_or("backoff-ms", 200)?),
        max_backoff: Duration::from_millis(args.u64_or("max-backoff-ms", 5_000)?),
        max_respawns: args.usize_or("max-respawns", defaults.max_respawns)?,
        crash_loop_limit: args
            .usize_or("crash-loop", defaults.crash_loop_limit)?
            .max(1),
        ..defaults
    };
    let announce = args.options.get("announce").map(std::path::PathBuf::from);
    let report = ugs_dist::supervise(specs, config, announce.as_deref(), |line| {
        eprintln!("{line}")
    })
    .map_err(|e| CliError::Message(format!("supervisor failed: {e}")))?;
    let rendered = report.render();
    Ok(if args.flag("compact") {
        rendered.render()
    } else {
        rendered.pretty()
    })
}

/// `ugs request`: one round-trip against a running `ugs serve` instance —
/// either a control op or a plan submission polled to completion.
pub fn request(args: &ParsedArgs) -> Result<String, CliError> {
    use std::time::Duration;

    args.expect_options(REQUEST_OPTIONS)?;
    let addr = args.positional(0, "host:port")?;
    let timeout = Duration::from_millis(args.u64_or("timeout-ms", 30_000)?);
    let mut client = ugs_server::LineClient::connect(addr)
        .map_err(|e| CliError::Message(format!("cannot connect to {addr}: {e}")))?;
    client
        .set_read_timeout(Some(timeout))
        .map_err(|e| CliError::Message(e.to_string()))?;
    let render = |value: &minijson::Value| {
        if args.flag("compact") {
            value.render()
        } else {
            value.pretty()
        }
    };
    if let Some(plan_path) = args.options.get("plan") {
        let text = std::fs::read_to_string(plan_path)
            .map_err(|e| CliError::Message(format!("cannot read plan {plan_path:?}: {e}")))?;
        // Re-render to one line: the wire protocol frames by newline, and a
        // plan file is usually pretty-printed.
        let plan = minijson::Value::parse(&text)
            .map_err(|e| CliError::Message(format!("{plan_path}: {e}")))?;
        let accepted = client
            .submit(&plan.render())
            .map_err(|e| CliError::Message(format!("submit failed: {e}")))?;
        if accepted.get_str("status") != Some("ok") {
            return Err(CliError::Message(format!(
                "server refused the plan: {}",
                accepted.render()
            )));
        }
        let job = accepted
            .get_usize("job")
            .ok_or_else(|| CliError::Message("submit response names no job".to_string()))?;
        let report = client
            .wait_for_report(job as u64)
            .map_err(|e| CliError::Message(format!("poll failed: {e}")))?;
        return Ok(render(&report));
    }
    let op = args.option_or("op", "ping");
    if !matches!(op.as_str(), "ping" | "stats" | "shutdown") {
        return Err(CliError::Message(format!(
            "unknown op {op:?}; expected ping|stats|shutdown (or --plan FILE)"
        )));
    }
    let response = client
        .request(&format!(r#"{{"op": "{op}"}}"#))
        .map_err(|e| CliError::Message(format!("{op} failed: {e}")))?;
    if response.get_str("status") != Some("ok") {
        return Err(CliError::Message(format!(
            "server answered: {}",
            response.render()
        )));
    }
    Ok(render(&response))
}

/// Dispatches a parsed command line.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "stats" => stats(args),
        "sparsify" => sparsify(args),
        "query" => query(args),
        "compare" => compare(args),
        "batch" => batch(args),
        "plan" => plan(args),
        "partition" => partition(args),
        "session" => session(args),
        "serve" => serve(args),
        "coordinate" => coordinate(args),
        "supervise" => supervise(args),
        "request" => request(args),
        "help" | "--help" | "-h" => {
            args.expect_options(HELP_OPTIONS)?;
            match args.positionals.first() {
                None => Ok(usage()),
                Some(command) => usage_for(command).ok_or_else(|| {
                    CliError::Message(format!("unknown command {command:?}\n\n{}", usage()))
                }),
            }
        }
        other => Err(CliError::Message(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ugs-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn write_toy_graph(name: &str) -> String {
        let g = UncertainGraph::from_edges(
            6,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (2, 3, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (5, 0, 0.4),
                (0, 2, 0.3),
                (1, 3, 0.2),
                (2, 4, 0.35),
                (3, 5, 0.45),
            ],
        )
        .unwrap();
        let path = temp_path(name);
        io::write_text_file(&g, &path).unwrap();
        path.to_string_lossy().to_string()
    }

    #[test]
    fn generate_then_stats_round_trip() {
        let out = temp_path("generated.txt").to_string_lossy().to_string();
        let args = ParsedArgs::parse([
            "generate",
            "--dataset",
            "twitter",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--output",
            &out,
        ])
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("wrote twitter"));
        let stats_args = ParsedArgs::parse(["stats", out.as_str()]).unwrap();
        let report = run(&stats_args).unwrap();
        assert!(report.contains("entropy"));
        assert!(report.contains("200"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn generate_rejects_unknown_inputs() {
        let args =
            ParsedArgs::parse(["generate", "--dataset", "mars", "--output", "/tmp/x"]).unwrap();
        assert!(run(&args).is_err());
        let args =
            ParsedArgs::parse(["generate", "--scale", "galactic", "--output", "/tmp/x"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["generate"]).unwrap();
        assert!(run(&args).is_err()); // missing --output
    }

    #[test]
    fn sparsify_writes_output_and_reports_diagnostics() {
        let input = write_toy_graph("sparsify-in.txt");
        let output = temp_path("sparsify-out.txt").to_string_lossy().to_string();
        let args = ParsedArgs::parse([
            "sparsify",
            &input,
            "--alpha",
            "0.5",
            "--method",
            "emd",
            "--discrepancy",
            "relative",
            "--output",
            &output,
        ])
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("EMD^R-t"), "{report}");
        assert!(report.contains("10 -> 5"), "{report}");
        let written = io::read_text_file(&output).unwrap();
        assert_eq!(written.num_edges(), 5);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparsify_supports_every_method_name() {
        let input = write_toy_graph("methods.txt");
        for method in ["gdb", "emd", "lp", "ni", "ss"] {
            let args = ParsedArgs::parse([
                "sparsify",
                &input,
                "--alpha",
                "0.5",
                "--method",
                method,
                "--backbone",
                "random",
            ])
            .unwrap();
            let report = run(&args).unwrap();
            assert!(report.contains("edges"), "{method}: {report}");
        }
        let bad = ParsedArgs::parse(["sparsify", &input, "--method", "magic"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn sparsify_engines_agree_and_report_timings() {
        let input = write_toy_graph("engines.txt");
        let run_engine = |engine: &str, method: &str| {
            let args = ParsedArgs::parse([
                "sparsify", &input, "--alpha", "0.5", "--method", method, "--engine", engine,
                "--time",
            ])
            .unwrap();
            run(&args).unwrap()
        };
        for method in ["gdb", "emd"] {
            let reference = run_engine("reference", method);
            let indexed = run_engine("indexed", method);
            assert!(
                reference.contains("engine          : reference"),
                "{reference}"
            );
            assert!(indexed.contains("engine          : indexed"), "{indexed}");
            // Everything except the engine label and the wall-clock lines
            // must be byte-identical between the two engines.
            let stable = |report: &str| -> Vec<String> {
                report
                    .lines()
                    .filter(|line| {
                        !line.starts_with("time")
                            && !line.starts_with("timings")
                            && !line.starts_with("engine")
                    })
                    .map(str::to_string)
                    .collect()
            };
            assert_eq!(stable(&reference), stable(&indexed), "{method}");
            // --time emits a parseable JSON object with the per-phase fields.
            let timings_line = indexed
                .lines()
                .find(|line| line.starts_with("timings"))
                .expect("timings line present");
            let json = timings_line.split_once(':').unwrap().1.trim();
            let doc = minijson::Value::parse(json).expect("valid timings JSON");
            for field in ["backbone_ms", "optimize_ms", "materialize_ms", "total_ms"] {
                let value = doc.get_f64(field).unwrap_or(-1.0);
                assert!(value >= 0.0, "{method}: {field} = {value}");
            }
        }
        // Baseline methods have no engine dimension, so no engine line.
        let baseline = run(&ParsedArgs::parse([
            "sparsify",
            &input,
            "--alpha",
            "0.5",
            "--method",
            "ni",
            "--engine",
            "reference",
        ])
        .unwrap())
        .unwrap();
        assert!(!baseline.contains("engine"), "{baseline}");
        // Short engine spellings echo the canonical name.
        let short =
            run(
                &ParsedArgs::parse(["sparsify", &input, "--alpha", "0.5", "--engine", "ref"])
                    .unwrap(),
            )
            .unwrap();
        assert!(short.contains("engine          : reference"), "{short}");
        // Without --time no timings line appears.
        let plain =
            run(&ParsedArgs::parse(["sparsify", &input, "--alpha", "0.5"]).unwrap()).unwrap();
        assert!(!plain.contains("timings"), "{plain}");
        let bad = ParsedArgs::parse(["sparsify", &input, "--engine", "psychic"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn query_commands_produce_summaries() {
        let input = write_toy_graph("query.txt");
        for (query, needle) in [
            ("pagerank", "PageRank"),
            ("cc", "clustering"),
            ("sp", "reliability"),
            ("connectivity", "P(connected)"),
            ("knn", "nearest neighbours"),
        ] {
            let args = ParsedArgs::parse([
                "query", &input, "--query", query, "--worlds", "50", "--pairs", "5", "--top", "3",
            ])
            .unwrap();
            let report = run(&args).unwrap();
            assert!(report.contains(needle), "{query}: {report}");
        }
        let bad = ParsedArgs::parse(["query", &input, "--query", "nope"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn query_honours_engine_options() {
        let input = write_toy_graph("query-engine.txt");
        // same seed + sequential ⇒ identical reports, whatever the mode
        let run_with = |extra: &[&str]| {
            let mut argv = vec!["query", &input, "--query", "pagerank", "--worlds", "80"];
            argv.extend_from_slice(extra);
            run(&ParsedArgs::parse(argv).unwrap()).unwrap()
        };
        let sequential_a = run_with(&["--sequential"]);
        let sequential_b = run_with(&["--sequential"]);
        assert_eq!(sequential_a, sequential_b);
        let skip = run_with(&["--sequential", "--mode", "skip"]);
        let per_edge = run_with(&["--sequential", "--mode", "per-edge"]);
        assert!(skip.contains("PageRank") && per_edge.contains("PageRank"));
        let threaded = run_with(&["--threads", "2"]);
        assert!(threaded.contains("PageRank"));
        let bad = ParsedArgs::parse(["query", &input, "--mode", "psychic"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn batch_evaluates_several_queries_in_one_json_report() {
        let input = write_toy_graph("batch.txt");
        let args = ParsedArgs::parse([
            "batch",
            &input,
            "--queries",
            "pagerank,cc,sp,connectivity,degree-hist,edge-freq,knn",
            "--worlds",
            "60",
            "--pairs",
            "5",
            "--top",
            "3",
            "--sequential",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        let doc = minijson::Value::parse(&report).expect("valid JSON");
        assert_eq!(doc.get_usize("worlds"), Some(60));
        let queries = doc.get("queries").expect("queries object");
        for key in [
            "pagerank",
            "clustering",
            "sp",
            "connectivity",
            "degree_histogram",
            "edge_frequencies",
            "knn",
        ] {
            assert!(queries.get(key).is_some(), "{key} missing: {report}");
        }
        assert_eq!(
            queries
                .get("pagerank")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(3)
        );
        // Deterministic: same seed, same report, byte for byte.
        assert_eq!(report, run(&args).unwrap());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn batch_rejects_bad_query_lists() {
        let input = write_toy_graph("batch-bad.txt");
        let bad = ParsedArgs::parse(["batch", &input, "--queries", "psychic"]).unwrap();
        assert!(run(&bad).is_err());
        let empty = ParsedArgs::parse(["batch", &input, "--queries", ","]).unwrap();
        assert!(run(&empty).is_err());
        let out_of_range =
            ParsedArgs::parse(["batch", &input, "--queries", "knn", "--source", "999"]).unwrap();
        assert!(run(&out_of_range).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn partition_reports_shards_and_cut_structure() {
        let input = write_toy_graph("partition.txt");
        for strategy in ["contiguous", "spanning"] {
            let args = ParsedArgs::parse([
                "partition",
                &input,
                "--shards",
                "3",
                "--strategy",
                strategy,
                "--compact",
            ])
            .unwrap();
            let report = run(&args).unwrap();
            assert_eq!(report, run(&args).unwrap(), "{strategy}: deterministic");
            let doc = minijson::Value::parse(&report).expect("valid JSON");
            assert_eq!(doc.get_usize("num_shards"), Some(3));
            assert_eq!(doc.get_str("strategy"), Some(strategy));
            let shards = doc.get("shards").unwrap().as_array().unwrap();
            assert_eq!(shards.len(), 3);
            let total_vertices: usize = shards
                .iter()
                .map(|s| s.get_usize("vertices").unwrap())
                .sum();
            assert_eq!(total_vertices, 6);
            // Shard edges plus cut edges account for every edge exactly once.
            let shard_edges: usize = shards.iter().map(|s| s.get_usize("edges").unwrap()).sum();
            let cut = doc.get("cut").unwrap();
            assert_eq!(shard_edges + cut.get_usize("edges").unwrap(), 10);
            assert!(cut.get_f64("probability_mass").unwrap() >= 0.0);
            // Halo statistics: every shard reports its ghost layout, and
            // the aggregate replication factor accounts for every replica
            // ((owned + ghosts summed over shards) / |V|, at least 1.0).
            let mut replicas = 0usize;
            for shard in shards {
                let halo = shard.get("halo").unwrap();
                assert!(halo.get_usize("halo_edges").is_some());
                assert!(halo.get_f64("expected_halo_mass").unwrap() >= 0.0);
                assert!(
                    halo.get_usize("ghost_vertices").unwrap()
                        >= halo.get_usize("boundary_vertices").unwrap().min(1)
                );
                replicas += shard.get_usize("vertices").unwrap()
                    + halo.get_usize("ghost_vertices").unwrap();
            }
            let replication = doc
                .get("halo")
                .unwrap()
                .get_f64("replication_factor")
                .unwrap();
            assert!((replication - replicas as f64 / 6.0).abs() < 1e-12);
            assert!(replication >= 1.0);
        }
        let bad = ParsedArgs::parse(["partition", &input, "--strategy", "psychic"]).unwrap();
        assert!(run(&bad).is_err());
        let zero = ParsedArgs::parse(["partition", &input, "--shards", "0"]).unwrap();
        assert!(run(&zero).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn batch_with_shards_is_bit_identical_for_count_queries() {
        let input = write_toy_graph("batch-shards.txt");
        let report_with = |shards: &str| {
            let args = ParsedArgs::parse([
                "batch",
                &input,
                "--queries",
                "connectivity,degree-hist,edge-freq,sp,pagerank,clustering,knn",
                "--worlds",
                "80",
                "--pairs",
                "4",
                "--source",
                "2",
                "--sequential",
                "--shards",
                shards,
            ])
            .unwrap();
            run(&args).unwrap()
        };
        // The sharded engine replays the monolithic edge stream — through
        // the cut correction for the count queries and the ghost-halo
        // exchange for pagerank/clustering/knn — so the whole JSON report
        // is byte-identical across shard counts.
        let monolithic = report_with("1");
        assert_eq!(monolithic, report_with("2"));
        assert_eq!(monolithic, report_with("4"));
        // --shards 0 is rejected, consistently with `ugs partition`.
        let zero = ParsedArgs::parse([
            "batch",
            &input,
            "--queries",
            "connectivity",
            "--shards",
            "0",
        ])
        .unwrap();
        assert!(run(&zero).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn plan_parse_errors_point_at_the_failing_query() {
        let plan_path = temp_path("bad-query-plan.json")
            .to_string_lossy()
            .to_string();
        std::fs::write(
            &plan_path,
            r#"{"queries": [{"type": "connectivity"}, {"type": "knn"}]}"#,
        )
        .unwrap();
        let error = run(&ParsedArgs::parse(["plan", plan_path.as_str()]).unwrap())
            .unwrap_err()
            .to_string();
        // Snapshot of the improved validation message: the plan path, the
        // failing entry's index and name, and the underlying cause.
        assert!(error.contains(&plan_path), "{error}");
        assert!(error.contains("queries[1] (\"knn\")"), "{error}");
        assert!(error.contains("source"), "{error}");
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn plan_shards_override_applies_sharded_validation() {
        let input = write_toy_graph("plan-shards.txt");
        let plan_path = temp_path("shards-plan.json").to_string_lossy().to_string();
        std::fs::write(
            &plan_path,
            format!(
                r#"{{"graph": {input:?}, "worlds": 60, "seed": 4,
                    "queries": [{{"type": "connectivity"}}, {{"type": "pagerank"}}]}}"#
            ),
        )
        .unwrap();
        // Monolithic: both queries succeed.
        let report = run(&ParsedArgs::parse(["plan", plan_path.as_str()]).unwrap()).unwrap();
        let doc = minijson::Value::parse(&report).unwrap();
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert!(results.iter().all(|r| r.get_str("status") == Some("ok")));
        let monolithic: Vec<String> = results.iter().map(|r| r.render()).collect();
        // --shards 2: connectivity runs through the cut correction,
        // pagerank through the ghost-halo exchange — both answer, and both
        // answers render byte-identically to the monolithic run.
        let report =
            run(&ParsedArgs::parse(["plan", plan_path.as_str(), "--shards", "2"]).unwrap())
                .unwrap();
        let doc = minijson::Value::parse(&report).unwrap();
        assert_eq!(doc.get_usize("shards"), Some(2));
        let results = doc.get("results").unwrap().as_array().unwrap();
        let sharded: Vec<String> = results.iter().map(|r| r.render()).collect();
        assert_eq!(sharded, monolithic);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn compare_reports_all_metrics() {
        let input = write_toy_graph("compare-in.txt");
        let sparse_path = temp_path("compare-sparse.txt")
            .to_string_lossy()
            .to_string();
        let sparsify_args = ParsedArgs::parse([
            "sparsify",
            &input,
            "--alpha",
            "0.5",
            "--output",
            &sparse_path,
        ])
        .unwrap();
        run(&sparsify_args).unwrap();
        let args = ParsedArgs::parse([
            "compare",
            &input,
            &sparse_path,
            "--worlds",
            "50",
            "--pairs",
            "5",
            "--cuts",
            "50",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        for needle in [
            "degree discrepancy",
            "cut discrepancy",
            "relative entropy",
            "D_em",
        ] {
            assert!(report.contains(needle), "{report}");
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&sparse_path).ok();
    }

    #[test]
    fn help_and_unknown_commands() {
        let help = run(&ParsedArgs::parse(["help"]).unwrap()).unwrap();
        assert!(help.contains("USAGE"));
        assert!(run(&ParsedArgs::parse(["frobnicate"]).unwrap()).is_err());
    }

    #[test]
    fn help_knows_every_subcommand() {
        let full = run(&ParsedArgs::parse(["help"]).unwrap()).unwrap();
        for command in [
            "generate",
            "stats",
            "sparsify",
            "query",
            "compare",
            "batch",
            "plan",
            "partition",
            "session",
        ] {
            assert!(full.contains(command), "{command} missing from help");
            let single = run(&ParsedArgs::parse(["help", command]).unwrap()).unwrap();
            assert!(single.contains("USAGE"), "{command}: {single}");
            assert!(single.contains(command), "{command}: {single}");
        }
        assert!(run(&ParsedArgs::parse(["help", "frobnicate"]).unwrap()).is_err());
    }

    #[test]
    fn unknown_options_are_rejected_per_subcommand() {
        let input = write_toy_graph("unknown-options.txt");
        // A typo'd --worlds must fail loudly, not silently use the default.
        let typo = ParsedArgs::parse(["query", &input, "--world", "50"]).unwrap();
        let error = run(&typo).unwrap_err().to_string();
        assert!(error.contains("unknown option --world"), "{error}");
        assert!(
            error.contains("--worlds"),
            "suggests the allowed set: {error}"
        );
        // Options of one command are not valid for another.
        let crossed = ParsedArgs::parse(["stats", &input, "--alpha", "0.5"]).unwrap();
        assert!(run(&crossed).is_err());
        let crossed = ParsedArgs::parse(["sparsify", &input, "--queries", "pagerank"]).unwrap();
        assert!(run(&crossed).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn plan_executes_a_json_query_plan_end_to_end() {
        let input = write_toy_graph("plan-graph.txt");
        let plan_path = temp_path("plan.json").to_string_lossy().to_string();
        std::fs::write(
            &plan_path,
            format!(
                r#"{{"graph": {input:?}, "worlds": 80, "threads": 2, "mode": "skip", "seed": 9,
                    "queries": [
                      {{"type": "pagerank"}},
                      {{"type": "connectivity"}},
                      {{"type": "knn", "source": 0, "k": 3}},
                      {{"type": "edge_frequency"}}
                    ]}}"#
            ),
        )
        .unwrap();
        let args = ParsedArgs::parse(["plan", plan_path.as_str()]).unwrap();
        let report = run(&args).unwrap();
        assert_eq!(report, run(&args).unwrap(), "plan reports are snapshots");
        let doc = minijson::Value::parse(&report).expect("valid JSON");
        assert_eq!(doc.get_usize("worlds"), Some(80));
        assert_eq!(doc.get_str("mode"), Some("skip"));
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 4);
        for entry in results {
            assert_eq!(entry.get_str("status"), Some("ok"), "{report}");
        }
        assert_eq!(
            results[0].get("query").unwrap().get_str("type"),
            Some("pagerank")
        );
        // --graph overrides the plan's graph path.
        let override_args =
            ParsedArgs::parse(["plan", plan_path.as_str(), "--graph", input.as_str()]).unwrap();
        assert!(run(&override_args).is_ok());
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn plan_rejects_missing_files_and_bad_documents() {
        assert!(run(&ParsedArgs::parse(["plan", "/nonexistent/plan.json"]).unwrap()).is_err());
        let bad_path = temp_path("bad-plan.json").to_string_lossy().to_string();
        std::fs::write(&bad_path, r#"{"queries": []}"#).unwrap();
        assert!(run(&ParsedArgs::parse(["plan", bad_path.as_str()]).unwrap()).is_err());
        // A plan without a graph needs --graph.
        std::fs::write(&bad_path, r#"{"queries": [{"type": "connectivity"}]}"#).unwrap();
        assert!(run(&ParsedArgs::parse(["plan", bad_path.as_str()]).unwrap()).is_err());
        std::fs::remove_file(&bad_path).ok();
    }

    #[test]
    fn session_drives_the_streaming_service() {
        let input = write_toy_graph("session.txt");
        // A large arrival window so batching is driven purely by the count
        // threshold (the default --batch-max of 4 = the mix size): the
        // micro-batch and world tallies below stay deterministic even when
        // a loaded CI box preempts the test between submissions.
        let args = ParsedArgs::parse([
            "session",
            &input,
            "--rounds",
            "2",
            "--worlds",
            "40",
            "--workers",
            "2",
            "--seed",
            "3",
            "--batch-wait-ms",
            "60000",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("8 interleaved submissions"), "{report}");
        assert!(report.contains("[round 0] pagerank"), "{report}");
        assert!(report.contains("[round 1] knn"), "{report}");
        assert!(report.contains("micro-batches: 2"), "{report}");
        assert!(report.contains("worlds sampled: 80"), "{report}");
        let bad = ParsedArgs::parse(["session", &input, "--source", "999"]).unwrap();
        assert!(run(&bad).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn query_accepts_an_adaptive_precision_target() {
        let input = write_toy_graph("adaptive-query.txt");
        let args = ParsedArgs::parse([
            "query",
            &input,
            "--query",
            "connectivity",
            "--worlds",
            "100000",
            "--sequential",
            "--epsilon",
            "0.05",
            "--delta",
            "0.1",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("worlds sampled (adaptive)"), "{report}");
        let sampled: usize = report
            .lines()
            .find(|line| line.starts_with("worlds sampled"))
            .and_then(|line| line.split(':').nth(1))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(0 < sampled && sampled < 100_000, "{report}");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn precision_flags_require_epsilon_and_validate() {
        let input = write_toy_graph("precision-flags.txt");
        for bad in [
            vec!["query", input.as_str(), "--delta", "0.1"],
            vec!["query", input.as_str(), "--max-worlds", "50"],
            vec!["query", input.as_str(), "--epsilon", "0"],
            vec!["query", input.as_str(), "--epsilon", "-0.5"],
            vec!["query", input.as_str(), "--epsilon", "0.1", "--delta", "2"],
            vec!["batch", input.as_str(), "--deadline-ms", "100"],
        ] {
            let what = bad.join(" ");
            let args = ParsedArgs::parse(bad).unwrap();
            assert!(run(&args).is_err(), "{what} should be rejected");
        }
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn batch_reports_adaptive_effort() {
        let input = write_toy_graph("adaptive-batch.txt");
        let args = ParsedArgs::parse([
            "batch",
            &input,
            "--queries",
            "connectivity,edge-freq",
            "--worlds",
            "100000",
            "--sequential",
            "--epsilon",
            "0.05",
            "--seed",
            "5",
            "--compact",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        let doc = minijson::Value::parse(&report).unwrap();
        let worlds_used = doc.get("worlds_used").unwrap().as_usize().unwrap();
        assert!(0 < worlds_used && worlds_used < 100_000, "{report}");
        let half_width = doc.get("half_width").unwrap().as_f64().unwrap();
        assert!(half_width <= 0.05, "{report}");
        // Without --epsilon the report has no effort fields.
        let fixed = ParsedArgs::parse([
            "batch",
            &input,
            "--queries",
            "connectivity",
            "--worlds",
            "50",
            "--compact",
        ])
        .unwrap();
        let fixed_report = run(&fixed).unwrap();
        let fixed_doc = minijson::Value::parse(&fixed_report).unwrap();
        assert!(fixed_doc.get("worlds_used").is_none(), "{fixed_report}");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn plan_documents_and_flags_drive_adaptive_precision() {
        let input = write_toy_graph("adaptive-plan.txt");
        let plan_path = temp_path("adaptive-plan.json")
            .to_string_lossy()
            .to_string();
        std::fs::write(
            &plan_path,
            r#"{"worlds": 100000, "seed": 9, "threads": 1,
                "precision": {"epsilon": 0.05},
                "queries": [{"type": "connectivity"}]}"#,
        )
        .unwrap();
        let args = ParsedArgs::parse([
            "plan",
            plan_path.as_str(),
            "--graph",
            input.as_str(),
            "--compact",
        ])
        .unwrap();
        let report = run(&args).unwrap();
        let doc = minijson::Value::parse(&report).unwrap();
        assert!(doc.get("precision").is_some(), "{report}");
        let entry = &doc.get("results").unwrap().as_array().unwrap()[0];
        let worlds_used = entry.get("worlds_used").unwrap().as_usize().unwrap();
        assert!(0 < worlds_used && worlds_used < 100_000, "{report}");
        assert!(entry.get("half_width").is_some(), "{report}");
        // The CLI flag overrides the document's block: a looser target must
        // not use more worlds.
        let loose = ParsedArgs::parse([
            "plan",
            plan_path.as_str(),
            "--graph",
            input.as_str(),
            "--epsilon",
            "0.2",
            "--compact",
        ])
        .unwrap();
        let loose_report = run(&loose).unwrap();
        let loose_doc = minijson::Value::parse(&loose_report).unwrap();
        let loose_entry = &loose_doc.get("results").unwrap().as_array().unwrap()[0];
        let loose_worlds = loose_entry.get("worlds_used").unwrap().as_usize().unwrap();
        assert!(loose_worlds <= worlds_used, "{loose_report}");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn serve_and_request_round_trip_over_loopback() {
        let input = write_toy_graph("serve-input.txt");
        let announce = temp_path("serve-addr.txt").to_string_lossy().to_string();
        std::fs::remove_file(&announce).ok();
        let plan_path = temp_path("serve-plan.json").to_string_lossy().to_string();
        std::fs::write(
            &plan_path,
            "{\n  \"worlds\": 60,\n  \"seed\": 3,\n  \"queries\": [{\"type\": \"connectivity\"}, {\"type\": \"edge_frequency\"}]\n}\n",
        )
        .unwrap();

        let serve_args = ParsedArgs::parse([
            "serve",
            input.as_str(),
            "--addr",
            "127.0.0.1:0",
            "--announce",
            &announce,
        ])
        .unwrap();
        let server = std::thread::spawn(move || run(&serve_args).unwrap());
        // The announce file is the handshake: wait for the bound address.
        let addr = loop {
            match std::fs::read_to_string(&announce) {
                Ok(addr) if !addr.is_empty() => break addr,
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };

        let ping = ParsedArgs::parse(["request", &addr, "--op", "ping", "--compact"]).unwrap();
        assert!(run(&ping).unwrap().contains("pong"));

        let submit =
            ParsedArgs::parse(["request", &addr, "--plan", &plan_path, "--compact"]).unwrap();
        let report = run(&submit).unwrap();
        assert!(report.contains("\"results\""), "{report}");
        assert!(report.contains("fingerprint:"), "{report}");
        // Identical resubmission is served from the cache, bit-identically.
        assert_eq!(run(&submit).unwrap(), report);

        let stats = ParsedArgs::parse(["request", &addr, "--op", "stats", "--compact"]).unwrap();
        let stats_report = run(&stats).unwrap();
        assert!(stats_report.contains("\"hits\""), "{stats_report}");

        let shutdown =
            ParsedArgs::parse(["request", &addr, "--op", "shutdown", "--compact"]).unwrap();
        assert!(run(&shutdown).unwrap().contains("stopping"));
        let farewell = server.join().unwrap();
        assert!(farewell.contains("stopped"), "{farewell}");

        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&announce).ok();
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn request_rejects_bad_targets_and_ops_typed() {
        let bad_op = ParsedArgs::parse(["request", "127.0.0.1:1", "--op", "warp"]).unwrap();
        let message = run(&bad_op).unwrap_err().to_string();
        assert!(message.contains("cannot connect") || message.contains("unknown op"));
        let unknown_option =
            ParsedArgs::parse(["request", "127.0.0.1:1", "--frobnicate", "yes"]).unwrap();
        assert!(run(&unknown_option).is_err());
    }

    #[test]
    fn supervise_rejects_a_fleet_its_shard_slice_cannot_fit() {
        let input = write_toy_graph("supervise-slice.txt");
        // shard-base 3 + 2 ports needs shards >= 5; declaring 4 is typed.
        let args = ParsedArgs::parse([
            "supervise",
            input.as_str(),
            "--ports",
            "7991,7992",
            "--shards",
            "4",
            "--shard-base",
            "3",
        ])
        .unwrap();
        let message = run(&args).unwrap_err().to_string();
        assert!(message.contains("cannot hold shards 3..5"), "{message}");
        std::fs::remove_file(&input).ok();
    }
}
