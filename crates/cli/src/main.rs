//! `ugs` — command-line interface for the uncertain-graph-sparsification
//! workspace.
//!
//! ```text
//! ugs generate --dataset flickr --scale tiny --output graph.txt
//! ugs stats graph.txt
//! ugs sparsify graph.txt --alpha 0.16 --method emd --output sparse.txt
//! ugs query sparse.txt --query pagerank --worlds 500
//! ugs compare graph.txt sparse.txt
//! ```
//!
//! Run `ugs help` for the full option list.

use ugs_cli::args::ParsedArgs;
use ugs_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        println!("{}", commands::usage());
        return;
    }
    let parsed = match ParsedArgs::parse(raw) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(report) => println!("{report}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
