//! Minimal, dependency-free command-line argument parsing.
//!
//! The CLI intentionally avoids external argument-parsing crates; the
//! grammar is simple (`ugs <command> [positional …] [--flag value …]`) and a
//! hand-rolled parser keeps the dependency footprint at zero.

use std::collections::HashMap;

/// A parsed command line: the subcommand, its positional arguments and its
/// `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments following the subcommand.
    pub positionals: Vec<String>,
    /// `--key value` pairs; a flag without a value maps to an empty string.
    pub options: HashMap<String, String>,
}

/// Errors produced while parsing or interpreting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand was given.
    MissingCommand,
    /// A required option was not supplied.
    MissingOption(String),
    /// A required positional argument was not supplied.
    MissingPositional(String),
    /// An option value could not be interpreted.
    InvalidValue {
        /// Option name.
        option: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// An option the command does not understand (typo protection: the CLI
    /// used to silently ignore these).
    UnknownOption {
        /// The unrecognised option name (without the `--`).
        option: String,
        /// The command that rejected it.
        command: String,
        /// The options the command does accept.
        allowed: Vec<String>,
    },
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "no command given; try `ugs help`"),
            ArgsError::MissingOption(name) => write!(f, "missing required option --{name}"),
            ArgsError::MissingPositional(name) => write!(f, "missing required argument <{name}>"),
            ArgsError::InvalidValue {
                option,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid value {value:?} for --{option}: expected {expected}"
                )
            }
            ArgsError::UnknownOption {
                option,
                command,
                allowed,
            } => {
                write!(f, "unknown option --{option} for `ugs {command}`")?;
                if allowed.is_empty() {
                    write!(f, "; the command takes no options")
                } else {
                    write!(
                        f,
                        "; expected one of {} (see `ugs help {command}`)",
                        allowed
                            .iter()
                            .map(|name| format!("--{name}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl ParsedArgs {
    /// Parses raw arguments (excluding the program name).
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = raw.into_iter().map(Into::into).peekable();
        let command = iter.next().ok_or(ArgsError::MissingCommand)?;
        let mut parsed = ParsedArgs {
            command,
            ..Default::default()
        };
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                parsed.options.insert(key.to_string(), value);
            } else {
                parsed.positionals.push(token);
            }
        }
        Ok(parsed)
    }

    /// The `index`-th positional argument, or an error naming it.
    pub fn positional(&self, index: usize, name: &str) -> Result<&str, ArgsError> {
        self.positionals
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| ArgsError::MissingPositional(name.to_string()))
    }

    /// A string option with a default.
    pub fn option_or(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgsError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgsError::MissingOption(key.to_string()))
    }

    /// A floating-point option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(value) => value.parse().map_err(|_| ArgsError::InvalidValue {
                option: key.to_string(),
                value: value.clone(),
                expected: "a number".to_string(),
            }),
        }
    }

    /// An integer option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(value) => value.parse().map_err(|_| ArgsError::InvalidValue {
                option: key.to_string(),
                value: value.clone(),
                expected: "a non-negative integer".to_string(),
            }),
        }
    }

    /// A u64 option with a default (used for seeds).
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(value) => value.parse().map_err(|_| ArgsError::InvalidValue {
                option: key.to_string(),
                value: value.clone(),
                expected: "a non-negative integer".to_string(),
            }),
        }
    }

    /// Whether a bare flag (e.g. `--json`) is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Rejects any parsed `--option` that is not in `allowed` — every
    /// subcommand calls this before interpreting its options, so a typo
    /// like `--world` fails loudly instead of silently falling back to the
    /// default.  The offending options are reported in sorted order.
    pub fn expect_options(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        let mut unknown: Vec<&String> = self
            .options
            .keys()
            .filter(|key| !allowed.contains(&key.as_str()))
            .collect();
        unknown.sort();
        match unknown.first() {
            None => Ok(()),
            Some(option) => Err(ArgsError::UnknownOption {
                option: (*option).clone(),
                command: self.command.clone(),
                allowed: allowed.iter().map(|s| s.to_string()).collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_positionals_and_options() {
        let parsed = ParsedArgs::parse([
            "sparsify",
            "input.txt",
            "--alpha",
            "0.25",
            "--method",
            "emd",
            "--json",
        ])
        .unwrap();
        assert_eq!(parsed.command, "sparsify");
        assert_eq!(parsed.positional(0, "input").unwrap(), "input.txt");
        assert_eq!(parsed.f64_or("alpha", 0.16).unwrap(), 0.25);
        assert_eq!(parsed.option_or("method", "gdb"), "emd");
        assert!(parsed.flag("json"));
        assert!(!parsed.flag("quiet"));
    }

    #[test]
    fn missing_command_and_arguments_are_reported() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()),
            Err(ArgsError::MissingCommand)
        );
        let parsed = ParsedArgs::parse(["stats"]).unwrap();
        assert!(matches!(
            parsed.positional(0, "input"),
            Err(ArgsError::MissingPositional(_))
        ));
        assert!(matches!(
            parsed.required("alpha"),
            Err(ArgsError::MissingOption(_))
        ));
    }

    #[test]
    fn numeric_options_validate_their_values() {
        let parsed = ParsedArgs::parse(["q", "--alpha", "zero", "--worlds", "-3"]).unwrap();
        assert!(matches!(
            parsed.f64_or("alpha", 0.1),
            Err(ArgsError::InvalidValue { .. })
        ));
        assert!(matches!(
            parsed.usize_or("worlds", 5),
            Err(ArgsError::InvalidValue { .. })
        ));
        assert_eq!(parsed.usize_or("missing", 7).unwrap(), 7);
        assert_eq!(parsed.u64_or("missing", 9).unwrap(), 9);
    }

    #[test]
    fn defaults_apply_when_options_are_absent() {
        let parsed = ParsedArgs::parse(["generate"]).unwrap();
        assert_eq!(parsed.option_or("dataset", "flickr"), "flickr");
        assert_eq!(parsed.f64_or("alpha", 0.16).unwrap(), 0.16);
    }

    #[test]
    fn flags_without_values_map_to_empty_strings() {
        let parsed = ParsedArgs::parse(["x", "--verbose", "--alpha", "0.5"]).unwrap();
        assert!(parsed.flag("verbose"));
        assert_eq!(parsed.option_or("verbose", "?"), "");
        assert_eq!(parsed.f64_or("alpha", 0.0).unwrap(), 0.5);
    }

    #[test]
    fn errors_display_helpfully() {
        for err in [
            ArgsError::MissingCommand,
            ArgsError::MissingOption("alpha".into()),
            ArgsError::MissingPositional("input".into()),
            ArgsError::InvalidValue {
                option: "alpha".into(),
                value: "x".into(),
                expected: "a number".into(),
            },
            ArgsError::UnknownOption {
                option: "world".into(),
                command: "query".into(),
                allowed: vec!["worlds".into()],
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn unknown_options_are_rejected_with_the_allowed_set() {
        let parsed = ParsedArgs::parse(["query", "g.txt", "--world", "5", "--seeed", "1"]).unwrap();
        match parsed.expect_options(&["worlds", "seed"]) {
            Err(ArgsError::UnknownOption {
                option,
                command,
                allowed,
            }) => {
                assert_eq!(option, "seeed", "unknown options report in sorted order");
                assert_eq!(command, "query");
                assert_eq!(allowed, vec!["worlds".to_string(), "seed".to_string()]);
            }
            other => panic!("expected UnknownOption, got {other:?}"),
        }
        assert!(parsed
            .expect_options(&["worlds", "seed", "world", "seeed"])
            .is_ok());
        let message = parsed.expect_options(&[]).unwrap_err().to_string();
        assert!(message.contains("takes no options"), "{message}");
    }
}
