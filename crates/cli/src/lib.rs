//! Library surface of the `ugs` command-line interface.
//!
//! The binary in `main.rs` is a thin shell over this crate: argument parsing
//! lives in [`args`] and every subcommand in [`commands`] returns its report
//! as a `String`, so the whole CLI is testable in-process (the workspace's
//! end-to-end suite drives it exactly like a shell user would, minus the
//! process boundary).

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
