//! Determinism suite for the batch driver.
//!
//! The contract under test (see `ugs_queries::batch` docs):
//!
//! 1. a run is invariant to the observer **registration order**;
//! 2. **order-insensitive accumulators** (counts, and statistics derived
//!    from counts such as reliability or component tallies of 0/1 events)
//!    are exactly invariant to the **thread count** — the replay
//!    partitioning gives every thread count the same world sequence;
//! 3. the caller RNG advances by **exactly one** `u64` draw per run, and by
//!    zero draws when there is nothing to sample or observe.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::UncertainGraph;

use ugs_queries::prelude::*;

const MODES: [SampleMethod; 2] = [SampleMethod::Skip, SampleMethod::PerEdge];

fn fixture() -> UncertainGraph {
    UncertainGraph::from_edges(
        8,
        [
            (0, 1, 0.9),
            (1, 2, 0.7),
            (2, 3, 0.5),
            (3, 4, 0.3),
            (4, 5, 0.2),
            (5, 6, 0.6),
            (6, 7, 0.4),
            (7, 0, 0.8),
            (0, 4, 0.15),
            (2, 6, 0.35),
        ],
    )
    .unwrap()
}

#[test]
fn results_are_invariant_to_observer_registration_order() {
    let g = fixture();
    let pairs = [(0, 3), (2, 7), (5, 1)];
    for mode in MODES {
        let mc = MonteCarlo::worlds(300).with_method(mode).with_threads(2);
        let run = |reversed: bool| {
            let mut rng = SmallRng::seed_from_u64(42);
            let mut batch = QueryBatch::new(&g, &mc);
            if reversed {
                let h_freq = batch.register(EdgeFrequencyObserver::new(&g));
                let h_pairs = batch.register(PairQueriesObserver::new(&pairs));
                let h_pr = batch.register(PageRankObserver::new(&g));
                let mut results = batch.run(&mut rng);
                (
                    results.take(h_pr),
                    results.take(h_pairs),
                    results.take(h_freq),
                )
            } else {
                let h_pr = batch.register(PageRankObserver::new(&g));
                let h_pairs = batch.register(PairQueriesObserver::new(&pairs));
                let h_freq = batch.register(EdgeFrequencyObserver::new(&g));
                let mut results = batch.run(&mut rng);
                (
                    results.take(h_pr),
                    results.take(h_pairs),
                    results.take(h_freq),
                )
            }
        };
        let (pr_a, pairs_a, freq_a) = run(false);
        let (pr_b, pairs_b, freq_b) = run(true);
        assert_eq!(pr_a, pr_b, "{mode:?}: pagerank depends on order");
        assert_eq!(pairs_a, pairs_b, "{mode:?}: pair queries depend on order");
        assert_eq!(freq_a, freq_b, "{mode:?}: frequencies depend on order");
    }
}

#[test]
fn count_observers_are_invariant_to_the_thread_count() {
    // The replay partitioning hands every thread count the same sequence of
    // sampled worlds, so count-valued accumulators (edge frequencies, degree
    // histograms, connected-world counts, reliability) must agree exactly
    // across threads ∈ {1, 2, 4}.
    let g = fixture();
    let pairs = [(0, 3), (2, 7), (5, 1), (4, 4)];
    for mode in MODES {
        let run = |threads: usize| {
            let mc = MonteCarlo::worlds(500)
                .with_method(mode)
                .with_threads(threads);
            let mut rng = SmallRng::seed_from_u64(7);
            let mut batch = QueryBatch::new(&g, &mc);
            let h_freq = batch.register(EdgeFrequencyObserver::new(&g));
            let h_hist = batch.register(DegreeHistogramObserver::new(&g));
            let h_pairs = batch.register(PairQueriesObserver::new(&pairs));
            let h_conn = batch.register(ConnectivityObserver::new(&g));
            let mut results = batch.run(&mut rng);
            (
                results.take(h_freq),
                results.take(h_hist),
                results.take(h_pairs),
                results.take(h_conn),
            )
        };
        let (freq_1, hist_1, pairs_1, conn_1) = run(1);
        for threads in [2, 4] {
            let (freq_t, hist_t, pairs_t, conn_t) = run(threads);
            let what = format!("{mode:?} threads {threads}");
            assert_eq!(freq_1, freq_t, "{what}: edge frequencies");
            assert_eq!(hist_1, hist_t, "{what}: degree histogram");
            assert_eq!(
                pairs_1.connected_worlds, pairs_t.connected_worlds,
                "{what}: connected-world counts"
            );
            assert_eq!(
                pairs_1.reliability, pairs_t.reliability,
                "{what}: reliability"
            );
            assert_eq!(
                conn_1.probability_connected, conn_t.probability_connected,
                "{what}: P(connected)"
            );
            assert_eq!(
                conn_1.expected_components, conn_t.expected_components,
                "{what}: E[#components]"
            );
        }
    }
}

#[test]
fn float_observers_are_thread_invariant_up_to_roundoff() {
    // Floating-point sums are merged in worker order, so thread counts may
    // differ in round-off only — never in the sampled worlds themselves.
    let g = fixture();
    let run = |threads: usize| {
        let mc = MonteCarlo::worlds(400).with_threads(threads);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut batch = QueryBatch::new(&g, &mc);
        let h = batch.register(PageRankObserver::new(&g));
        batch.run(&mut rng).take(h)
    };
    let sequential = run(1);
    for threads in [2, 4] {
        let parallel = run(threads);
        for (s, p) in sequential.iter().zip(parallel.iter()) {
            assert!(
                (s - p).abs() < 1e-12,
                "threads {threads}: {s} vs {p} beyond round-off"
            );
        }
    }
}

#[test]
fn same_seed_same_result_different_seed_different_result() {
    let g = fixture();
    for mode in MODES {
        for threads in [1, 3] {
            let mc = MonteCarlo::worlds(200)
                .with_method(mode)
                .with_threads(threads);
            let run = |seed: u64| {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut batch = QueryBatch::new(&g, &mc);
                let h = batch.register(EdgeFrequencyObserver::new(&g));
                batch.run(&mut rng).take(h)
            };
            assert_eq!(run(3), run(3), "{mode:?} threads {threads}");
            assert_ne!(run(3), run(4), "{mode:?} threads {threads}");
        }
    }
}

#[test]
fn batch_runs_advance_the_caller_rng_by_exactly_one_draw() {
    let g = fixture();
    for (threads, worlds) in [(1, 50), (4, 50), (8, 3)] {
        let mc = MonteCarlo::worlds(worlds).with_threads(threads);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut batch = QueryBatch::new(&g, &mc);
        let h = batch.register(EdgeFrequencyObserver::new(&g));
        let _ = batch.run(&mut rng).take(h);
        let mut expected = SmallRng::seed_from_u64(11);
        expected.gen::<u64>(); // the one batch seed
        assert_eq!(
            rng.gen::<u64>(),
            expected.gen::<u64>(),
            "threads={threads} worlds={worlds}"
        );
    }
}

#[test]
fn ported_wrappers_advance_the_caller_rng_by_exactly_one_draw() {
    // The documented contract of the ported query surfaces: one u64 draw per
    // call, regardless of the thread count (zero only when nothing runs,
    // covered by the modules' own tests).
    type Query<'a> = Box<dyn Fn(&mut SmallRng) + 'a>;
    let g = fixture();
    let pairs = [(0, 3)];
    for threads in [1, 4] {
        let mc = MonteCarlo::worlds(40).with_threads(threads);
        let advance_of: Vec<(&str, Query<'_>)> = vec![
            (
                "pagerank",
                Box::new(|rng: &mut SmallRng| {
                    expected_pagerank(&g, &mc, rng);
                }),
            ),
            (
                "clustering",
                Box::new(|rng: &mut SmallRng| {
                    expected_clustering_coefficients(&g, &mc, rng);
                }),
            ),
            (
                "pairs",
                Box::new(|rng: &mut SmallRng| {
                    pair_queries(&g, &pairs, &mc, rng);
                }),
            ),
            (
                "connectivity",
                Box::new(|rng: &mut SmallRng| {
                    connectivity_query(&g, &mc, rng);
                }),
            ),
            (
                "histogram",
                Box::new(|rng: &mut SmallRng| {
                    ugs_queries::expected_degree_histogram(&g, &mc, rng);
                }),
            ),
            (
                "knn",
                Box::new(|rng: &mut SmallRng| {
                    k_nearest_neighbors(&g, 0, 3, &mc, rng);
                }),
            ),
        ];
        for (name, query) in advance_of {
            let mut rng = SmallRng::seed_from_u64(21);
            query(&mut rng);
            let mut expected = SmallRng::seed_from_u64(21);
            expected.gen::<u64>();
            assert_eq!(
                rng.gen::<u64>(),
                expected.gen::<u64>(),
                "{name} threads={threads}"
            );
        }
    }
}

#[test]
fn mixed_batch_matches_standalone_queries_sequentially() {
    // Sharing worlds must not change any individual answer: a sequential
    // k-observer batch gives each observer exactly what its standalone
    // single-observer run (same seed) produces.
    let g = fixture();
    let pairs = [(0, 3), (2, 7)];
    for mode in MODES {
        let mc = MonteCarlo::worlds(250).with_method(mode);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut batch = QueryBatch::new(&g, &mc);
        let h_pr = batch.register(PageRankObserver::new(&g));
        let h_pairs = batch.register(PairQueriesObserver::new(&pairs));
        let h_knn = batch.register(KnnObserver::new(&g, 0, 4));
        let mut results = batch.run(&mut rng);

        let mut rng_pr = SmallRng::seed_from_u64(13);
        assert_eq!(
            results.take(h_pr),
            expected_pagerank(&g, &mc, &mut rng_pr),
            "{mode:?}"
        );
        let mut rng_pairs = SmallRng::seed_from_u64(13);
        let standalone_pairs = pair_queries(&g, &pairs, &mc, &mut rng_pairs);
        let batched_pairs = results.take(h_pairs);
        assert_eq!(
            batched_pairs.connected_worlds, standalone_pairs.connected_worlds,
            "{mode:?}"
        );
        assert_eq!(
            batched_pairs.reliability, standalone_pairs.reliability,
            "{mode:?}"
        );
        let mut rng_knn = SmallRng::seed_from_u64(13);
        assert_eq!(
            results.take(h_knn),
            k_nearest_neighbors(&g, 0, 4, &mc, &mut rng_knn),
            "{mode:?}"
        );
    }
}
