//! Determinism contract of the adaptive (sequential-stopping) batch driver.
//!
//! The tentpole invariant: the number of worlds an adaptive run consumes is
//! a deterministic function of `(seed, ε, δ, epoch size)` — **independent of
//! the thread count** — because workers sample fixed world-blocks and the
//! epoch barrier replays the raw per-world statistics into the pooled
//! accumulators in world order.  Count-valued observer state is then
//! bit-identical across thread counts too, exactly like the fixed-budget
//! driver.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use uncertain_graph::UncertainGraph;

use ugs_queries::prelude::*;

const SEEDS: [u64; 3] = [1, 0xDEAD_BEEF, 9_999_999_999];
const MODES: [SampleMethod; 2] = [SampleMethod::Skip, SampleMethod::PerEdge];

fn fixture() -> UncertainGraph {
    // The batch_parity fixture: plateaus for the skip sampler's exact fast
    // path, heterogeneous tails for the thinning path, one certain edge.
    UncertainGraph::from_edges(
        10,
        [
            (0, 1, 0.9),
            (1, 2, 0.8),
            (2, 3, 0.7),
            (3, 4, 0.6),
            (4, 5, 0.5),
            (5, 6, 0.4),
            (6, 7, 0.3),
            (7, 8, 0.2),
            (8, 9, 0.1),
            (9, 0, 1.0),
            (0, 5, 0.25),
            (1, 6, 0.25),
            (2, 7, 0.25),
            (3, 8, 0.05),
        ],
    )
    .unwrap()
}

fn adaptive_mc(mode: SampleMethod, threads: usize, epsilon: f64) -> MonteCarlo {
    MonteCarlo::worlds(100_000)
        .with_threads(threads)
        .with_method(mode)
        .with_precision(Precision::new(epsilon).with_epoch(64))
}

/// Runs one adaptive connectivity batch and returns (worlds consumed,
/// estimate, report half-width).
fn run_once(
    mode: SampleMethod,
    threads: usize,
    seed: u64,
    epsilon: f64,
) -> (usize, ConnectivityEstimate, f64) {
    let g = fixture();
    let mc = adaptive_mc(mode, threads, epsilon);
    let mut batch = QueryBatch::new(&g, &mc);
    let handle = batch.register(ConnectivityObserver::new(&g));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut results = batch.run(&mut rng);
    let report = *results.adaptive().expect("adaptive batch reports");
    let estimate = results.take(handle);
    (report.worlds_used, estimate, report.half_width)
}

#[test]
fn worlds_consumed_are_invariant_over_threads_modes_and_seeds() {
    for mode in MODES {
        for seed in SEEDS {
            let (worlds_1, est_1, hw_1) = run_once(mode, 1, seed, 0.05);
            for threads in [2, 4] {
                let what = format!("{mode:?} seed {seed} threads {threads}");
                let (worlds_t, est_t, hw_t) = run_once(mode, threads, seed, 0.05);
                assert_eq!(worlds_1, worlds_t, "{what}: worlds consumed differ");
                // Count-valued accumulators: bit-identical across threads.
                assert_eq!(
                    est_1.probability_connected.to_bits(),
                    est_t.probability_connected.to_bits(),
                    "{what}"
                );
                assert_eq!(
                    est_1.expected_components.to_bits(),
                    est_t.expected_components.to_bits(),
                    "{what}"
                );
                assert_eq!(est_1.num_worlds, est_t.num_worlds, "{what}");
                // The pooled stopping statistics are replayed in world
                // order, so even the achieved half-width is bit-identical.
                assert_eq!(hw_1.to_bits(), hw_t.to_bits(), "{what}");
            }
            // The run actually stopped early (the whole point).
            assert!(worlds_1 < 100_000, "{mode:?} seed {seed}: never stopped");
            assert!(hw_1 <= 0.05, "{mode:?} seed {seed}: loose stop");
        }
    }
}

#[test]
fn tighter_epsilon_needs_at_least_as_many_worlds() {
    for seed in SEEDS {
        let (loose, _, _) = run_once(SampleMethod::Skip, 1, seed, 0.1);
        let (tight, _, _) = run_once(SampleMethod::Skip, 1, seed, 0.02);
        assert!(
            tight >= loose,
            "seed {seed}: ε=0.02 used {tight} < ε=0.1's {loose}"
        );
    }
}

#[test]
fn max_worlds_caps_the_run() {
    let g = fixture();
    let mc = MonteCarlo::worlds(100_000)
        .with_method(SampleMethod::Skip)
        // Unreachable target, tiny cap (not a multiple of the epoch).
        .with_precision(Precision::new(1e-9).with_epoch(64).with_max_worlds(100));
    let mut batch = QueryBatch::new(&g, &mc);
    let handle = batch.register(ConnectivityObserver::new(&g));
    let mut rng = SmallRng::seed_from_u64(7);
    let mut results = batch.run(&mut rng);
    let report = *results.adaptive().unwrap();
    assert_eq!(report.worlds_used, 100);
    assert_eq!(report.stopped, StopReason::BudgetExhausted);
    assert_eq!(results.take(handle).num_worlds, 100);
}

#[test]
fn an_expired_deadline_stops_before_the_first_epoch() {
    // An already-expired deadline (deadline_ms = 0) must not charge a full
    // epoch of sampling: the run stops deterministically with zero worlds,
    // pristine observers, and no RNG state beyond the single seed draw —
    // on every thread count.
    let g = fixture();
    for threads in [1, 4] {
        let mc = MonteCarlo::worlds(100_000)
            .with_method(SampleMethod::Skip)
            .with_threads(threads)
            .with_precision(
                Precision::new(1e-9)
                    .with_epoch(64)
                    .with_deadline(Duration::ZERO),
            );
        let mut batch = QueryBatch::new(&g, &mc);
        let handle = batch.register(EdgeFrequencyObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(7);
        let mut results = batch.run(&mut rng);
        let report = *results.adaptive().unwrap();
        assert_eq!(report.stopped, StopReason::DeadlineExpired);
        assert_eq!(report.worlds_used, 0, "threads {threads}: no epoch paid");
        assert_eq!(report.epochs, 0);
        assert!(report.half_width.is_infinite());
        assert_eq!(results.take(handle), vec![0.0; g.num_edges()]);
    }
}

#[test]
fn untracked_observers_ride_along_to_the_full_budget() {
    // PageRank exposes no tracked statistic: alone, it cannot converge the
    // rule, so the run exhausts its (small) budget.
    let g = fixture();
    let mc = MonteCarlo::worlds(200)
        .with_method(SampleMethod::Skip)
        .with_precision(Precision::new(0.05).with_epoch(64));
    let mut batch = QueryBatch::new(&g, &mc);
    let handle = batch.register(PageRankObserver::new(&g));
    let mut rng = SmallRng::seed_from_u64(5);
    let mut results = batch.run(&mut rng);
    let report = *results.adaptive().unwrap();
    assert_eq!(report.stopped, StopReason::BudgetExhausted);
    assert_eq!(report.worlds_used, 200);
    assert_eq!(report.tracked, 0);
    assert!(report.half_width.is_infinite());
    let scores = results.take(handle);
    assert_eq!(scores.len(), 10);
}

#[test]
fn adaptive_runs_share_the_fixed_driver_world_stream() {
    // An adaptive run that exhausts its budget consumed exactly the worlds
    // a fixed-budget run of that size samples: same seed ⇒ count observers
    // agree bit for bit.
    let g = fixture();
    for mode in MODES {
        let seed = 99;
        let worlds = 256;
        let fixed = {
            let mc = MonteCarlo::worlds(worlds).with_method(mode);
            let mut batch = QueryBatch::new(&g, &mc);
            let handle = batch.register(EdgeFrequencyObserver::new(&g));
            let mut rng = SmallRng::seed_from_u64(seed);
            batch.run(&mut rng).take(handle)
        };
        let adaptive = {
            let mc = MonteCarlo::worlds(worlds)
                .with_method(mode)
                .with_precision(Precision::new(1e-9).with_epoch(64));
            let mut batch = QueryBatch::new(&g, &mc);
            let handle = batch.register(EdgeFrequencyObserver::new(&g));
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut results = batch.run(&mut rng);
            assert_eq!(results.adaptive().unwrap().worlds_used, worlds);
            results.take(handle)
        };
        for (i, (a, b)) in adaptive.iter().zip(fixed.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{mode:?} edge {i}: {a} vs {b}");
        }
    }
}

#[test]
fn a_raised_cancel_flag_aborts_at_the_first_epoch_checkpoint() {
    // Cooperative cancellation: the flag is consulted at epoch barriers
    // only (after convergence, budget and deadline), so a pre-raised flag
    // still pays exactly one epoch — deterministically, on every thread
    // count — and the observers reflect that epoch's worlds.
    use std::sync::atomic::{AtomicBool, Ordering};
    let g = fixture();
    let engine = WorldEngine::new(&g);
    let precision = Precision::new(1e-9).with_epoch(64);
    for threads in [1, 4] {
        let cancel = AtomicBool::new(true);
        let (observers, report) = run_adaptive_cancellable(
            &engine,
            vec![BoxedObserver::new(ConnectivityObserver::new(&g))],
            100_000,
            threads,
            7,
            &precision,
            Some(&cancel),
        );
        assert_eq!(report.stopped, StopReason::Cancelled, "threads {threads}");
        assert_eq!(report.worlds_used, 64, "threads {threads}");
        assert_eq!(report.epochs, 1);
        assert_eq!(observers.len(), 1);
        assert!(cancel.load(Ordering::SeqCst), "flag is caller-owned");
    }
    // An unraised flag changes nothing: bit-identical to the plain driver.
    let cancel = AtomicBool::new(false);
    let (_, cancellable) = run_adaptive_cancellable(
        &engine,
        vec![BoxedObserver::new(ConnectivityObserver::new(&g))],
        100_000,
        1,
        7,
        &Precision::new(0.05).with_epoch(64),
        Some(&cancel),
    );
    let (_, plain) = run_adaptive_merged(
        &engine,
        vec![BoxedObserver::new(ConnectivityObserver::new(&g))],
        100_000,
        1,
        7,
        &Precision::new(0.05).with_epoch(64),
    );
    assert_eq!(cancellable, plain);
}

#[test]
fn fixed_budget_batches_ignore_precision_free_rng_discipline() {
    // Precision or not, run() draws exactly one u64 when there is work.
    let g = fixture();
    let mc = MonteCarlo::worlds(128).with_precision(Precision::new(0.5));
    let mut batch = QueryBatch::new(&g, &mc);
    let _ = batch.register(ConnectivityObserver::new(&g));
    let mut rng = SmallRng::seed_from_u64(13);
    batch.run(&mut rng);
    let mut expected = SmallRng::seed_from_u64(13);
    expected.gen::<u64>();
    assert_eq!(rng.gen::<u64>(), expected.gen::<u64>());
}

#[test]
fn sharded_adaptive_batches_agree_with_monolithic_ones() {
    // The adaptive driver is generic over WorldSource: a sharded source
    // replays the same edge stream, so worlds consumed AND count results
    // match the monolithic run bit for bit.
    use uncertain_graph::GraphPartition;
    let g = fixture();
    let partition = GraphPartition::contiguous(&g, 2).unwrap();
    let seed = 31;
    let run_mono = || {
        let mc = MonteCarlo::worlds(100_000)
            .with_method(SampleMethod::Skip)
            .with_precision(Precision::new(0.05).with_epoch(64));
        let mut batch = QueryBatch::new(&g, &mc);
        let handle = batch.register(ConnectivityObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut results = batch.run(&mut rng);
        let report = *results.adaptive().unwrap();
        (report.worlds_used, results.take(handle))
    };
    let run_sharded = |threads: usize| {
        let engine = ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::Skip);
        let mut batch = QueryBatch::from_sharded(&engine, 100_000, threads)
            .with_precision(Precision::new(0.05).with_epoch(64));
        let handle = batch.register(ConnectivityObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut results = batch.run(&mut rng);
        let report = *results.adaptive().unwrap();
        (report.worlds_used, results.take(handle))
    };
    let (mono_worlds, mono) = run_mono();
    for threads in [1, 3] {
        let (sharded_worlds, sharded) = run_sharded(threads);
        assert_eq!(mono_worlds, sharded_worlds, "threads {threads}");
        assert_eq!(
            mono.probability_connected.to_bits(),
            sharded.probability_connected.to_bits(),
            "threads {threads}"
        );
    }
}
