//! Parity suite: every query ported onto the batch driver must be
//! **bit-identical** to the legacy standalone path for sequential runs on
//! the same seed, in both Skip and PerEdge sampling modes.
//!
//! The legacy path is reconstructed here on top of [`MonteCarlo::accumulate`]
//! with the exact pre-batch kernels and post-processing (this is what the
//! query functions compiled to before the port), so any drift in the batch
//! driver's RNG consumption, accumulation order or finalisation arithmetic
//! fails these tests exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::UncertainGraph;

use graph_algos::clustering::local_clustering_coefficients;
use graph_algos::pagerank::{pagerank, PageRankConfig};
use graph_algos::traversal::{bfs_distances, connected_components};
use ugs_queries::prelude::*;

const SEEDS: [u64; 3] = [1, 0xDEAD_BEEF, 9_999_999_999];
const MODES: [SampleMethod; 2] = [SampleMethod::Skip, SampleMethod::PerEdge];

fn fixture() -> UncertainGraph {
    // Mixed probability regime: plateaus for the skip sampler's exact fast
    // path, heterogeneous tails for the thinning path, one certain edge.
    UncertainGraph::from_edges(
        10,
        [
            (0, 1, 0.9),
            (1, 2, 0.8),
            (2, 3, 0.7),
            (3, 4, 0.6),
            (4, 5, 0.5),
            (5, 6, 0.4),
            (6, 7, 0.3),
            (7, 8, 0.2),
            (8, 9, 0.1),
            (9, 0, 1.0),
            (0, 5, 0.25),
            (1, 6, 0.25),
            (2, 7, 0.25),
            (3, 8, 0.05),
        ],
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Legacy reconstructions (the exact pre-batch implementations).
// ---------------------------------------------------------------------------

fn legacy_expected_pagerank<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.num_vertices();
    if mc.num_worlds == 0 || n == 0 {
        return vec![0.0; n];
    }
    let config = PageRankConfig::default();
    let totals = mc.accumulate(g, n, rng, |world, acc| {
        let pr = pagerank(world, &config);
        for (a, p) in acc.iter_mut().zip(pr.iter()) {
            *a += p;
        }
    });
    totals
        .into_iter()
        .map(|x| x / mc.num_worlds as f64)
        .collect()
}

fn legacy_expected_clustering<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.num_vertices();
    let totals = mc.accumulate(g, n, rng, |world, acc| {
        let cc = local_clustering_coefficients(world);
        for (a, c) in acc.iter_mut().zip(cc.iter()) {
            *a += c;
        }
    });
    totals
        .into_iter()
        .map(|x| x / mc.num_worlds as f64)
        .collect()
}

fn legacy_pair_queries<R: Rng + ?Sized>(
    g: &UncertainGraph,
    pairs: &[(usize, usize)],
    mc: &MonteCarlo,
    rng: &mut R,
) -> PairQueryResult {
    let num_pairs = pairs.len();
    let mut by_source: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for (idx, &(u, _)) in pairs.iter().enumerate() {
        by_source.entry(u).or_default().push(idx);
    }
    let sources: Vec<(usize, Vec<usize>)> = {
        let mut s: Vec<_> = by_source.into_iter().collect();
        s.sort_by_key(|&(src, _)| src);
        s
    };
    let totals = mc.accumulate(g, 2 * num_pairs, rng, |world, acc| {
        let (labels, _) = connected_components(world);
        let (distance_acc, connected_acc) = acc.split_at_mut(num_pairs);
        for (source, pair_indices) in &sources {
            let any_connected = pair_indices
                .iter()
                .any(|&idx| labels[pairs[idx].0] == labels[pairs[idx].1]);
            if !any_connected {
                continue;
            }
            let dist = bfs_distances(world, *source);
            for &idx in pair_indices {
                let (u, v) = pairs[idx];
                if labels[u] == labels[v] {
                    connected_acc[idx] += 1.0;
                    distance_acc[idx] += dist[v] as f64;
                }
            }
        }
    });
    let mut mean_distance = Vec::with_capacity(num_pairs);
    let mut reliability = Vec::with_capacity(num_pairs);
    let mut connected_worlds = Vec::with_capacity(num_pairs);
    for idx in 0..num_pairs {
        let connected = totals[num_pairs + idx];
        connected_worlds.push(connected as usize);
        reliability.push(connected / mc.num_worlds as f64);
        if connected > 0.0 {
            mean_distance.push(totals[idx] / connected);
        } else {
            mean_distance.push(f64::NAN);
        }
    }
    PairQueryResult {
        pairs: pairs.to_vec(),
        mean_distance,
        reliability,
        connected_worlds,
        num_worlds: mc.num_worlds,
    }
}

fn legacy_connectivity<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> ConnectivityEstimate {
    let n = g.num_vertices();
    let totals = mc.accumulate(g, 4, rng, |world, acc| {
        let (labels, count) = connected_components(world);
        let mut sizes = vec![0usize; count];
        for &label in &labels {
            sizes[label] += 1;
        }
        let largest = sizes.iter().copied().max().unwrap_or(0);
        let isolated = (0..world.num_vertices())
            .filter(|&u| world.degree(u) == 0)
            .count();
        acc[0] += count as f64;
        acc[1] += largest as f64;
        acc[2] += f64::from(count == 1);
        acc[3] += isolated as f64 / n as f64;
    });
    let w = mc.num_worlds as f64;
    ConnectivityEstimate {
        expected_components: totals[0] / w,
        expected_largest_component: totals[1] / w,
        probability_connected: totals[2] / w,
        expected_isolated_fraction: totals[3] / w,
        num_worlds: mc.num_worlds,
    }
}

fn legacy_degree_histogram<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.num_vertices();
    let max_degree = (0..n).map(|u| g.degree(u)).max().unwrap_or(0);
    let totals = mc.accumulate(g, max_degree + 1, rng, |world, acc| {
        for u in 0..world.num_vertices() {
            acc[world.degree(u)] += 1.0;
        }
    });
    let mut histogram: Vec<f64> = totals
        .into_iter()
        .map(|x| x / mc.num_worlds as f64)
        .collect();
    while histogram.len() > 1 && histogram.last() == Some(&0.0) {
        histogram.pop();
    }
    histogram
}

fn legacy_knn<R: Rng + ?Sized>(
    g: &UncertainGraph,
    source: usize,
    k: usize,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<Neighbor> {
    let n = g.num_vertices();
    let totals = mc.accumulate(g, 2 * n, rng, |world, acc| {
        let dist = bfs_distances(world, source);
        let (distance_acc, reach_acc) = acc.split_at_mut(n);
        for (v, &d) in dist.iter().enumerate() {
            if v != source && d != usize::MAX {
                distance_acc[v] += d as f64;
                reach_acc[v] += 1.0;
            }
        }
    });
    let mut neighbors: Vec<Neighbor> = (0..n)
        .filter(|&v| v != source && totals[n + v] > 0.0)
        .map(|v| Neighbor {
            vertex: v,
            expected_distance: totals[v] / totals[n + v],
            reachability: totals[n + v] / mc.num_worlds as f64,
        })
        .collect();
    neighbors.sort_by(|a, b| {
        a.expected_distance
            .partial_cmp(&b.expected_distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.reachability
                    .partial_cmp(&a.reachability)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.vertex.cmp(&b.vertex))
    });
    neighbors.truncate(k);
    neighbors
}

// ---------------------------------------------------------------------------
// Bit-identity assertions (sequential, both modes, several seeds).
// ---------------------------------------------------------------------------

fn sequential(mode: SampleMethod) -> MonteCarlo {
    MonteCarlo::worlds(400).with_method(mode)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x} vs {y} differ bitwise"
        );
    }
}

#[test]
fn expected_pagerank_is_bit_identical_to_the_legacy_path() {
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            let mc = sequential(mode);
            let mut rng_new = SmallRng::seed_from_u64(seed);
            let new = expected_pagerank(&g, &mc, &mut rng_new);
            let mut rng_old = SmallRng::seed_from_u64(seed);
            let old = legacy_expected_pagerank(&g, &mc, &mut rng_old);
            assert_bits_eq(&new, &old, &format!("pagerank {mode:?} seed {seed}"));
            // Both paths consumed exactly one u64 draw from the caller RNG.
            assert_eq!(rng_new.gen::<u64>(), rng_old.gen::<u64>());
        }
    }
}

#[test]
fn expected_clustering_is_bit_identical_to_the_legacy_path() {
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            let mc = sequential(mode);
            let mut rng_new = SmallRng::seed_from_u64(seed);
            let new = expected_clustering_coefficients(&g, &mc, &mut rng_new);
            let mut rng_old = SmallRng::seed_from_u64(seed);
            let old = legacy_expected_clustering(&g, &mc, &mut rng_old);
            assert_bits_eq(&new, &old, &format!("clustering {mode:?} seed {seed}"));
        }
    }
}

#[test]
fn pair_queries_are_bit_identical_to_the_legacy_path() {
    let g = fixture();
    let pairs = [(0, 4), (0, 9), (3, 8), (5, 1), (2, 2)];
    for mode in MODES {
        for seed in SEEDS {
            let mc = sequential(mode);
            let mut rng_new = SmallRng::seed_from_u64(seed);
            let new = pair_queries(&g, &pairs, &mc, &mut rng_new);
            let mut rng_old = SmallRng::seed_from_u64(seed);
            let old = legacy_pair_queries(&g, &pairs, &mc, &mut rng_old);
            let what = format!("pairs {mode:?} seed {seed}");
            assert_eq!(new.pairs, old.pairs, "{what}");
            assert_eq!(new.connected_worlds, old.connected_worlds, "{what}");
            assert_eq!(new.num_worlds, old.num_worlds, "{what}");
            assert_bits_eq(&new.reliability, &old.reliability, &what);
            // NaN-aware bitwise comparison for the mean distances.
            for (x, y) in new.mean_distance.iter().zip(old.mean_distance.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
            }
        }
    }
}

#[test]
fn connectivity_query_is_bit_identical_to_the_legacy_path() {
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            let mc = sequential(mode);
            let mut rng_new = SmallRng::seed_from_u64(seed);
            let new = connectivity_query(&g, &mc, &mut rng_new);
            let mut rng_old = SmallRng::seed_from_u64(seed);
            let old = legacy_connectivity(&g, &mc, &mut rng_old);
            let what = format!("connectivity {mode:?} seed {seed}");
            assert_bits_eq(
                &[
                    new.expected_components,
                    new.expected_largest_component,
                    new.probability_connected,
                    new.expected_isolated_fraction,
                ],
                &[
                    old.expected_components,
                    old.expected_largest_component,
                    old.probability_connected,
                    old.expected_isolated_fraction,
                ],
                &what,
            );
            assert_eq!(new.num_worlds, old.num_worlds, "{what}");
        }
    }
}

#[test]
fn degree_histogram_is_bit_identical_to_the_legacy_path() {
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            let mc = sequential(mode);
            let mut rng_new = SmallRng::seed_from_u64(seed);
            let new = ugs_queries::expected_degree_histogram(&g, &mc, &mut rng_new);
            let mut rng_old = SmallRng::seed_from_u64(seed);
            let old = legacy_degree_histogram(&g, &mc, &mut rng_old);
            assert_bits_eq(&new, &old, &format!("histogram {mode:?} seed {seed}"));
        }
    }
}

#[test]
fn knn_is_bit_identical_to_the_legacy_path() {
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            let mc = sequential(mode);
            let mut rng_new = SmallRng::seed_from_u64(seed);
            let new = k_nearest_neighbors(&g, 0, 5, &mc, &mut rng_new);
            let mut rng_old = SmallRng::seed_from_u64(seed);
            let old = legacy_knn(&g, 0, 5, &mc, &mut rng_old);
            let what = format!("knn {mode:?} seed {seed}");
            assert_eq!(new.len(), old.len(), "{what}");
            for (a, b) in new.iter().zip(old.iter()) {
                assert_eq!(a.vertex, b.vertex, "{what}");
                assert_eq!(
                    a.expected_distance.to_bits(),
                    b.expected_distance.to_bits(),
                    "{what}"
                );
                assert_eq!(a.reachability.to_bits(), b.reachability.to_bits(), "{what}");
            }
        }
    }
}

#[test]
fn auto_mode_matches_its_resolved_mode_bit_for_bit() {
    // Auto must be a pure dispatch: identical to whichever concrete mode it
    // resolves to (Skip here: the fixture's mean probability is ~0.45).
    let g = fixture();
    let mut rng_auto = SmallRng::seed_from_u64(77);
    let auto = expected_pagerank(&g, &sequential(SampleMethod::Auto), &mut rng_auto);
    let mut rng_skip = SmallRng::seed_from_u64(77);
    let skip = expected_pagerank(&g, &sequential(SampleMethod::Skip), &mut rng_skip);
    assert_bits_eq(&auto, &skip, "auto vs skip");
}
