//! Sharded-vs-monolithic parity suite: the count observers
//! (`EdgeFrequency`, `DegreeHistogram`, `PairQueries`, `Connectivity`)
//! must produce **bit-identical** results when the batch samples through a
//! [`ShardedWorldEngine`] instead of the monolithic engine — for every
//! shard count, every thread count, every sampling mode and several seeds.
//!
//! This is the acceptance contract of the graph-sharded redesign: the
//! sharded engine replays the monolithic full-graph edge stream and only
//! *scatters* the present edges (per-shard worlds + boundary pass), and the
//! cut corrections (global-id remapping, cut-degree addition, DSU component
//! gluing, ghost-hop BFS) reconstruct exactly the monolithic per-world
//! integers.  Any drift — one RNG draw, one missed cut edge, one off-by-one
//! in the remapping — fails these tests bitwise.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_graph::{GraphPartition, UncertainGraph};

use ugs_queries::prelude::*;
use ugs_queries::ShardedWorldEngine;

const SEEDS: [u64; 3] = [1, 0xDEAD_BEEF, 9_999_999_999];
const MODES: [SampleMethod; 3] = [
    SampleMethod::Skip,
    SampleMethod::PerEdge,
    SampleMethod::Auto,
];
const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 3] = [1, 2, 4];
const WORLDS: usize = 200;

/// Mixed-probability fixture: two dense clusters, a sparse ring through all
/// vertices, long chords crossing any contiguous split, a certain edge and
/// a pendant vertex (exercises isolated-vertex accounting).
fn fixture() -> UncertainGraph {
    let n = 24usize;
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    // Ring with a probability plateau (skip sampler fast path) and tails.
    for u in 0..n - 1 {
        let p = if u % 3 == 0 {
            0.25
        } else {
            0.1 + 0.05 * (u % 7) as f64
        };
        edges.push((u, u + 1, p));
    }
    edges.push((n - 1, 0, 1.0));
    // Two dense clusters.
    for u in 0..5 {
        for v in (u + 1)..5 {
            edges.push((u, v, 0.6));
        }
    }
    for u in 12..17 {
        for v in (u + 1)..17 {
            edges.push((u, v, 0.45));
        }
    }
    // Long chords that cross every contiguous cut.
    edges.push((2, 19, 0.3));
    edges.push((4, 21, 0.2));
    edges.push((7, 15, 0.35));
    edges.push((0, 12, 0.15));
    // Deduplicate (clusters overlap the ring edges).
    edges.sort_by_key(|&(u, v, _)| (u.min(v), u.max(v)));
    edges.dedup_by_key(|&mut (u, v, _)| (u.min(v), u.max(v)));
    UncertainGraph::from_edges(n, edges).unwrap()
}

/// The pair list shared by all runs: same-source groups, cross-cluster and
/// intra-cluster pairs, plus one pair that is frequently disconnected.
fn pairs() -> Vec<(usize, usize)> {
    vec![(0, 4), (0, 16), (0, 23), (7, 15), (7, 8), (20, 3)]
}

struct Results {
    frequencies: Vec<f64>,
    histogram: Vec<f64>,
    pair: PairQueryResult,
    connectivity: ConnectivityEstimate,
}

fn run_monolithic(g: &UncertainGraph, mode: SampleMethod, threads: usize, seed: u64) -> Results {
    let mc = MonteCarlo::worlds(WORLDS)
        .with_method(mode)
        .with_threads(threads);
    let mut batch = QueryBatch::new(g, &mc);
    let h_freq = batch.register(EdgeFrequencyObserver::new(g));
    let h_hist = batch.register(DegreeHistogramObserver::new(g));
    let h_pair = batch.register(PairQueriesObserver::new(&pairs()));
    let h_conn = batch.register(ConnectivityObserver::new(g));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut results = batch.run(&mut rng);
    Results {
        frequencies: results.take(h_freq),
        histogram: results.take(h_hist),
        pair: results.take(h_pair),
        connectivity: results.take(h_conn),
    }
}

fn run_sharded(
    g: &UncertainGraph,
    partition: &GraphPartition,
    mode: SampleMethod,
    threads: usize,
    seed: u64,
) -> Results {
    let engine = ShardedWorldEngine::new(g, partition).with_method(mode);
    let mut batch = QueryBatch::from_sharded(&engine, WORLDS, threads);
    let h_freq = batch.register(EdgeFrequencyObserver::new(g));
    let h_hist = batch.register(DegreeHistogramObserver::new(g));
    let h_pair = batch.register(PairQueriesObserver::new(&pairs()));
    let h_conn = batch.register(ConnectivityObserver::new(g));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut results = batch.run(&mut rng);
    Results {
        frequencies: results.take(h_freq),
        histogram: results.take(h_hist),
        pair: results.take(h_pair),
        connectivity: results.take(h_conn),
    }
}

/// Bitwise f64 slice equality (NaN-tolerant: a never-connected pair has a
/// NaN mean distance on both sides).
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str, context: &str) {
    assert_eq!(a.len(), b.len(), "{what} length ({context})");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x} vs {y} ({context})"
        );
    }
}

fn assert_results_eq(a: &Results, b: &Results, context: &str) {
    assert_bits_eq(&a.frequencies, &b.frequencies, "edge frequencies", context);
    assert_bits_eq(&a.histogram, &b.histogram, "degree histogram", context);
    assert_eq!(a.pair.pairs, b.pair.pairs, "pair list ({context})");
    assert_bits_eq(
        &a.pair.mean_distance,
        &b.pair.mean_distance,
        "mean distance",
        context,
    );
    assert_bits_eq(
        &a.pair.reliability,
        &b.pair.reliability,
        "reliability",
        context,
    );
    assert_eq!(
        a.pair.connected_worlds, b.pair.connected_worlds,
        "connected worlds ({context})"
    );
    assert_eq!(a.pair.num_worlds, b.pair.num_worlds, "worlds ({context})");
    let (ca, cb) = (&a.connectivity, &b.connectivity);
    assert_bits_eq(
        &[
            ca.expected_components,
            ca.expected_largest_component,
            ca.probability_connected,
            ca.expected_isolated_fraction,
        ],
        &[
            cb.expected_components,
            cb.expected_largest_component,
            cb.probability_connected,
            cb.expected_isolated_fraction,
        ],
        "connectivity estimate",
        context,
    );
}

#[test]
fn count_observers_are_bit_identical_sharded_vs_monolithic() {
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            for threads in THREADS {
                let monolithic = run_monolithic(&g, mode, threads, seed);
                for shards in SHARDS {
                    let partition = GraphPartition::contiguous(&g, shards).unwrap();
                    let sharded = run_sharded(&g, &partition, mode, threads, seed);
                    assert_results_eq(
                        &monolithic,
                        &sharded,
                        &format!("{mode:?} seed={seed} threads={threads} shards={shards}"),
                    );
                }
            }
        }
    }
}

#[test]
fn parity_holds_for_arbitrary_labellings() {
    // Interleaved labels maximise the cut; every ring edge crosses shards.
    let g = fixture();
    let labels: Vec<usize> = (0..g.num_vertices()).map(|v| v % 3).collect();
    let partition = GraphPartition::from_labels(&g, &labels, 3).unwrap();
    for mode in MODES {
        for seed in SEEDS {
            let monolithic = run_monolithic(&g, mode, 2, seed);
            let sharded = run_sharded(&g, &partition, mode, 2, seed);
            assert_results_eq(
                &monolithic,
                &sharded,
                &format!("interleaved {mode:?} seed={seed}"),
            );
        }
    }
}

#[test]
fn count_results_are_invariant_over_the_whole_grid() {
    // Fields derived from integer counts are exactly invariant over the
    // full (shards × threads) grid — compare everything against the
    // sequential monolithic reference.  (The isolated-vertex *fraction*
    // accumulates a non-integer addend per world, so — exactly as in the
    // monolithic batch driver — it is only bit-stable at a fixed thread
    // count, which the parity test above already enforces.)
    let g = fixture();
    for mode in MODES {
        for seed in SEEDS {
            let reference = run_monolithic(&g, mode, 1, seed);
            for shards in SHARDS {
                let partition = GraphPartition::contiguous(&g, shards).unwrap();
                for threads in THREADS {
                    let sharded = run_sharded(&g, &partition, mode, threads, seed);
                    let context = format!("{mode:?} seed={seed} shards={shards} threads={threads}");
                    assert_bits_eq(
                        &reference.frequencies,
                        &sharded.frequencies,
                        "edge frequencies",
                        &context,
                    );
                    assert_bits_eq(
                        &reference.histogram,
                        &sharded.histogram,
                        "degree histogram",
                        &context,
                    );
                    assert_bits_eq(
                        &reference.pair.mean_distance,
                        &sharded.pair.mean_distance,
                        "mean distance",
                        &context,
                    );
                    assert_bits_eq(
                        &reference.pair.reliability,
                        &sharded.pair.reliability,
                        "reliability",
                        &context,
                    );
                    assert_eq!(
                        reference.pair.connected_worlds, sharded.pair.connected_worlds,
                        "connected worlds ({context})"
                    );
                    assert_bits_eq(
                        &[
                            reference.connectivity.expected_components,
                            reference.connectivity.expected_largest_component,
                            reference.connectivity.probability_connected,
                        ],
                        &[
                            sharded.connectivity.expected_components,
                            sharded.connectivity.expected_largest_component,
                            sharded.connectivity.probability_connected,
                        ],
                        "connectivity counts",
                        &context,
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_batches_consume_exactly_one_rng_draw() {
    use rand::Rng;
    let g = fixture();
    let partition = GraphPartition::contiguous(&g, 2).unwrap();
    let engine = ShardedWorldEngine::new(&g, &partition);
    let mut batch = QueryBatch::from_sharded(&engine, 50, 4);
    let _ = batch.register(EdgeFrequencyObserver::new(&g));
    let mut rng = SmallRng::seed_from_u64(11);
    batch.run(&mut rng);
    let mut expected = SmallRng::seed_from_u64(11);
    expected.gen::<u64>();
    assert_eq!(rng.gen::<u64>(), expected.gen::<u64>());
}

#[test]
fn zero_world_sharded_batches_finalise_empty() {
    let g = fixture();
    let partition = GraphPartition::contiguous(&g, 3).unwrap();
    let engine = ShardedWorldEngine::new(&g, &partition);
    let mut batch = QueryBatch::from_sharded(&engine, 0, 2);
    let handle = batch.register(EdgeFrequencyObserver::new(&g));
    let mut rng = SmallRng::seed_from_u64(2);
    let mut results = batch.run(&mut rng);
    assert_eq!(results.take(handle), vec![0.0; g.num_edges()]);
}

/// A probe with no sharded path at all (the built-in observers now all
/// have one — cut correction or ghost halo — so the rejection seam needs a
/// dedicated monolithic-only observer to stay covered).
#[derive(Debug, Clone)]
struct MonolithicProbe;

impl WorldObserver for MonolithicProbe {
    type Output = ();

    fn observe(&mut self, _world: &WorldScratch) {}

    fn merge(&mut self, _other: Self) {}

    fn finalize(self, _num_worlds: usize) {}
}

#[test]
#[should_panic(expected = "no sharded path")]
fn monolithic_only_observers_cannot_register_with_a_sharded_batch() {
    let g = fixture();
    let partition = GraphPartition::contiguous(&g, 2).unwrap();
    let engine = ShardedWorldEngine::new(&g, &partition);
    let mut batch = QueryBatch::from_sharded(&engine, 10, 1);
    let _ = batch.register(MonolithicProbe);
}

// ---------------------------------------------------------------------------
// Halo kernels: PageRank, clustering coefficients, k-NN.
// ---------------------------------------------------------------------------

/// The halo grid from the issue: {Skip, PerEdge} × 3 seeds × shards
/// {1, 2, 4} × threads {1, 2, 4}.  (`Auto` resolves to one of the two
/// explicit modes, so it adds no new code path here.)
const HALO_MODES: [SampleMethod; 2] = [SampleMethod::Skip, SampleMethod::PerEdge];
const HALO_WORLDS: usize = 120;

struct HaloResults {
    pagerank: Vec<f64>,
    clustering: Vec<f64>,
    knn: Vec<Neighbor>,
}

const KNN_SOURCE: usize = 7;
const KNN_K: usize = 10;

fn run_halo_monolithic(
    g: &UncertainGraph,
    mode: SampleMethod,
    threads: usize,
    seed: u64,
) -> HaloResults {
    let mc = MonteCarlo::worlds(HALO_WORLDS)
        .with_method(mode)
        .with_threads(threads);
    let mut batch = QueryBatch::new(g, &mc);
    let h_pr = batch.register(PageRankObserver::new(g));
    let h_cc = batch.register(ClusteringObserver::new(g));
    let h_knn = batch.register(KnnObserver::new(g, KNN_SOURCE, KNN_K));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut results = batch.run(&mut rng);
    HaloResults {
        pagerank: results.take(h_pr),
        clustering: results.take(h_cc),
        knn: results.take(h_knn),
    }
}

fn run_halo_sharded(
    g: &UncertainGraph,
    partition: &GraphPartition,
    mode: SampleMethod,
    threads: usize,
    seed: u64,
) -> HaloResults {
    let engine = ShardedWorldEngine::new(g, partition).with_method(mode);
    let mut batch = QueryBatch::from_sharded(&engine, HALO_WORLDS, threads);
    let h_pr = batch.register(PageRankObserver::new(g));
    let h_cc = batch.register(ClusteringObserver::new(g));
    let h_knn = batch.register(KnnObserver::new(g, KNN_SOURCE, KNN_K));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut results = batch.run(&mut rng);
    HaloResults {
        pagerank: results.take(h_pr),
        clustering: results.take(h_cc),
        knn: results.take(h_knn),
    }
}

fn assert_halo_results_eq(a: &HaloResults, b: &HaloResults, context: &str) {
    assert_bits_eq(&a.pagerank, &b.pagerank, "pagerank", context);
    assert_bits_eq(&a.clustering, &b.clustering, "clustering", context);
    assert_eq!(a.knn.len(), b.knn.len(), "knn length ({context})");
    for (i, (x, y)) in a.knn.iter().zip(b.knn.iter()).enumerate() {
        assert_eq!(x.vertex, y.vertex, "knn[{i}].vertex ({context})");
        assert_eq!(
            x.expected_distance.to_bits(),
            y.expected_distance.to_bits(),
            "knn[{i}].expected_distance ({context})"
        );
        assert_eq!(
            x.reachability.to_bits(),
            y.reachability.to_bits(),
            "knn[{i}].reachability ({context})"
        );
    }
}

#[test]
fn halo_observers_are_bit_identical_over_the_grid() {
    let g = fixture();
    for mode in HALO_MODES {
        for seed in SEEDS {
            for threads in THREADS {
                let monolithic = run_halo_monolithic(&g, mode, threads, seed);
                for shards in SHARDS {
                    let partition = GraphPartition::contiguous(&g, shards).unwrap();
                    let sharded = run_halo_sharded(&g, &partition, mode, threads, seed);
                    assert_halo_results_eq(
                        &monolithic,
                        &sharded,
                        &format!("{mode:?} seed={seed} threads={threads} shards={shards}"),
                    );
                }
            }
        }
    }
}

#[test]
fn halo_parity_holds_for_arbitrary_labellings() {
    // Interleaved labels maximise the cut and produce non-contiguous
    // shards, so ghost/push index remapping is exercised hard.
    let g = fixture();
    let labels: Vec<usize> = (0..g.num_vertices()).map(|v| v % 3).collect();
    let partition = GraphPartition::from_labels(&g, &labels, 3).unwrap();
    for mode in HALO_MODES {
        for seed in SEEDS {
            let monolithic = run_halo_monolithic(&g, mode, 2, seed);
            let sharded = run_halo_sharded(&g, &partition, mode, 2, seed);
            assert_halo_results_eq(
                &monolithic,
                &sharded,
                &format!("interleaved {mode:?} seed={seed}"),
            );
        }
    }
}
