//! Monte-Carlo world-sampling driver.
//!
//! Sampling a possible world costs one Bernoulli draw per edge, and every
//! query must be evaluated inside every sampled world, so the per-world work
//! dominates query cost.  The driver supports an optional multi-threaded mode
//! (crossbeam scoped threads) in which each thread samples and evaluates its
//! share of the worlds with an independent RNG stream derived from the
//! caller's RNG, so results remain reproducible for a fixed seed and thread
//! count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::{UncertainGraph, WorldSampler};

use graph_algos::DeterministicGraph;

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Number of possible worlds to sample (the paper uses 500 for the
    /// query-quality experiments).
    pub num_worlds: usize,
    /// Number of worker threads; 1 means fully sequential evaluation.
    pub threads: usize,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo { num_worlds: 500, threads: 1 }
    }
}

impl MonteCarlo {
    /// A sequential run over `num_worlds` sampled worlds.
    pub fn worlds(num_worlds: usize) -> Self {
        MonteCarlo { num_worlds, threads: 1 }
    }

    /// Enables multi-threaded evaluation with `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Samples `num_worlds` worlds, materialises each as a
    /// [`DeterministicGraph`] and folds `per_world` over them, summing the
    /// per-world accumulator vectors element-wise.
    ///
    /// `per_world` must return a vector of fixed length `accumulator_len`
    /// (one slot per vertex, per pair, …).  The return value is the
    /// element-wise **sum** over worlds — callers divide by
    /// [`MonteCarlo::num_worlds`] (or by per-slot counters they track
    /// themselves) to obtain averages.
    pub fn accumulate<R, F>(
        &self,
        g: &UncertainGraph,
        accumulator_len: usize,
        rng: &mut R,
        per_world: F,
    ) -> Vec<f64>
    where
        R: Rng + ?Sized,
        F: Fn(&DeterministicGraph, &mut [f64]) + Sync,
    {
        if self.num_worlds == 0 {
            return vec![0.0; accumulator_len];
        }
        if self.threads <= 1 {
            let mut rng = SmallRng::seed_from_u64(rng.gen());
            return accumulate_sequential(g, accumulator_len, self.num_worlds, &mut rng, &per_world);
        }
        // Split the worlds across threads; each thread gets its own RNG
        // stream seeded from the caller's RNG.
        let threads = self.threads.min(self.num_worlds);
        let seeds: Vec<u64> = (0..threads).map(|_| rng.gen()).collect();
        let base = self.num_worlds / threads;
        let extra = self.num_worlds % threads;
        let partials = parking_lot::Mutex::new(vec![vec![0.0; accumulator_len]; threads]);
        crossbeam::thread::scope(|scope| {
            for (idx, &seed) in seeds.iter().enumerate() {
                let worlds = base + usize::from(idx < extra);
                let per_world = &per_world;
                let partials = &partials;
                scope.spawn(move |_| {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let local =
                        accumulate_sequential(g, accumulator_len, worlds, &mut rng, per_world);
                    partials.lock()[idx] = local;
                });
            }
        })
        .expect("worker thread panicked");
        let partials = partials.into_inner();
        let mut total = vec![0.0; accumulator_len];
        for partial in partials {
            for (t, p) in total.iter_mut().zip(partial.iter()) {
                *t += p;
            }
        }
        total
    }
}

fn accumulate_sequential<F>(
    g: &UncertainGraph,
    accumulator_len: usize,
    num_worlds: usize,
    rng: &mut SmallRng,
    per_world: &F,
) -> Vec<f64>
where
    F: Fn(&DeterministicGraph, &mut [f64]),
{
    let sampler = WorldSampler::new();
    let mut total = vec![0.0; accumulator_len];
    let mut scratch = vec![0.0; accumulator_len];
    for _ in 0..num_worlds {
        let world = sampler.sample(g, rng);
        let dg = DeterministicGraph::from_world(g, &world);
        scratch.iter_mut().for_each(|x| *x = 0.0);
        per_world(&dg, &mut scratch);
        for (t, s) in total.iter_mut().zip(scratch.iter()) {
            *t += s;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn accumulate_counts_edge_frequencies() {
        let g = toy();
        let mc = MonteCarlo::worlds(20_000);
        let mut rng = SmallRng::seed_from_u64(1);
        let totals = mc.accumulate(&g, 3, &mut rng, |world, acc| {
            // count presence of each original edge through vertex degrees
            acc[0] += f64::from(world.degree(0) == 1);
            acc[1] += f64::from(world.degree(3) == 1);
            acc[2] += world.num_edges() as f64;
        });
        let freq0 = totals[0] / 20_000.0;
        let freq1 = totals[1] / 20_000.0;
        let mean_edges = totals[2] / 20_000.0;
        assert!((freq0 - 0.5).abs() < 0.02);
        assert!((freq1 - 1.0).abs() < 1e-12);
        assert!((mean_edges - 1.75).abs() < 0.03);
    }

    #[test]
    fn zero_worlds_returns_zero_vector() {
        let g = toy();
        let mc = MonteCarlo::worlds(0);
        let mut rng = SmallRng::seed_from_u64(1);
        let totals = mc.accumulate(&g, 5, &mut rng, |_, _| panic!("must not be called"));
        assert_eq!(totals, vec![0.0; 5]);
    }

    #[test]
    fn parallel_and_sequential_agree_statistically() {
        let g = toy();
        let sequential = MonteCarlo::worlds(8_000);
        let parallel = MonteCarlo::worlds(8_000).with_threads(4);
        let mut rng = SmallRng::seed_from_u64(42);
        let s = sequential.accumulate(&g, 1, &mut rng, |world, acc| {
            acc[0] += world.num_edges() as f64;
        });
        let p = parallel.accumulate(&g, 1, &mut rng, |world, acc| {
            acc[0] += world.num_edges() as f64;
        });
        let mean_s = s[0] / 8_000.0;
        let mean_p = p[0] / 8_000.0;
        assert!((mean_s - mean_p).abs() < 0.05, "{mean_s} vs {mean_p}");
    }

    #[test]
    fn with_threads_clamps_to_at_least_one() {
        let mc = MonteCarlo::worlds(10).with_threads(0);
        assert_eq!(mc.threads, 1);
        assert_eq!(MonteCarlo::default().num_worlds, 500);
    }

    #[test]
    fn same_seed_gives_identical_results_sequentially() {
        let g = toy();
        let mc = MonteCarlo::worlds(100);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            mc.accumulate(&g, 1, &mut rng, |world, acc| acc[0] += world.num_edges() as f64)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
