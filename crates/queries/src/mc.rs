//! Monte-Carlo driver built on the zero-allocation world engine.
//!
//! Every query samples `N` possible worlds and folds a per-world kernel over
//! them.  The driver owes its throughput to two properties of
//! [`crate::engine::WorldEngine`]:
//!
//! * **skip-sampling** — drawing a world costs `O(Σ pₑ)` expected RNG work
//!   instead of one Bernoulli draw per edge, a large win on the low-entropy
//!   sparsified graphs the paper produces;
//! * **scratch reuse** — each world is materialised by compacting into
//!   per-thread scratch buffers, so the sample–materialise cycle performs
//!   zero heap allocations in steady state.
//!
//! Multi-threaded runs use `std::thread::scope`: the worlds are split
//! deterministically across workers, every worker owns its scratch and RNG
//! stream, and partial accumulators are returned from the joined threads
//! (no shared mutable state, no locks).
//!
//! ## Reproducibility
//!
//! `accumulate` draws exactly `min(threads, num_worlds).max(1)` seeds from
//! the caller's RNG with `rng.gen::<u64>()` — one per worker — and nothing
//! else, so the caller RNG advances by that many draws regardless of what
//! the workers do.  For a fixed seed, fixed thread count and fixed sampling
//! method the result is bit-for-bit deterministic.  With
//! [`SampleMethod::PerEdge`] the sequential path is additionally
//! bit-identical to the pre-engine driver (one Bernoulli draw per edge; see
//! [`accumulate_reference`], kept as the regression oracle).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::{UncertainGraph, WorldSampler};

use crate::engine::{SampleMethod, WorldEngine};
use crate::variance::Precision;
use graph_algos::DeterministicGraph;

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarlo {
    /// Number of possible worlds to sample (the paper uses 500 for the
    /// query-quality experiments).
    pub num_worlds: usize,
    /// Number of worker threads; 1 means fully sequential evaluation.
    pub threads: usize,
    /// How worlds are sampled; [`SampleMethod::Auto`] picks skip-sampling
    /// on sparse-probability graphs.
    pub method: SampleMethod,
    /// Optional adaptive-precision target: batch runs built from this
    /// configuration ([`crate::QueryBatch::new`]) stop at the first epoch
    /// where every tracked statistic meets the `(ε, δ)` bound, with
    /// `num_worlds` as the hard budget.  `None` (the default) keeps the
    /// fixed-budget behaviour bit-for-bit.  The legacy
    /// [`MonteCarlo::accumulate`] driver ignores it.
    pub precision: Option<Precision>,
}

impl Default for MonteCarlo {
    /// 500 worlds on all available cores with automatic sampling.
    fn default() -> Self {
        MonteCarlo {
            num_worlds: 500,
            threads: available_threads(),
            method: SampleMethod::Auto,
            precision: None,
        }
    }
}

/// The number of worker threads a parallel run uses by default
/// (`std::thread::available_parallelism`, falling back to 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl MonteCarlo {
    /// A sequential run over `num_worlds` sampled worlds.  Sequential runs
    /// are machine-independent: the same seed yields the same result on any
    /// host (parallel runs are deterministic only for a fixed thread
    /// count).
    pub fn worlds(num_worlds: usize) -> Self {
        MonteCarlo {
            num_worlds,
            threads: 1,
            method: SampleMethod::Auto,
            precision: None,
        }
    }

    /// A run over `num_worlds` worlds on all available cores.
    pub fn parallel(num_worlds: usize) -> Self {
        MonteCarlo {
            num_worlds,
            threads: available_threads(),
            method: SampleMethod::Auto,
            precision: None,
        }
    }

    /// Enables multi-threaded evaluation with `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the world-sampling method.
    pub fn with_method(mut self, method: SampleMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets an adaptive-precision target (see [`MonteCarlo::precision`]).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Samples `num_worlds` worlds through the world engine, materialises
    /// each as a [`DeterministicGraph`] and folds `per_world` over them,
    /// summing the per-world accumulator vectors element-wise.
    ///
    /// `per_world` must return its observations through a vector of fixed
    /// length `accumulator_len` (one slot per vertex, per pair, …).  The
    /// return value is the element-wise **sum** over worlds — callers divide
    /// by [`MonteCarlo::num_worlds`] (or by per-slot counters they track
    /// themselves) to obtain averages.
    ///
    /// The caller RNG advances by exactly `min(threads, num_worlds).max(1)`
    /// `u64` draws — one seed per worker — or zero draws when
    /// `num_worlds == 0`.
    pub fn accumulate<R, F>(
        &self,
        g: &UncertainGraph,
        accumulator_len: usize,
        rng: &mut R,
        per_world: F,
    ) -> Vec<f64>
    where
        R: Rng + ?Sized,
        F: Fn(&DeterministicGraph, &mut [f64]) + Sync,
    {
        if self.num_worlds == 0 {
            return vec![0.0; accumulator_len];
        }
        let engine = WorldEngine::new(g).with_method(self.method);
        let threads = self.threads.clamp(1, self.num_worlds);
        let seeds: Vec<u64> = (0..threads).map(|_| rng.gen::<u64>()).collect();
        if threads == 1 {
            return run_worlds(
                &engine,
                accumulator_len,
                self.num_worlds,
                seeds[0],
                &per_world,
            );
        }
        // Deterministic split: worker `idx` evaluates `base + (idx < extra)`
        // worlds with its own RNG stream, and hands its partial accumulator
        // back through `join` — no shared mutable state.
        let base = self.num_worlds / threads;
        let extra = self.num_worlds % threads;
        let partials: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(idx, &seed)| {
                    let engine = &engine;
                    let per_world = &per_world;
                    let worlds = base + usize::from(idx < extra);
                    scope
                        .spawn(move || run_worlds(engine, accumulator_len, worlds, seed, per_world))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("worker thread panicked"))
                .collect()
        });
        let mut total = vec![0.0; accumulator_len];
        for partial in partials {
            for (t, p) in total.iter_mut().zip(partial.iter()) {
                *t += p;
            }
        }
        total
    }
}

/// One worker's share: its own RNG stream, its own scratch, a local
/// accumulator pair — returned to the caller when the worker joins.
fn run_worlds<F>(
    engine: &WorldEngine<'_>,
    accumulator_len: usize,
    num_worlds: usize,
    seed: u64,
    per_world: &F,
) -> Vec<f64>
where
    F: Fn(&DeterministicGraph, &mut [f64]),
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scratch = engine.make_scratch();
    let mut total = vec![0.0; accumulator_len];
    let mut local = vec![0.0; accumulator_len];
    for _ in 0..num_worlds {
        let world = engine.sample_world(&mut rng, &mut scratch);
        local.iter_mut().for_each(|x| *x = 0.0);
        per_world(world, &mut local);
        for (t, s) in total.iter_mut().zip(local.iter()) {
            *t += s;
        }
    }
    total
}

/// The pre-engine sequential driver: allocates a fresh world mask and a
/// fresh CSR per world (`WorldSampler::sample` +
/// [`DeterministicGraph::from_world`]).
///
/// Kept as the regression oracle and benchmark baseline: for the same seed
/// it must produce bit-identical accumulators to
/// `MonteCarlo::worlds(n).with_method(SampleMethod::PerEdge)`.
pub fn accumulate_reference<R, F>(
    g: &UncertainGraph,
    accumulator_len: usize,
    num_worlds: usize,
    rng: &mut R,
    per_world: F,
) -> Vec<f64>
where
    R: Rng + ?Sized,
    F: Fn(&DeterministicGraph, &mut [f64]),
{
    if num_worlds == 0 {
        return vec![0.0; accumulator_len];
    }
    let mut rng = SmallRng::seed_from_u64(rng.gen::<u64>());
    let sampler = WorldSampler::new();
    let mut total = vec![0.0; accumulator_len];
    let mut local = vec![0.0; accumulator_len];
    for _ in 0..num_worlds {
        let world = sampler.sample(g, &mut rng);
        let dg = DeterministicGraph::from_world(g, &world);
        local.iter_mut().for_each(|x| *x = 0.0);
        per_world(&dg, &mut local);
        for (t, s) in total.iter_mut().zip(local.iter()) {
            *t += s;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn accumulate_counts_edge_frequencies() {
        let g = toy();
        let mc = MonteCarlo::worlds(20_000);
        let mut rng = SmallRng::seed_from_u64(1);
        let totals = mc.accumulate(&g, 3, &mut rng, |world, acc| {
            // count presence of each original edge through vertex degrees
            acc[0] += f64::from(world.degree(0) == 1);
            acc[1] += f64::from(world.degree(3) == 1);
            acc[2] += world.num_edges() as f64;
        });
        let freq0 = totals[0] / 20_000.0;
        let freq1 = totals[1] / 20_000.0;
        let mean_edges = totals[2] / 20_000.0;
        assert!((freq0 - 0.5).abs() < 0.02);
        assert!((freq1 - 1.0).abs() < 1e-12);
        assert!((mean_edges - 1.75).abs() < 0.03);
    }

    #[test]
    fn zero_worlds_returns_zero_vector_without_consuming_rng() {
        let g = toy();
        let mc = MonteCarlo::worlds(0);
        let mut rng = SmallRng::seed_from_u64(1);
        let totals = mc.accumulate(&g, 5, &mut rng, |_, _| panic!("must not be called"));
        assert_eq!(totals, vec![0.0; 5]);
        let mut untouched = SmallRng::seed_from_u64(1);
        assert_eq!(rng.gen::<u64>(), untouched.gen::<u64>());
    }

    #[test]
    fn parallel_and_sequential_agree_statistically() {
        let g = toy();
        let sequential = MonteCarlo::worlds(8_000);
        let parallel = MonteCarlo::worlds(8_000).with_threads(4);
        let mut rng = SmallRng::seed_from_u64(42);
        let s = sequential.accumulate(&g, 1, &mut rng, |world, acc| {
            acc[0] += world.num_edges() as f64;
        });
        let p = parallel.accumulate(&g, 1, &mut rng, |world, acc| {
            acc[0] += world.num_edges() as f64;
        });
        let mean_s = s[0] / 8_000.0;
        let mean_p = p[0] / 8_000.0;
        assert!((mean_s - mean_p).abs() < 0.05, "{mean_s} vs {mean_p}");
    }

    #[test]
    fn with_threads_clamps_to_at_least_one() {
        let mc = MonteCarlo::worlds(10).with_threads(0);
        assert_eq!(mc.threads, 1);
        assert_eq!(MonteCarlo::default().num_worlds, 500);
        assert!(MonteCarlo::default().threads >= 1);
        assert!(MonteCarlo::parallel(10).threads >= 1);
    }

    #[test]
    fn same_seed_gives_identical_results_sequentially() {
        let g = toy();
        for method in [
            SampleMethod::Auto,
            SampleMethod::PerEdge,
            SampleMethod::Skip,
        ] {
            let mc = MonteCarlo::worlds(100).with_method(method);
            let run = |seed: u64| {
                let mut rng = SmallRng::seed_from_u64(seed);
                mc.accumulate(&g, 1, &mut rng, |world, acc| {
                    acc[0] += world.num_edges() as f64
                })
            };
            assert_eq!(run(7), run(7), "{method:?}");
            assert_ne!(run(7), run(8), "{method:?}");
        }
    }

    #[test]
    fn same_seed_and_thread_count_is_deterministic_in_parallel() {
        let g = toy();
        let mc = MonteCarlo::worlds(1_000).with_threads(3);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            mc.accumulate(&g, 4, &mut rng, |world, acc| {
                for (u, slot) in acc.iter_mut().enumerate() {
                    *slot += world.degree(u) as f64;
                }
            })
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn per_edge_mode_is_bit_identical_to_the_reference_driver() {
        // The regression contract of the engine refactor: same seed ⇒ the
        // sequential per-edge path reproduces the pre-engine driver exactly,
        // bit for bit.
        let g = toy();
        let kernel = |world: &DeterministicGraph, acc: &mut [f64]| {
            acc[0] += world.num_edges() as f64;
            for u in 0..world.num_vertices() {
                acc[1] += (world.degree(u) * world.degree(u)) as f64;
            }
        };
        let mut rng_new = SmallRng::seed_from_u64(1234);
        let mc = MonteCarlo::worlds(500).with_method(SampleMethod::PerEdge);
        let new = mc.accumulate(&g, 2, &mut rng_new, kernel);
        let mut rng_old = SmallRng::seed_from_u64(1234);
        let old = accumulate_reference(&g, 2, 500, &mut rng_old, kernel);
        assert_eq!(new, old);
        // Both consumed exactly one seed draw from the caller RNG.
        assert_eq!(rng_new.gen::<u64>(), rng_old.gen::<u64>());
    }

    #[test]
    fn caller_rng_advances_by_exactly_the_worker_count() {
        let g = toy();
        for (threads, num_worlds, expected_draws) in [(1, 50, 1), (4, 50, 4), (8, 3, 3)] {
            let mc = MonteCarlo::worlds(num_worlds).with_threads(threads);
            let mut rng = SmallRng::seed_from_u64(5);
            mc.accumulate(&g, 1, &mut rng, |_, acc| acc[0] += 1.0);
            let mut expected = SmallRng::seed_from_u64(5);
            for _ in 0..expected_draws {
                expected.gen::<u64>();
            }
            assert_eq!(
                rng.gen::<u64>(),
                expected.gen::<u64>(),
                "threads={threads} worlds={num_worlds}"
            );
        }
    }

    #[test]
    fn skip_and_per_edge_agree_statistically() {
        let g = toy();
        let kernel = |world: &DeterministicGraph, acc: &mut [f64]| {
            acc[0] += world.num_edges() as f64;
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let skip = MonteCarlo::worlds(30_000)
            .with_method(SampleMethod::Skip)
            .accumulate(&g, 1, &mut rng, kernel);
        let per_edge = MonteCarlo::worlds(30_000)
            .with_method(SampleMethod::PerEdge)
            .accumulate(&g, 1, &mut rng, kernel);
        let mean_skip = skip[0] / 30_000.0;
        let mean_per_edge = per_edge[0] / 30_000.0;
        assert!((mean_skip - 1.75).abs() < 0.02, "skip {mean_skip}");
        assert!(
            (mean_skip - mean_per_edge).abs() < 0.03,
            "{mean_skip} vs {mean_per_edge}"
        );
    }
}
