//! The [`WorldSource`] abstraction: where sampled worlds come from.
//!
//! The original driver stack hard-wired every consumer to the monolithic
//! [`WorldEngine`] — one graph, one CSR, one scratch.  This module is the
//! seam that removes that assumption: a `WorldSource` is *anything* that can
//! deterministically turn an RNG stream into a sequence of possible worlds,
//! handing each world to the caller as a [`WorldView`]:
//!
//! * [`WorldEngine`] yields [`WorldView::Monolithic`] — the whole world as
//!   one materialised CSR, exactly as before;
//! * [`crate::sharded::ShardedWorldEngine`] yields [`WorldView::Sharded`] —
//!   one materialised CSR **per shard** of a
//!   [`uncertain_graph::GraphPartition`] plus the sampled boundary (cut)
//!   edges, for observers with a cut-aware path.
//!
//! Both sources implement the same contract the batch driver has relied on
//! since the replay-partitioning redesign: [`WorldSource::advance_world`]
//! consumes the RNG exactly like [`WorldSource::sample_world`], so parallel
//! workers can re-derive a shared world stream from one seed and skip to
//! their block, keeping the sampled world sequence invariant to the thread
//! count.
//!
//! Observers declare which views they can consume through
//! [`crate::batch::WorldObserver::shard_support`]; drivers check
//! [`WorldSource::admits`] before accepting an observer, so an observer
//! without any exact sharded path is rejected up front rather than silently
//! answered wrong.  Two exact mechanisms exist: a **cut correction**
//! ([`ShardSupport::CutAware`] — per-shard partials glued across the
//! sampled cut edges, used by count-style queries) and the **ghost-halo
//! exchange** ([`ShardSupport::Halo`] — replicate cut endpoints into every
//! shard and run superstep kernels, used by PageRank, clustering and k-NN;
//! see [`crate::halo`]).
//!
//! # Example
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use uncertain_graph::{GraphPartition, UncertainGraph};
//! use ugs_queries::engine::WorldEngine;
//! use ugs_queries::sharded::ShardedWorldEngine;
//! use ugs_queries::source::{WorldSource, WorldView};
//!
//! let g = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap();
//! let partition = GraphPartition::contiguous(&g, 2).unwrap();
//! let monolithic = WorldEngine::new(&g);
//! let sharded = ShardedWorldEngine::new(&g, &partition);
//!
//! // Same seed, same edge outcomes — the sharded source replays the exact
//! // RNG stream of the monolithic one and only *scatters* differently.
//! let mut scratch_m = WorldSource::make_scratch(&monolithic);
//! let mut scratch_s = WorldSource::make_scratch(&sharded);
//! let mut rng_m = SmallRng::seed_from_u64(7);
//! let mut rng_s = SmallRng::seed_from_u64(7);
//! for _ in 0..20 {
//!     // (`WorldEngine` also has an inherent `sample_world`; qualify to pick
//!     // the trait method.)
//!     let edges_m = match WorldSource::sample_world(&monolithic, &mut rng_m, &mut scratch_m) {
//!         WorldView::Monolithic(world) => world.world().num_edges(),
//!         _ => unreachable!(),
//!     };
//!     let edges_s = match sharded.sample_world(&mut rng_s, &mut scratch_s) {
//!         WorldView::Sharded(world) => {
//!             (0..world.num_shards()).map(|s| world.shard_world(s).num_edges()).sum::<usize>()
//!                 + world.present_cuts().len()
//!         }
//!         _ => unreachable!(),
//!     };
//!     assert_eq!(edges_m, edges_s);
//! }
//! ```

use rand::Rng;

use crate::engine::{WorldEngine, WorldScratch};
use crate::sharded::ShardedWorld;

/// Which world views an observer can consume; see
/// [`crate::batch::WorldObserver::shard_support`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSupport {
    /// The observer only understands [`WorldView::Monolithic`]; a sharded
    /// driver must reject it with a typed error at validation time.
    MonolithicOnly,
    /// The observer has a cut-aware path
    /// ([`crate::batch::WorldObserver::observe_sharded`]) whose combination
    /// of per-shard partials and boundary correction is exact, so it can
    /// consume either view.
    CutAware,
    /// The observer's sharded path is exact through the ghost-halo exchange
    /// ([`crate::halo`]): cut endpoints (and the present edges among them)
    /// are replicated into every shard and the kernel runs as supersteps
    /// with boundary-value exchange.  Like [`ShardSupport::CutAware`], it
    /// can consume either view.
    Halo,
}

/// One sampled possible world, in whatever representation the source
/// produces.
#[derive(Debug, Clone, Copy)]
pub enum WorldView<'a> {
    /// The whole world as one materialised CSR (plus the present edge ids).
    Monolithic(&'a WorldScratch),
    /// One materialised CSR per shard plus the sampled cut edges.
    Sharded(ShardedWorld<'a>),
}

/// A deterministic producer of sampled possible worlds; see the
/// [module docs](self).
///
/// The determinism contract mirrors [`WorldEngine`]: for a fixed source and
/// RNG state, `sample_world` and `advance_world` draw exactly the same RNG
/// values, so a worker can replay a shared stream and skip past the worlds
/// of earlier blocks without materialising them.
pub trait WorldSource: Sync {
    /// Per-thread mutable state; every buffer is pre-sized so the
    /// sample–materialise cycle is allocation-free in steady state.
    type Scratch: Send;

    /// Creates a pre-sized per-thread scratch.
    fn make_scratch(&self) -> Self::Scratch;

    /// `true` when this source yields [`WorldView::Sharded`] views (even
    /// with a single shard): observers then need a cut-aware path.
    fn produces_sharded_views(&self) -> bool;

    /// Number of shards a view decomposes into (1 for monolithic sources).
    fn num_shards(&self) -> usize;

    /// Whether an observer with the given [`ShardSupport`] can consume this
    /// source's views.
    fn admits(&self, support: ShardSupport) -> bool {
        !self.produces_sharded_views()
            || matches!(support, ShardSupport::CutAware | ShardSupport::Halo)
    }

    /// Advances the RNG past one world without materialising it, consuming
    /// the RNG exactly like [`WorldSource::sample_world`].
    fn advance_world<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut Self::Scratch);

    /// Samples one world into `scratch` and returns the view.
    fn sample_world<'s, R: Rng + ?Sized>(
        &'s self,
        rng: &mut R,
        scratch: &'s mut Self::Scratch,
    ) -> WorldView<'s>;
}

impl<'g> WorldSource for WorldEngine<'g> {
    type Scratch = WorldScratch;

    fn make_scratch(&self) -> WorldScratch {
        WorldEngine::make_scratch(self)
    }

    fn produces_sharded_views(&self) -> bool {
        false
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn advance_world<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut WorldScratch) {
        WorldEngine::advance_world(self, rng, scratch);
    }

    fn sample_world<'s, R: Rng + ?Sized>(
        &'s self,
        rng: &mut R,
        scratch: &'s mut WorldScratch,
    ) -> WorldView<'s> {
        WorldEngine::sample_world(self, rng, scratch);
        WorldView::Monolithic(scratch)
    }
}
