//! # ugs-queries
//!
//! Monte-Carlo query evaluation over uncertain graphs — the workloads of
//! Section 6.3 of the paper:
//!
//! * **PR** — expected PageRank of every vertex,
//! * **CC** — expected local clustering coefficient of every vertex,
//! * **SP** — expected shortest-path (hop) distance of a vertex pair over the
//!   possible worlds in which the pair is connected,
//! * **RL** — reliability: the probability that a vertex pair is connected.
//!
//! All queries follow the same pattern: sample `N` possible worlds
//! (`O(|E|)` per world — the reason sparsification speeds queries up),
//! evaluate the deterministic kernel from `graph-algos` inside each world and
//! aggregate.  [`MonteCarlo`] controls the number of worlds and optional
//! multi-threading (crossbeam scoped threads, one RNG stream per thread).
//! [`variance`] estimates the run-to-run variance of the whole estimator,
//! which the paper uses to show that low-entropy sparsified graphs need far
//! fewer samples (Figure 12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod knn;
pub mod mc;
pub mod node_queries;
pub mod pair_queries;
pub mod pairs;
pub mod variance;

pub use components::{connectivity_query, expected_degree_histogram, ConnectivityEstimate};
pub use knn::{k_nearest_neighbors, knn_overlap, Neighbor};
pub use mc::MonteCarlo;
pub use node_queries::{expected_clustering_coefficients, expected_pagerank};
pub use pair_queries::{pair_queries, PairQueryResult};
pub use pairs::random_pairs;
pub use variance::{estimator_variance, VarianceEstimate};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::components::{connectivity_query, ConnectivityEstimate};
    pub use crate::knn::{k_nearest_neighbors, knn_overlap, Neighbor};
    pub use crate::mc::MonteCarlo;
    pub use crate::node_queries::{expected_clustering_coefficients, expected_pagerank};
    pub use crate::pair_queries::{pair_queries, PairQueryResult};
    pub use crate::pairs::random_pairs;
    pub use crate::variance::{estimator_variance, VarianceEstimate};
}
