//! # ugs-queries
//!
//! Monte-Carlo query evaluation over uncertain graphs — the workloads of
//! Section 6.3 of the paper (expected PageRank, expected clustering
//! coefficient, shortest-path distance, reliability, connectivity, k-NN) —
//! built on a **zero-allocation world-sampling engine**.
//!
//! ## The engine
//!
//! Sampling-based query answering spends almost all of its time drawing and
//! materialising possible worlds, so the engine optimises exactly that
//! cycle:
//!
//! * [`engine::WorldEngine`] is built once per graph: it sorts the edges by
//!   descending probability for **skip-sampling** (geometric jumps directly
//!   between present edges — `O(Σ pₑ)` expected RNG work per world instead
//!   of one Bernoulli draw per edge) and precomputes a CSR *support
//!   template* (endpoint table + offsets/neighbour/edge-id arrays).
//! * [`engine::WorldScratch`] is the per-thread state: each world is
//!   compacted into its reusable buffers, so steady-state sampling and
//!   materialisation perform **zero heap allocations**.
//! * [`MonteCarlo`] drives the loop: sequentially, or across
//!   `std::thread::scope` workers that return their partial accumulators by
//!   value on join (no locks).  Seeds are derived per worker from the
//!   caller's RNG, so results are reproducible for a fixed seed and thread
//!   count; the per-edge sampling mode is additionally bit-identical to the
//!   pre-engine driver (guarded by [`mc::accumulate_reference`]).
//!
//! The speedup compounds with the paper's headline result: a sparsified
//! graph `G'` has fewer edges *and* lower entropy, so each world is cheaper
//! to draw (`Σ pₑ` shrinks) and fewer worlds are needed for the same
//! confidence ([`variance`], Figure 12).
//!
//! ## Batched evaluation
//!
//! Every query is implemented as a [`batch::WorldObserver`] over the engine,
//! and [`batch::QueryBatch`] samples each world exactly once and feeds it to
//! *all* registered observers — an experiment mixing `k` queries pays the
//! sampling + materialisation cost once instead of `k` times.  The classic
//! entry points below are thin single-observer wrappers: signatures are
//! unchanged, sequential results are bit-identical to the pre-batch driver,
//! and each call advances the caller RNG by exactly one `u64` draw (zero
//! when there is nothing to sample).  See the [`batch`] module docs for the
//! determinism contract and a worked multi-query example.
//!
//! ## Graph-sharded evaluation
//!
//! Where sampled worlds come from is abstracted behind the
//! [`source::WorldSource`] trait: the monolithic [`engine::WorldEngine`]
//! yields whole-graph worlds, and [`sharded::ShardedWorldEngine`] yields
//! worlds decomposed by a [`uncertain_graph::GraphPartition`] — one
//! materialised CSR per shard plus a dedicated boundary pass over the cut
//! edges.  The sharded engine *replays* the monolithic edge stream, so
//! cut-aware count observers ([`EdgeFrequencyObserver`],
//! [`DegreeHistogramObserver`], [`PairQueriesObserver`],
//! [`ConnectivityObserver`]) produce results **bit-identical** to a
//! monolithic run at equal seeds, invariant over shard and thread counts
//! (`tests/shard_parity.rs`); observers without a cut correction
//! (PageRank, clustering, k-NN) are rejected up front via
//! [`source::ShardSupport`].
//!
//! ## Queries
//!
//! All queries follow the same pattern: sample `N` worlds through the
//! engine, evaluate a deterministic kernel from `graph-algos` inside each
//! world and aggregate.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use uncertain_graph::UncertainGraph;
//! use ugs_queries::prelude::*;
//!
//! let g = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap();
//! let mut rng = SmallRng::seed_from_u64(7);
//!
//! // Sequential, machine-independent run…
//! let mc = MonteCarlo::worlds(500);
//! let pr = expected_pagerank(&g, &mc, &mut rng);
//! assert_eq!(pr.len(), 4);
//!
//! // …or one worker per core (deterministic for a fixed thread count).
//! let mc = MonteCarlo::parallel(500);
//! let estimate = connectivity_query(&g, &mc, &mut rng);
//! assert!(estimate.probability_connected <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod boundary;
pub mod components;
pub mod cv;
pub mod engine;
pub mod halo;
pub mod knn;
pub mod mc;
pub mod node_queries;
pub mod pair_queries;
pub mod pairs;
pub mod sharded;
pub mod source;
pub mod variance;

pub use boundary::{
    accumulate_shard_aggregates, extract_shard_record, glue_records, GluedWorld, ShardWorldRecord,
};

pub use batch::{
    run_adaptive_cancellable, run_adaptive_merged, AdaptiveReport, BatchError, BatchResults,
    BoxedObserver, DynHandle, DynObserver, EdgeFrequencyObserver, ObserverHandle, QueryBatch,
    WorldObserver,
};
pub use components::{
    connectivity_query, expected_degree_histogram, ConnectivityEstimate, ConnectivityObserver,
    DegreeHistogramObserver,
};
pub use cv::{ControlVariate, CvConfig, CvError, CvEstimate};
pub use engine::{SampleMethod, WorldEngine, WorldScratch};
pub use halo::{HaloClustering, HaloPageRank, ShardBfs, ShardPageRank, WorldPresence};
pub use knn::{k_nearest_neighbors, knn_overlap, KnnObserver, Neighbor};
pub use mc::MonteCarlo;
pub use node_queries::{
    expected_clustering_coefficients, expected_pagerank, ClusteringObserver, PageRankObserver,
};
pub use pair_queries::{pair_queries, PairQueriesObserver, PairQueryResult};
pub use pairs::random_pairs;
pub use sharded::{ShardScratch, ShardedScratch, ShardedWorld, ShardedWorldEngine};
pub use source::{ShardSupport, WorldSource, WorldView};
pub use variance::{
    estimator_variance, AccumulatorStats, Precision, StopReason, StoppingRule, VarianceEstimate,
    Welford,
};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::batch::{
        run_adaptive_cancellable, run_adaptive_merged, AdaptiveReport, BatchError, BatchResults,
        BoxedObserver, DynHandle, EdgeFrequencyObserver, ObserverHandle, QueryBatch, WorldObserver,
    };
    pub use crate::boundary::{
        accumulate_shard_aggregates, extract_shard_record, glue_records, GluedWorld,
        ShardWorldRecord,
    };
    pub use crate::components::{
        connectivity_query, ConnectivityEstimate, ConnectivityObserver, DegreeHistogramObserver,
    };
    pub use crate::cv::{ControlVariate, CvConfig, CvError, CvEstimate};
    pub use crate::engine::{SampleMethod, WorldEngine, WorldScratch};
    pub use crate::halo::{HaloClustering, HaloPageRank, ShardBfs, ShardPageRank, WorldPresence};
    pub use crate::knn::{k_nearest_neighbors, knn_overlap, KnnObserver, Neighbor};
    pub use crate::mc::MonteCarlo;
    pub use crate::node_queries::{
        expected_clustering_coefficients, expected_pagerank, ClusteringObserver, PageRankObserver,
    };
    pub use crate::pair_queries::{pair_queries, PairQueriesObserver, PairQueryResult};
    pub use crate::pairs::random_pairs;
    pub use crate::sharded::{ShardScratch, ShardedScratch, ShardedWorld, ShardedWorldEngine};
    pub use crate::source::{ShardSupport, WorldSource, WorldView};
    pub use crate::variance::{
        estimator_variance, AccumulatorStats, Precision, StopReason, StoppingRule,
        VarianceEstimate, Welford,
    };
}
