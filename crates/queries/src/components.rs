//! Connectivity-structure queries: expected number of connected components,
//! expected size of the largest component, and the probability that the
//! whole graph is connected.
//!
//! These are the "graph-level" probabilistic queries the paper uses to
//! motivate possible-world semantics (the introduction's
//! `Pr[G is connected]` example): their output is inherently a probability
//! or an expectation over worlds, which is exactly what a deterministic
//! representative instance cannot express and a sparsified *uncertain* graph
//! can.

//! Both queries are [`crate::batch::WorldObserver`]s
//! ([`ConnectivityObserver`], [`DegreeHistogramObserver`]) so they can share
//! sampled worlds with other queries in a [`QueryBatch`]; the free functions
//! are single-observer wrappers keeping the original signatures
//! (bit-identical sequentially, one caller-RNG draw).

use rand::Rng;
use uncertain_graph::UncertainGraph;

use crate::batch::{QueryBatch, WorldObserver};
use crate::engine::WorldScratch;
use crate::mc::MonteCarlo;
use crate::sharded::{ShardedComponents, ShardedWorld};
use crate::source::ShardSupport;
use graph_algos::traversal::connected_components;

/// Monte-Carlo estimates of the connectivity structure of an uncertain graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectivityEstimate {
    /// Expected number of connected components.
    pub expected_components: f64,
    /// Expected number of vertices in the largest component.
    pub expected_largest_component: f64,
    /// Probability that the graph consists of a single connected component
    /// (the Figure 1 query of the paper).
    pub probability_connected: f64,
    /// Expected fraction of isolated vertices.
    pub expected_isolated_fraction: f64,
    /// Number of sampled worlds.
    pub num_worlds: usize,
}

/// Observer accumulating connectivity structure over sampled worlds;
/// finalises to a [`ConnectivityEstimate`].
#[derive(Debug, Clone)]
pub struct ConnectivityObserver {
    n: usize,
    /// Layout: [components, largest, connected, isolated]
    totals: Vec<f64>,
    /// Component-size tally, pre-sized to `n` (a world has at most `n`
    /// components) so `observe` never allocates.
    sizes: Vec<usize>,
    /// Connectedness indicator of the last observed world, the statistic
    /// fed to the adaptive stopping rule.
    last_connected: f64,
}

impl ConnectivityObserver {
    /// An observer for the vertices of `g`.
    pub fn new(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        ConnectivityObserver {
            n,
            totals: vec![0.0; 4],
            sizes: vec![0; n],
            last_connected: f64::NAN,
        }
    }
}

impl WorldObserver for ConnectivityObserver {
    type Output = ConnectivityEstimate;

    fn observe(&mut self, scratch: &WorldScratch) {
        let world = scratch.world();
        let (labels, count) = connected_components(world);
        let sizes = &mut self.sizes[..count];
        sizes.fill(0);
        for &label in &labels {
            sizes[label] += 1;
        }
        let largest = sizes.iter().copied().max().unwrap_or(0);
        let isolated = (0..world.num_vertices())
            .filter(|&u| world.degree(u) == 0)
            .count();
        self.totals[0] += count as f64;
        self.totals[1] += largest as f64;
        self.totals[2] += f64::from(count == 1);
        self.totals[3] += isolated as f64 / self.n as f64;
        self.last_connected = f64::from(count == 1);
    }

    fn shard_support(&self) -> ShardSupport {
        ShardSupport::CutAware
    }

    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        // Traversal-style cut correction: per-shard component labels glued
        // with DSU unions across the present cut edges (ghost-vertex
        // equivalent).  Every per-world scalar — component count, largest
        // size, connectedness, isolated count — is exactly the monolithic
        // value, so the accumulated totals stay bit-identical.
        let partition = world.partition();
        let mut components = ShardedComponents::compute(world);
        let count = components.num_components();
        let largest = components.largest_component();
        let mut isolated = 0usize;
        for (s, shard) in partition.shards().iter().enumerate() {
            let shard_world = world.shard_world(s);
            for local in 0..shard_world.num_vertices() {
                if shard_world.degree(local) == 0
                    && world.cut_degree(shard.global_vertex(local)) == 0
                {
                    isolated += 1;
                }
            }
        }
        self.totals[0] += count as f64;
        self.totals[1] += largest as f64;
        self.totals[2] += f64::from(count == 1);
        self.totals[3] += isolated as f64 / self.n as f64;
        self.last_connected = f64::from(count == 1);
    }

    /// Tracked statistic: the per-world connectedness indicator, so an
    /// adaptive run bounds the error of `probability_connected` (the
    /// paper's Figure 1 query).
    fn tracked_range(&self) -> Option<(f64, f64)> {
        (self.n > 0).then_some((0.0, 1.0))
    }

    fn tracked_statistic(&self) -> f64 {
        self.last_connected
    }

    fn merge(&mut self, other: Self) {
        for (t, o) in self.totals.iter_mut().zip(other.totals) {
            *t += o;
        }
    }

    fn finalize(self, num_worlds: usize) -> ConnectivityEstimate {
        if num_worlds == 0 {
            return ConnectivityEstimate {
                expected_components: 0.0,
                expected_largest_component: 0.0,
                probability_connected: 0.0,
                expected_isolated_fraction: 0.0,
                num_worlds,
            };
        }
        let w = num_worlds as f64;
        ConnectivityEstimate {
            expected_components: self.totals[0] / w,
            expected_largest_component: self.totals[1] / w,
            probability_connected: self.totals[2] / w,
            expected_isolated_fraction: self.totals[3] / w,
            num_worlds,
        }
    }
}

/// Observer accumulating the per-world degree distribution; finalises to the
/// expected degree histogram (truncated at the maximum observed degree).
#[derive(Debug, Clone)]
pub struct DegreeHistogramObserver {
    totals: Vec<f64>,
}

impl DegreeHistogramObserver {
    /// An observer sized for the maximum support degree of `g`.
    pub fn new(g: &UncertainGraph) -> Self {
        let max_degree = (0..g.num_vertices())
            .map(|u| g.degree(u))
            .max()
            .unwrap_or(0);
        DegreeHistogramObserver {
            totals: vec![0.0; max_degree + 1],
        }
    }
}

impl WorldObserver for DegreeHistogramObserver {
    type Output = Vec<f64>;

    fn observe(&mut self, scratch: &WorldScratch) {
        let world = scratch.world();
        for u in 0..world.num_vertices() {
            self.totals[world.degree(u)] += 1.0;
        }
    }

    fn shard_support(&self) -> ShardSupport {
        ShardSupport::CutAware
    }

    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        // A vertex's world degree decomposes exactly into its shard-local
        // degree plus the number of present cut edges incident to it — the
        // boundary pass tracks the latter, so the histogram increments are
        // identical to the monolithic path's.
        let partition = world.partition();
        for (s, shard) in partition.shards().iter().enumerate() {
            let shard_world = world.shard_world(s);
            for local in 0..shard_world.num_vertices() {
                let degree =
                    shard_world.degree(local) + world.cut_degree(shard.global_vertex(local));
                self.totals[degree] += 1.0;
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (t, o) in self.totals.iter_mut().zip(other.totals) {
            *t += o;
        }
    }

    fn finalize(self, num_worlds: usize) -> Vec<f64> {
        if num_worlds == 0 {
            return self.totals;
        }
        let mut histogram: Vec<f64> = self
            .totals
            .into_iter()
            .map(|x| x / num_worlds as f64)
            .collect();
        while histogram.len() > 1 && histogram.last() == Some(&0.0) {
            histogram.pop();
        }
        histogram
    }
}

/// Estimates the connectivity structure of `g` over `mc.num_worlds` sampled
/// worlds.
pub fn connectivity_query<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> ConnectivityEstimate {
    let n = g.num_vertices();
    if mc.num_worlds == 0 || n == 0 {
        return ConnectivityEstimate {
            expected_components: 0.0,
            expected_largest_component: 0.0,
            probability_connected: 0.0,
            expected_isolated_fraction: 0.0,
            num_worlds: mc.num_worlds,
        };
    }
    let mut batch = QueryBatch::new(g, mc);
    let handle = batch.register(ConnectivityObserver::new(g));
    batch.run(rng).take(handle)
}

/// Expected degree distribution: `result[d]` is the expected number of
/// vertices with degree exactly `d` in a sampled world (the vector is
/// truncated at the maximum observed degree).
pub fn expected_degree_histogram<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.num_vertices();
    if mc.num_worlds == 0 || n == 0 {
        return Vec::new();
    }
    let mut batch = QueryBatch::new(g, mc);
    let handle = batch.register(DegreeHistogramObserver::new(g));
    batch.run(rng).take(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn figure1_connectivity_probability_is_recovered() {
        // K4 with p = 0.3 on every edge: Pr[connected] ≈ 0.219 (Figure 1).
        let g = UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.3),
                (0, 2, 0.3),
                (0, 3, 0.3),
                (1, 2, 0.3),
                (1, 3, 0.3),
                (2, 3, 0.3),
            ],
        )
        .unwrap();
        let mc = MonteCarlo::worlds(40_000);
        let mut rng = SmallRng::seed_from_u64(1);
        let estimate = connectivity_query(&g, &mc, &mut rng);
        assert!((estimate.probability_connected - 0.219).abs() < 0.01);
        assert!(estimate.expected_components > 1.0);
        assert!(estimate.expected_largest_component <= 4.0);
        assert_eq!(estimate.num_worlds, 40_000);
    }

    #[test]
    fn deterministic_graph_has_exact_connectivity() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let mc = MonteCarlo::worlds(20);
        let mut rng = SmallRng::seed_from_u64(2);
        let estimate = connectivity_query(&g, &mc, &mut rng);
        assert_eq!(estimate.probability_connected, 1.0);
        assert_eq!(estimate.expected_components, 1.0);
        assert_eq!(estimate.expected_largest_component, 4.0);
        assert_eq!(estimate.expected_isolated_fraction, 0.0);
    }

    #[test]
    fn isolated_fraction_matches_closed_form() {
        // Star with centre 0: leaf i is isolated iff its spoke is absent.
        let p = 0.25;
        let g = UncertainGraph::from_edges(4, [(0, 1, p), (0, 2, p), (0, 3, p)]).unwrap();
        let mc = MonteCarlo::worlds(30_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let estimate = connectivity_query(&g, &mc, &mut rng);
        // E[isolated vertices] = 3(1-p) + P(no spoke at all) for the centre.
        let expected = (3.0 * (1.0 - p) + (1.0f64 - p).powi(3)) / 4.0;
        assert!((estimate.expected_isolated_fraction - expected).abs() < 0.01);
    }

    #[test]
    fn degree_histogram_sums_to_vertex_count() {
        let g = UncertainGraph::from_edges(5, [(0, 1, 0.5), (1, 2, 0.7), (2, 3, 0.2), (3, 4, 0.9)])
            .unwrap();
        let mc = MonteCarlo::worlds(5_000);
        let mut rng = SmallRng::seed_from_u64(4);
        let histogram = expected_degree_histogram(&g, &mc, &mut rng);
        let total: f64 = histogram.iter().sum();
        assert!((total - 5.0).abs() < 1e-9);
        // expected number of degree-0 realisations of vertex 0 is 0.5
        assert!(histogram[0] > 0.0);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let estimate = connectivity_query(&g, &MonteCarlo::worlds(0), &mut rng);
        assert_eq!(estimate.probability_connected, 0.0);
        assert!(expected_degree_histogram(&g, &MonteCarlo::worlds(0), &mut rng).is_empty());
    }
}
