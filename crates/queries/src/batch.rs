//! Batched multi-query evaluation over **shared** sampled worlds.
//!
//! Every Monte-Carlo query in this crate spends most of its time drawing and
//! materialising possible worlds.  When an experiment mixes `k` queries over
//! the same uncertain graph (the paper's Section 6.3 evaluates reliability,
//! shortest-path distance, PageRank and k-NN side by side), running them
//! standalone pays that sampling cost `k` times.  [`QueryBatch`] samples each
//! world exactly **once** and feeds it to every registered
//! [`WorldObserver`], amortising the sampling + materialisation across the
//! whole query mix.
//!
//! ## Observers
//!
//! A [`WorldObserver`] is the per-query accumulator: it sees every sampled
//! world through [`WorldObserver::observe`], partial observers from parallel
//! workers are combined with [`WorldObserver::merge`], and
//! [`WorldObserver::finalize`] turns the accumulated state into the query's
//! result.  Each query surface of this crate ships its observer:
//!
//! | Observer | Output | Standalone wrapper |
//! |---|---|---|
//! | [`crate::node_queries::PageRankObserver`] | `Vec<f64>` | [`crate::expected_pagerank`] |
//! | [`crate::node_queries::ClusteringObserver`] | `Vec<f64>` | [`crate::expected_clustering_coefficients`] |
//! | [`crate::pair_queries::PairQueriesObserver`] | [`crate::PairQueryResult`] | [`crate::pair_queries()`] |
//! | [`crate::components::ConnectivityObserver`] | [`crate::ConnectivityEstimate`] | [`crate::connectivity_query`] |
//! | [`crate::components::DegreeHistogramObserver`] | `Vec<f64>` | [`crate::expected_degree_histogram`] |
//! | [`crate::knn::KnnObserver`] | `Vec<`[`crate::Neighbor`]`>` | [`crate::k_nearest_neighbors`] |
//! | [`EdgeFrequencyObserver`] | `Vec<f64>` | — |
//!
//! ## Determinism and reproducibility
//!
//! The driver draws **exactly one** `u64` from the caller's RNG (the batch
//! seed) when `num_worlds > 0` and at least one observer is registered, and
//! **zero** draws otherwise — regardless of the thread count.  All workers
//! derive their world stream from that one seed: worker `w` replays (samples
//! and discards, without materialising) the worlds before its contiguous
//! block, so the sequence of sampled worlds is *identical for every thread
//! count*.  Consequences:
//!
//! * with one thread, a single-observer batch is **bit-identical** to the
//!   legacy standalone driver ([`MonteCarlo::accumulate`] with one worker);
//! * results are invariant to the observer registration order;
//! * order-insensitive accumulators (counts, and statistics derived from
//!   counts such as reliability) are exactly invariant to the thread count;
//!   floating-point sums may differ across thread counts only in their
//!   round-off (partial sums are merged in worker order).
//!
//! The replay makes parallel sampling cost `O(threads)` × the sequential
//! sampling cost in total, which is a good trade: per-world kernels (BFS,
//! PageRank, components) dominate sampling, and sampling itself is cheap in
//! the paper's sparsified regime (`O(Σ pₑ)` skip-sampling).
//!
//! ## The `DynObserver` layer
//!
//! [`WorldObserver`] is a statically-typed trait: [`QueryBatch::register`]
//! needs the concrete observer type and [`BatchResults::take`] needs it
//! again to give back a typed `Output`.  That works when the caller names
//! every query at compile time, but a *dynamic* front end — a query plan
//! parsed from JSON, a long-lived service accepting arbitrary submissions —
//! only knows its query mix at run time.  The object-safe [`DynObserver`]
//! trait (blanket-implemented for every `WorldObserver`, never implemented
//! by hand) erases the observer type behind the same
//! observe / merge / finalize lifecycle, and [`BoxedObserver`] is the owned
//! handle that heterogeneous registries store:
//!
//! * [`BoxedObserver::new`] erases any [`WorldObserver`];
//! * [`QueryBatch::register_boxed`] registers it and returns an untyped
//!   [`DynHandle`];
//! * [`BatchResults::try_take_boxed`] finalises it to a
//!   `Box<dyn Any + Send>` that the front end downcasts with the knowledge
//!   of which query it submitted (`ugs-service` keeps that knowledge in its
//!   `QuerySpec`).
//!
//! Sharded drivers that run their own worker pool (again `ugs-service`)
//! use [`BoxedObserver::observe`] / [`BoxedObserver::merge`] directly on
//! per-worker clones and assemble a [`BatchResults`] from the merged
//! observers with [`BatchResults::from_merged`], so redemption goes through
//! the same fallible [`BatchResults::try_take_boxed`] path as a local batch.
//!
//! ## Fallible redemption
//!
//! [`BatchResults::take`] panics on a foreign or already-redeemed handle —
//! fine for straight-line query code, wrong for a long-lived service.
//! [`BatchResults::try_take`] / [`BatchResults::try_take_boxed`] return a
//! [`BatchError`] instead ([`BatchError::WrongBatch`] and
//! [`BatchError::AlreadyTaken`]); `take` is a thin `unwrap` over `try_take`.
//!
//! ## Worked example
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use uncertain_graph::UncertainGraph;
//! use ugs_queries::batch::{EdgeFrequencyObserver, QueryBatch};
//! use ugs_queries::components::{ConnectivityObserver, DegreeHistogramObserver};
//! use ugs_queries::MonteCarlo;
//!
//! let g = UncertainGraph::from_edges(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7)]).unwrap();
//! let mc = MonteCarlo::worlds(400);
//!
//! // One sampling pass serves all three queries.
//! let mut batch = QueryBatch::new(&g, &mc);
//! let connectivity = batch.register(ConnectivityObserver::new(&g));
//! let histogram = batch.register(DegreeHistogramObserver::new(&g));
//! let frequencies = batch.register(EdgeFrequencyObserver::new(&g));
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut results = batch.run(&mut rng); // advances `rng` by exactly one u64 draw
//!
//! let connectivity = results.take(connectivity);
//! assert!(connectivity.probability_connected <= 1.0);
//! let histogram = results.take(histogram);
//! assert!((histogram.iter().sum::<f64>() - 4.0).abs() < 1e-9);
//! let frequencies = results.take(frequencies);
//! assert!((frequencies[0] - 0.9).abs() < 0.1);
//! ```

use std::any::Any;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::UncertainGraph;

use crate::engine::{WorldEngine, WorldScratch};
use crate::mc::MonteCarlo;
use crate::sharded::{ShardedWorld, ShardedWorldEngine};
use crate::source::{ShardSupport, WorldSource, WorldView};
use crate::variance::{Precision, StopReason, StoppingRule};

/// A per-query accumulator fed by the batch driver.
///
/// The driver clones the registered observer once per worker (clones are
/// taken *before* any observation, so `Clone` must reproduce the pristine
/// state), calls [`WorldObserver::observe`] for every world of the worker's
/// block, combines the partial observers with [`WorldObserver::merge`] in
/// worker order, and [`WorldObserver::finalize`] produces the result.
///
/// To keep the whole batch allocation-free per world in steady state,
/// `observe` must not allocate: pre-size every buffer in the constructor.
///
/// Implementations that mirror a legacy `MonteCarlo::accumulate` kernel can
/// accumulate straight into their running totals and stay bit-identical to
/// the legacy driver (which summed each world's kernel output into the
/// totals) as long as each slot receives at most one floating-point addend
/// per world or only exactly-representable integer counts — true of every
/// observer in this crate, and guarded by the `batch_parity` suite.  A
/// kernel that adds several non-integral contributions to one slot per
/// world must keep the legacy zero-a-local-buffer-then-add pattern to
/// preserve the association order.
pub trait WorldObserver: Send + Clone + 'static {
    /// The finalised query result.
    ///
    /// `Send + 'static` so the type-erased [`DynObserver`] layer can box the
    /// output as `Box<dyn Any + Send>` and ship it across service channels;
    /// every output in this crate is a plain owned value anyway.
    type Output: Send + 'static;

    /// Observes one sampled world (the scratch exposes both the present
    /// edge ids and the materialised [`graph_algos::DeterministicGraph`]).
    fn observe(&mut self, world: &WorldScratch);

    /// Which world views the observer can consume (see
    /// [`ShardSupport`]).  The default is [`ShardSupport::MonolithicOnly`];
    /// observers whose accumulation is exact under a per-shard + cut
    /// decomposition override this to [`ShardSupport::CutAware`], and
    /// observers that are exact through the ghost-halo exchange
    /// ([`crate::halo`]) override it to [`ShardSupport::Halo`]; both
    /// implement [`WorldObserver::observe_sharded`].
    fn shard_support(&self) -> ShardSupport {
        ShardSupport::MonolithicOnly
    }

    /// Observes one sampled world decomposed by a graph partition: the
    /// per-shard contribution plus the boundary (cut-edge) correction.
    ///
    /// An implementation must accumulate exactly what [`WorldObserver::observe`]
    /// would have accumulated for the same world — the sharded engine
    /// replays the monolithic edge stream, so a correct cut correction
    /// makes count-style results bit-identical across shard counts.
    ///
    /// The default implementation panics; drivers never call it unless
    /// [`WorldObserver::shard_support`] declared a sharded path
    /// ([`ShardSupport::CutAware`] or [`ShardSupport::Halo`]).
    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        let _ = world;
        panic!("observer has no cut-aware path (shard_support() is MonolithicOnly)");
    }

    /// The a-priori closed range `[lo, hi]` of the scalar statistic this
    /// observer feeds the adaptive stopping rule, or `None` (the default)
    /// when the observer tracks no bounded per-world scalar.  Observers
    /// returning `None` still run under an adaptive batch — they ride along
    /// without constraining the stopping decision.
    fn tracked_range(&self) -> Option<(f64, f64)> {
        None
    }

    /// The tracked scalar of the most recently observed world.  The adaptive
    /// driver calls this immediately after every [`WorldObserver::observe`] /
    /// [`WorldObserver::observe_sharded`], and only when
    /// [`WorldObserver::tracked_range`] returned `Some`; the default (never
    /// called by the driver) returns NaN.
    fn tracked_statistic(&self) -> f64 {
        f64::NAN
    }

    /// Folds another partial observer (from a parallel worker) into `self`.
    fn merge(&mut self, other: Self);

    /// Consumes the accumulated state and produces the query result;
    /// `num_worlds` is the total number of sampled worlds across all
    /// workers (implementations must tolerate `num_worlds == 0`).
    fn finalize(self, num_worlds: usize) -> Self::Output;
}

/// Object-safe adapter over [`WorldObserver`] so one batch (or registry) can
/// drive a heterogeneous observer set; see the
/// [module docs](self#the-dynobserver-layer).
///
/// Blanket-implemented for every [`WorldObserver`] — do not implement this
/// trait by hand; implement `WorldObserver` and erase it with
/// [`BoxedObserver::new`].
pub trait DynObserver: Send {
    /// Type-erased [`WorldObserver::observe`].
    fn observe_dyn(&mut self, world: &WorldScratch);
    /// Type-erased [`WorldObserver::shard_support`].
    fn shard_support_dyn(&self) -> ShardSupport;
    /// Type-erased [`WorldObserver::observe_sharded`].
    fn observe_sharded_dyn(&mut self, world: &ShardedWorld<'_>);
    /// Type-erased [`WorldObserver::tracked_range`].
    fn tracked_range_dyn(&self) -> Option<(f64, f64)>;
    /// Type-erased [`WorldObserver::tracked_statistic`].
    fn tracked_statistic_dyn(&self) -> f64;
    /// Type-erased [`WorldObserver::merge`].
    ///
    /// # Panics
    ///
    /// Panics if `other` is not the same concrete observer type.
    fn merge_dyn(&mut self, other: Box<dyn DynObserver>);
    /// Clones the observer behind the erasure (used to hand each parallel
    /// worker its own pristine copy).
    fn clone_dyn(&self) -> Box<dyn DynObserver>;
    /// Recovers the concrete observer for a typed downcast.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// Type-erased [`WorldObserver::finalize`]: the boxed
    /// [`WorldObserver::Output`], downcastable by whoever knows which query
    /// was registered.
    fn finalize_dyn(self: Box<Self>, num_worlds: usize) -> Box<dyn Any + Send>;
}

impl<O: WorldObserver> DynObserver for O {
    fn observe_dyn(&mut self, world: &WorldScratch) {
        self.observe(world);
    }

    fn shard_support_dyn(&self) -> ShardSupport {
        self.shard_support()
    }

    fn observe_sharded_dyn(&mut self, world: &ShardedWorld<'_>) {
        self.observe_sharded(world);
    }

    fn tracked_range_dyn(&self) -> Option<(f64, f64)> {
        self.tracked_range()
    }

    fn tracked_statistic_dyn(&self) -> f64 {
        self.tracked_statistic()
    }

    fn merge_dyn(&mut self, other: Box<dyn DynObserver>) {
        let other = other
            .into_any()
            .downcast::<O>()
            .expect("merged observers must have the same concrete type");
        self.merge(*other);
    }

    fn clone_dyn(&self) -> Box<dyn DynObserver> {
        Box::new(self.clone())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn finalize_dyn(self: Box<Self>, num_worlds: usize) -> Box<dyn Any + Send> {
        Box::new((*self).finalize(num_worlds))
    }
}

/// An owned, type-erased observer — the unit a heterogeneous registry
/// stores.  Create with [`BoxedObserver::new`], feed worlds with
/// [`BoxedObserver::observe`], combine per-worker clones with
/// [`BoxedObserver::merge`] and redeem through
/// [`QueryBatch::register_boxed`] / [`BatchResults::from_merged`].
pub struct BoxedObserver(Box<dyn DynObserver>);

impl BoxedObserver {
    /// Erases a concrete [`WorldObserver`].
    pub fn new<O: WorldObserver>(observer: O) -> Self {
        BoxedObserver(Box::new(observer))
    }

    /// Observes one sampled world (see [`WorldObserver::observe`]).
    pub fn observe(&mut self, world: &WorldScratch) {
        self.0.observe_dyn(world);
    }

    /// Which world views the erased observer can consume (see
    /// [`WorldObserver::shard_support`]).
    pub fn shard_support(&self) -> ShardSupport {
        self.0.shard_support_dyn()
    }

    /// Observes one sampled world in any representation: dispatches to
    /// [`WorldObserver::observe`] or [`WorldObserver::observe_sharded`]
    /// according to the view.
    ///
    /// # Panics
    ///
    /// Panics on a sharded view when the observer is
    /// [`ShardSupport::MonolithicOnly`]; external drivers check
    /// [`BoxedObserver::shard_support`] (or validate their specs) first.
    pub fn observe_view(&mut self, view: &WorldView<'_>) {
        match view {
            WorldView::Monolithic(world) => self.0.observe_dyn(world),
            WorldView::Sharded(world) => self.0.observe_sharded_dyn(world),
        }
    }

    /// The range of the erased observer's tracked statistic (see
    /// [`WorldObserver::tracked_range`]).
    pub fn tracked_range(&self) -> Option<(f64, f64)> {
        self.0.tracked_range_dyn()
    }

    /// The erased observer's tracked scalar for the most recently observed
    /// world (see [`WorldObserver::tracked_statistic`]).
    pub fn tracked_statistic(&self) -> f64 {
        self.0.tracked_statistic_dyn()
    }

    /// Folds another partial observer into `self` (see
    /// [`WorldObserver::merge`]).  Merge partials in worker (= world block)
    /// order to keep floating-point association deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `other` erases a different concrete observer type.
    pub fn merge(&mut self, other: BoxedObserver) {
        self.0.merge_dyn(other.0);
    }

    /// Finalises to the boxed [`WorldObserver::Output`]; the caller
    /// downcasts with its knowledge of the registered query.
    pub fn finalize(self, num_worlds: usize) -> Box<dyn Any + Send> {
        self.0.finalize_dyn(num_worlds)
    }
}

impl Clone for BoxedObserver {
    /// Clones the pristine observer behind the erasure (per-worker copies).
    fn clone(&self) -> Self {
        BoxedObserver(self.0.clone_dyn())
    }
}

impl std::fmt::Debug for BoxedObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxedObserver").finish_non_exhaustive()
    }
}

/// Typed handle returned by [`QueryBatch::register`]; redeem it against the
/// [`BatchResults`] of the *same* batch with [`BatchResults::take`].
pub struct ObserverHandle<O> {
    batch: u64,
    index: usize,
    _marker: PhantomData<fn() -> O>,
}

impl<O> Clone for ObserverHandle<O> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<O> Copy for ObserverHandle<O> {}

impl<O> std::fmt::Debug for ObserverHandle<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverHandle")
            .field("batch", &self.batch)
            .field("index", &self.index)
            .finish()
    }
}

/// Untyped handle returned by [`QueryBatch::register_boxed`] (and
/// [`BatchResults::from_merged`]); redeem it with
/// [`BatchResults::try_take_boxed`].
#[derive(Debug, Clone, Copy)]
pub struct DynHandle {
    batch: u64,
    index: usize,
}

/// Why a [`BatchResults`] redemption failed; returned by the fallible
/// [`BatchResults::try_take`] / [`BatchResults::try_take_boxed`] paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// The handle was issued by a different batch run.
    WrongBatch {
        /// Id of the batch the results belong to.
        results: u64,
        /// Id of the batch that issued the handle.
        handle: u64,
    },
    /// The observer at this slot was already redeemed.
    AlreadyTaken {
        /// The handle's slot index.
        index: usize,
    },
    /// The observer cannot register with this batch: the batch is sharded
    /// ([`QueryBatch::from_sharded`]) and the observer has no sharded path
    /// (neither a cut correction nor the ghost-halo exchange). Returned by
    /// [`QueryBatch::try_register`] / [`QueryBatch::try_register_boxed`].
    Unsupported {
        /// The observer's declared [`ShardSupport`].
        support: ShardSupport,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::WrongBatch { results, handle } => write!(
                f,
                "observer handle redeemed against a different batch \
                 (results of batch {results}, handle from batch {handle})"
            ),
            BatchError::AlreadyTaken { index } => {
                write!(f, "observer result already taken (slot {index})")
            }
            BatchError::Unsupported { support } => write!(
                f,
                "observer has no sharded path (cut correction or ghost halo) and cannot \
                 register with a sharded batch (declared {support:?}; validate the query \
                 against the shard configuration first)"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// Process-wide counter giving every batch a distinct id, so a handle can
/// only be redeemed against the results of the batch that issued it.
static BATCH_IDS: AtomicU64 = AtomicU64::new(0);

/// Samples each world once and feeds it to every registered observer.
///
/// Built from a graph and a [`MonteCarlo`] configuration (world count,
/// thread count, sampling method); see the [module docs](self) for the
/// determinism contract and a worked example.
pub struct QueryBatch<'g> {
    source: BatchSource<'g>,
    num_worlds: usize,
    threads: usize,
    id: u64,
    observers: Vec<Box<dyn DynObserver>>,
    precision: Option<Precision>,
}

/// Where a batch's worlds come from: the monolithic engine (owned, as
/// before) or a caller-built shard-aware engine.
enum BatchSource<'g> {
    Monolithic(WorldEngine<'g>),
    Sharded(&'g ShardedWorldEngine<'g>),
}

impl<'g> QueryBatch<'g> {
    /// Creates a batch over `g` driven by the [`MonteCarlo`] configuration
    /// (including its optional [`Precision`] target).
    pub fn new(g: &'g UncertainGraph, mc: &MonteCarlo) -> Self {
        let batch = Self::from_engine(
            WorldEngine::new(g).with_method(mc.method),
            mc.num_worlds,
            mc.threads,
        );
        match mc.precision {
            Some(precision) => batch.with_precision(precision),
            None => batch,
        }
    }

    /// Creates a batch from a pre-built engine (lets callers reuse the
    /// engine's `O(|E| log |E|)` construction across batches).
    pub fn from_engine(engine: WorldEngine<'g>, num_worlds: usize, threads: usize) -> Self {
        Self::from_source(BatchSource::Monolithic(engine), num_worlds, threads)
    }

    /// Creates a batch over a **shard-aware** world source: every sampled
    /// world reaches the observers as a [`ShardedWorld`], so only observers
    /// with an exact sharded path — a cut correction
    /// ([`ShardSupport::CutAware`]) or the ghost-halo exchange
    /// ([`ShardSupport::Halo`], see [`crate::halo`]) — can register;
    /// [`QueryBatch::register`] / [`QueryBatch::register_boxed`] panic on
    /// any other (validate specs up front, as `ugs-service` does, to get a
    /// typed error instead).
    ///
    /// The replay-partitioned world stream is the same as a monolithic
    /// batch's at equal seeds, so both mechanisms produce bit-identical
    /// results here and in [`QueryBatch::new`].
    pub fn from_sharded(
        engine: &'g ShardedWorldEngine<'g>,
        num_worlds: usize,
        threads: usize,
    ) -> Self {
        Self::from_source(BatchSource::Sharded(engine), num_worlds, threads)
    }

    fn from_source(source: BatchSource<'g>, num_worlds: usize, threads: usize) -> Self {
        QueryBatch {
            source,
            num_worlds,
            threads: threads.max(1),
            id: BATCH_IDS.fetch_add(1, Ordering::Relaxed),
            observers: Vec::new(),
            precision: None,
        }
    }

    /// Makes the batch **adaptive**: instead of always sampling
    /// `num_worlds`, the run stops at the first epoch boundary where every
    /// tracked statistic meets the [`Precision`] target (`num_worlds`,
    /// possibly tightened by [`Precision::max_worlds`], stays the hard
    /// budget).  [`BatchResults::adaptive`] then reports the outcome.  The
    /// RNG discipline is unchanged: still exactly one `u64` draw.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// The adaptive target, when one was set.
    pub fn precision(&self) -> Option<&Precision> {
        self.precision.as_ref()
    }

    /// The number of worlds the batch will sample (the hard budget, for an
    /// adaptive batch).
    pub fn num_worlds(&self) -> usize {
        self.num_worlds
    }

    /// The number of registered observers.
    pub fn num_observers(&self) -> usize {
        self.observers.len()
    }

    /// Whether an observer with the given [`ShardSupport`] can register
    /// with this batch (always true for monolithic batches).
    pub fn admits(&self, support: ShardSupport) -> bool {
        match &self.source {
            BatchSource::Monolithic(engine) => engine.admits(support),
            BatchSource::Sharded(engine) => engine.admits(support),
        }
    }

    fn check_admits(&self, support: ShardSupport) -> Result<(), BatchError> {
        if self.admits(support) {
            Ok(())
        } else {
            Err(BatchError::Unsupported { support })
        }
    }

    /// Fallibly registers an observer; the returned typed handle redeems
    /// its result from [`BatchResults::take`] after [`QueryBatch::run`].
    ///
    /// Returns [`BatchError::Unsupported`] when the batch is sharded
    /// ([`QueryBatch::from_sharded`]) and the observer is
    /// [`ShardSupport::MonolithicOnly`]. This is the path front-ends such
    /// as `ugs-service` build on; the panicking [`QueryBatch::register`]
    /// wrapper exists only for callers that validated support up front.
    pub fn try_register<O: WorldObserver>(
        &mut self,
        observer: O,
    ) -> Result<ObserverHandle<O>, BatchError> {
        self.check_admits(observer.shard_support())?;
        let index = self.observers.len();
        self.observers.push(Box::new(observer));
        Ok(ObserverHandle {
            batch: self.id,
            index,
            _marker: PhantomData,
        })
    }

    /// Registers an observer; thin shim over [`QueryBatch::try_register`]
    /// kept for callers that validated shard support up front — prefer the
    /// fallible path in new code.
    ///
    /// # Panics
    ///
    /// Panics when the batch is sharded ([`QueryBatch::from_sharded`]) and
    /// the observer is [`ShardSupport::MonolithicOnly`].
    pub fn register<O: WorldObserver>(&mut self, observer: O) -> ObserverHandle<O> {
        self.try_register(observer)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallibly registers a type-erased observer (a dynamic registry entry
    /// — see the [module docs](self#the-dynobserver-layer)); the returned
    /// untyped handle redeems the boxed output from
    /// [`BatchResults::try_take_boxed`] after [`QueryBatch::run`].
    ///
    /// Returns [`BatchError::Unsupported`] when the batch is sharded
    /// ([`QueryBatch::from_sharded`]) and the observer is
    /// [`ShardSupport::MonolithicOnly`].
    pub fn try_register_boxed(&mut self, observer: BoxedObserver) -> Result<DynHandle, BatchError> {
        self.check_admits(observer.shard_support())?;
        let index = self.observers.len();
        self.observers.push(observer.0);
        Ok(DynHandle {
            batch: self.id,
            index,
        })
    }

    /// Registers a type-erased observer; thin shim over
    /// [`QueryBatch::try_register_boxed`] kept for callers that validated
    /// shard support up front — prefer the fallible path in new code.
    ///
    /// # Panics
    ///
    /// Panics when the batch is sharded ([`QueryBatch::from_sharded`]) and
    /// the observer is [`ShardSupport::MonolithicOnly`].
    pub fn register_boxed(&mut self, observer: BoxedObserver) -> DynHandle {
        self.try_register_boxed(observer)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Samples the worlds (each exactly once per worker stream) and feeds
    /// every world to all registered observers.
    ///
    /// Advances the caller RNG by **exactly one** `u64` draw, or zero draws
    /// when `num_worlds == 0` or no observer is registered; see the
    /// [module docs](self) for the full determinism contract.
    pub fn run<R: Rng + ?Sized>(self, rng: &mut R) -> BatchResults {
        let QueryBatch {
            source,
            num_worlds,
            threads,
            id,
            observers,
            precision,
        } = self;
        if num_worlds == 0 || observers.is_empty() {
            return BatchResults {
                id,
                num_worlds,
                slots: observers.into_iter().map(Some).collect(),
                adaptive: None,
            };
        }
        let seed = rng.gen::<u64>();
        match precision {
            None => {
                let merged = match &source {
                    BatchSource::Monolithic(engine) => {
                        drive(engine, num_worlds, threads, observers, seed)
                    }
                    BatchSource::Sharded(engine) => {
                        drive(*engine, num_worlds, threads, observers, seed)
                    }
                };
                BatchResults {
                    id,
                    num_worlds,
                    slots: merged.into_iter().map(Some).collect(),
                    adaptive: None,
                }
            }
            Some(precision) => {
                let cap = precision.cap(num_worlds);
                let (merged, report) = match &source {
                    BatchSource::Monolithic(engine) => {
                        drive_adaptive(engine, cap, threads, observers, seed, &precision, None)
                    }
                    BatchSource::Sharded(engine) => {
                        drive_adaptive(*engine, cap, threads, observers, seed, &precision, None)
                    }
                };
                BatchResults {
                    id,
                    num_worlds: report.worlds_used,
                    slots: merged.into_iter().map(Some).collect(),
                    adaptive: Some(report),
                }
            }
        }
    }
}

/// The replay-partitioned world loop over any [`WorldSource`]: worker `w`
/// re-derives the shared stream from `seed`, advances past the worlds before
/// its contiguous block and observes its own block; partials merge in worker
/// (= world block) order.  The sampled world sequence is independent of the
/// thread count.
fn drive<S: WorldSource>(
    source: &S,
    num_worlds: usize,
    threads: usize,
    mut observers: Vec<Box<dyn DynObserver>>,
    seed: u64,
) -> Vec<Box<dyn DynObserver>> {
    let threads = threads.clamp(1, num_worlds);
    if threads == 1 {
        let mut worker_rng = SmallRng::seed_from_u64(seed);
        let mut scratch = source.make_scratch();
        for _ in 0..num_worlds {
            let view = source.sample_world(&mut worker_rng, &mut scratch);
            observe_all(&mut observers, &view);
        }
        return observers;
    }
    let base = num_worlds / threads;
    let extra = num_worlds % threads;
    let mut partials: Vec<Vec<Box<dyn DynObserver>>> = std::thread::scope(|scope| {
        let observers = &observers;
        let handles: Vec<_> = (0..threads)
            .map(|idx| {
                let count = base + usize::from(idx < extra);
                let skip = base * idx + idx.min(extra);
                let mut workers: Vec<Box<dyn DynObserver>> =
                    observers.iter().map(|o| o.clone_dyn()).collect();
                scope.spawn(move || {
                    let mut worker_rng = SmallRng::seed_from_u64(seed);
                    let mut scratch = source.make_scratch();
                    for _ in 0..skip {
                        source.advance_world(&mut worker_rng, &mut scratch);
                    }
                    for _ in 0..count {
                        let view = source.sample_world(&mut worker_rng, &mut scratch);
                        observe_all(&mut workers, &view);
                    }
                    workers
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("worker thread panicked"))
            .collect()
    });
    drop(observers);
    // Merge the partial observers in worker (= world block) order.
    let mut merged = partials.remove(0);
    for partial in partials {
        for (into, other) in merged.iter_mut().zip(partial) {
            into.merge_dyn(other);
        }
    }
    merged
}

/// Summary of an adaptive ([`Precision`]-driven) batch run, attached to its
/// [`BatchResults`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveReport {
    /// Worlds actually sampled (what every observer's `finalize` divided
    /// by); at most the batch budget.
    pub worlds_used: usize,
    /// Epoch checkpoints run.
    pub epochs: usize,
    /// Pooled empirical-Bernstein half-width at the final checkpoint — the
    /// *achieved* accuracy ([`f64::INFINITY`] when nothing was tracked).
    pub half_width: f64,
    /// Number of observers that fed the stopping rule.
    pub tracked: usize,
    /// Why the run stopped.
    pub stopped: StopReason,
}

/// The adaptive counterpart of [`drive`]: the same replay-partitioned world
/// stream, consumed in epochs of [`Precision::epoch`] worlds with the pooled
/// [`StoppingRule`] consulted at every epoch barrier.
///
/// Thread-count invariance is *bitwise*, by construction: workers do not
/// merge statistic partials — they record each world's raw tracked scalars,
/// and the barrier leader replays them into the rule's accumulators in world
/// order (worker blocks are contiguous, so worker 0's block followed by
/// worker 1's *is* the sequential order).  Every thread count therefore
/// executes the identical sequence of `record`/`check` calls and consumes
/// the same number of worlds.  The wall-clock deadline and the cooperative
/// `cancel` flag are consulted last at each checkpoint, so they can only
/// shorten a run, never change a converged answer.
fn drive_adaptive<S: WorldSource>(
    source: &S,
    cap: usize,
    threads: usize,
    mut observers: Vec<Box<dyn DynObserver>>,
    seed: u64,
    precision: &Precision,
    cancel: Option<&AtomicBool>,
) -> (Vec<Box<dyn DynObserver>>, AdaptiveReport) {
    let cancelled = || cancel.is_some_and(|flag| flag.load(Ordering::SeqCst));
    let tracked: Vec<usize> = observers
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.tracked_range_dyn().map(|_| i))
        .collect();
    let mut rule = StoppingRule::new(*precision);
    for &i in &tracked {
        let (lo, hi) = observers[i]
            .tracked_range_dyn()
            .expect("tracked observer lost its range");
        rule.register(lo, hi);
    }
    if cap == 0 {
        let report = AdaptiveReport {
            worlds_used: 0,
            epochs: 0,
            half_width: f64::INFINITY,
            tracked: tracked.len(),
            stopped: StopReason::BudgetExhausted,
        };
        return (observers, report);
    }
    let epoch = precision.epoch.max(1);
    let threads = threads.clamp(1, cap);
    let started = Instant::now();
    // An already-expired deadline (e.g. `deadline_ms = 0`) stops the run
    // before the first epoch is paid for: `worlds_used` is deterministically
    // zero and the observers come back pristine, instead of charging a full
    // epoch just to notice at the first checkpoint.
    if rule.deadline_expired(started) {
        let report = AdaptiveReport {
            worlds_used: 0,
            epochs: 0,
            half_width: f64::INFINITY,
            tracked: tracked.len(),
            stopped: StopReason::DeadlineExpired,
        };
        return (observers, report);
    }

    if threads == 1 {
        let mut worker_rng = SmallRng::seed_from_u64(seed);
        let mut scratch = source.make_scratch();
        let mut consumed = 0usize;
        let stopped = loop {
            let block = epoch.min(cap - consumed);
            for _ in 0..block {
                let view = source.sample_world(&mut worker_rng, &mut scratch);
                observe_all(&mut observers, &view);
                for (slot, &i) in tracked.iter().enumerate() {
                    rule.record(slot, observers[i].tracked_statistic_dyn());
                }
            }
            consumed += block;
            if rule.check() {
                break StopReason::Converged;
            }
            if consumed >= cap {
                break StopReason::BudgetExhausted;
            }
            if rule.deadline_expired(started) {
                break StopReason::DeadlineExpired;
            }
            if cancelled() {
                break StopReason::Cancelled;
            }
        };
        let report = AdaptiveReport {
            worlds_used: consumed,
            epochs: rule.checks() as usize,
            half_width: rule.half_width(),
            tracked: tracked.len(),
            stopped,
        };
        return (observers, report);
    }

    let barrier = Barrier::new(threads);
    let rule_mx = Mutex::new(rule);
    // One buffer set per worker: this epoch's raw per-world statistics, in
    // the worker's block order.  Swapped (not copied) across the barrier.
    let stat_slots: Vec<Mutex<Vec<Vec<f64>>>> = (0..threads)
        .map(|_| Mutex::new(vec![Vec::new(); tracked.len()]))
        .collect();
    // 0 = keep sampling; otherwise a StopReason discriminant (set by the
    // barrier leader between the two waits of each epoch, read by every
    // worker after the second wait — never concurrently).
    let decision = AtomicUsize::new(0);
    let mut partials: Vec<Vec<Box<dyn DynObserver>>> = std::thread::scope(|scope| {
        let observers = &observers;
        let tracked = &tracked;
        let barrier = &barrier;
        let rule_mx = &rule_mx;
        let stat_slots = &stat_slots;
        let decision = &decision;
        let handles: Vec<_> = (0..threads)
            .map(|idx| {
                let mut workers: Vec<Box<dyn DynObserver>> =
                    observers.iter().map(|o| o.clone_dyn()).collect();
                scope.spawn(move || {
                    let mut worker_rng = SmallRng::seed_from_u64(seed);
                    let mut scratch = source.make_scratch();
                    // Position of this worker's RNG in the shared stream.
                    let mut pos = 0usize;
                    // Worlds consumed globally before the current epoch
                    // (every worker tracks the same value).
                    let mut consumed = 0usize;
                    let mut my_stats: Vec<Vec<f64>> = vec![Vec::new(); tracked.len()];
                    loop {
                        let block = epoch.min(cap - consumed);
                        let base = block / threads;
                        let extra = block % threads;
                        let count = base + usize::from(idx < extra);
                        let start = consumed + base * idx + idx.min(extra);
                        for s in my_stats.iter_mut() {
                            s.clear();
                        }
                        for _ in 0..(start - pos) {
                            source.advance_world(&mut worker_rng, &mut scratch);
                        }
                        for _ in 0..count {
                            let view = source.sample_world(&mut worker_rng, &mut scratch);
                            observe_all(&mut workers, &view);
                            for (slot, &i) in tracked.iter().enumerate() {
                                my_stats[slot].push(workers[i].tracked_statistic_dyn());
                            }
                        }
                        pos = start + count;
                        {
                            let mut slot = stat_slots[idx].lock().expect("stat slot poisoned");
                            std::mem::swap(&mut *slot, &mut my_stats);
                        }
                        if barrier.wait().is_leader() {
                            let mut rule = rule_mx.lock().expect("stopping rule poisoned");
                            let guards: Vec<_> = stat_slots
                                .iter()
                                .map(|s| s.lock().expect("stat slot poisoned"))
                                .collect();
                            // Replay in world order: contiguous worker
                            // blocks, so worker-by-worker IS the sequential
                            // order — the accumulators evolve bit-identically
                            // for every thread count.
                            for (w, guard) in guards.iter().enumerate() {
                                let count_w = base + usize::from(w < extra);
                                for i in 0..count_w {
                                    for slot in 0..tracked.len() {
                                        rule.record(slot, guard[slot][i]);
                                    }
                                }
                            }
                            drop(guards);
                            let total = consumed + block;
                            let verdict = if rule.check() {
                                1
                            } else if total >= cap {
                                2
                            } else if rule.deadline_expired(started) {
                                3
                            } else if cancelled() {
                                4
                            } else {
                                0
                            };
                            decision.store(verdict, Ordering::SeqCst);
                        }
                        barrier.wait();
                        {
                            // Reclaim the still-allocated buffers.
                            let mut slot = stat_slots[idx].lock().expect("stat slot poisoned");
                            std::mem::swap(&mut *slot, &mut my_stats);
                        }
                        consumed += block;
                        if decision.load(Ordering::SeqCst) != 0 {
                            break;
                        }
                    }
                    workers
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("worker thread panicked"))
            .collect()
    });
    drop(observers);
    let mut merged = partials.remove(0);
    for partial in partials {
        for (into, other) in merged.iter_mut().zip(partial) {
            into.merge_dyn(other);
        }
    }
    let rule = rule_mx.into_inner().expect("stopping rule poisoned");
    let epochs = rule.checks() as usize;
    let stopped = match decision.load(Ordering::SeqCst) {
        1 => StopReason::Converged,
        2 => StopReason::BudgetExhausted,
        3 => StopReason::DeadlineExpired,
        4 => StopReason::Cancelled,
        other => unreachable!("adaptive run finished without a verdict ({other})"),
    };
    let report = AdaptiveReport {
        worlds_used: (epochs * epoch).min(cap),
        epochs,
        half_width: rule.half_width(),
        tracked: tracked.len(),
        stopped,
    };
    (merged, report)
}

/// Runs the adaptive epoch loop over a type-erased observer registry for an
/// **external driver** (the streaming service), which draws the batch seed
/// from its own stream: the merged observers come back in worker order,
/// ready for [`BatchResults::from_merged`] with
/// [`AdaptiveReport::worlds_used`] as the world count.
pub fn run_adaptive_merged<S: WorldSource>(
    source: &S,
    observers: Vec<BoxedObserver>,
    num_worlds: usize,
    threads: usize,
    seed: u64,
    precision: &Precision,
) -> (Vec<BoxedObserver>, AdaptiveReport) {
    run_adaptive_cancellable(
        source, observers, num_worlds, threads, seed, precision, None,
    )
}

/// [`run_adaptive_merged`] with a cooperative cancellation flag: when
/// `cancel` is raised the run aborts at the **next epoch checkpoint**
/// (after convergence, budget and deadline are consulted — cancellation can
/// only shorten a run, never change a converged answer) and the report
/// comes back with [`StopReason::Cancelled`].  The observers still reflect
/// every world consumed before the abort, so partial results remain
/// well-defined.  `cancel == None` never cancels.
pub fn run_adaptive_cancellable<S: WorldSource>(
    source: &S,
    observers: Vec<BoxedObserver>,
    num_worlds: usize,
    threads: usize,
    seed: u64,
    precision: &Precision,
    cancel: Option<&AtomicBool>,
) -> (Vec<BoxedObserver>, AdaptiveReport) {
    let cap = precision.cap(num_worlds);
    let dyns: Vec<Box<dyn DynObserver>> = observers.into_iter().map(|o| o.0).collect();
    let (merged, report) =
        drive_adaptive(source, cap, threads.max(1), dyns, seed, precision, cancel);
    (merged.into_iter().map(BoxedObserver).collect(), report)
}

/// Dispatches one world view to every observer (the view kind is fixed per
/// source, so the match is loop-invariant in practice).
fn observe_all(observers: &mut [Box<dyn DynObserver>], view: &WorldView<'_>) {
    match view {
        WorldView::Monolithic(world) => {
            for observer in observers.iter_mut() {
                observer.observe_dyn(world);
            }
        }
        WorldView::Sharded(world) => {
            for observer in observers.iter_mut() {
                observer.observe_sharded_dyn(world);
            }
        }
    }
}

impl std::fmt::Debug for QueryBatch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBatch")
            .field("num_worlds", &self.num_worlds)
            .field("threads", &self.threads)
            .field("observers", &self.observers.len())
            .finish()
    }
}

/// The finished observers of a batch run; redeem each with
/// [`BatchResults::take`] using the handle from [`QueryBatch::register`].
pub struct BatchResults {
    id: u64,
    num_worlds: usize,
    slots: Vec<Option<Box<dyn DynObserver>>>,
    adaptive: Option<AdaptiveReport>,
}

impl BatchResults {
    /// Assembles results from observers that were sharded and merged by an
    /// external driver (a service running its own persistent worker pool):
    /// the observers must already be fully merged in worker order, and
    /// `num_worlds` is the total sampled across all workers.  Returns the
    /// results plus one [`DynHandle`] per observer, index-aligned with
    /// `observers`, so redemption goes through the same fallible
    /// [`BatchResults::try_take_boxed`] path as a locally-run batch.
    pub fn from_merged(observers: Vec<BoxedObserver>, num_worlds: usize) -> (Self, Vec<DynHandle>) {
        let id = BATCH_IDS.fetch_add(1, Ordering::Relaxed);
        let handles = (0..observers.len())
            .map(|index| DynHandle { batch: id, index })
            .collect();
        let results = BatchResults {
            id,
            num_worlds,
            slots: observers.into_iter().map(|o| Some(o.0)).collect(),
            adaptive: None,
        };
        (results, handles)
    }

    /// Attaches the [`AdaptiveReport`] of an externally-driven adaptive run
    /// (pairs with [`run_adaptive_merged`] + [`BatchResults::from_merged`]).
    pub fn with_adaptive(mut self, report: AdaptiveReport) -> Self {
        self.adaptive = Some(report);
        self
    }

    /// The adaptive run's outcome, when the batch had a [`Precision`]
    /// target; `None` for fixed-budget runs.
    pub fn adaptive(&self) -> Option<&AdaptiveReport> {
        self.adaptive.as_ref()
    }

    /// The number of worlds that were sampled.
    pub fn num_worlds(&self) -> usize {
        self.num_worlds
    }

    /// Finalises and returns one observer's result.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from a different batch or the result was
    /// already taken; [`BatchResults::try_take`] is the non-panicking
    /// equivalent.
    pub fn take<O: WorldObserver>(&mut self, handle: ObserverHandle<O>) -> O::Output {
        self.try_take(handle).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finalises and returns one observer's result, or a [`BatchError`]
    /// when the handle belongs to a different batch or was already
    /// redeemed.
    pub fn try_take<O: WorldObserver>(
        &mut self,
        handle: ObserverHandle<O>,
    ) -> Result<O::Output, BatchError> {
        let observer = self.take_slot(handle.batch, handle.index)?;
        let observer = observer
            .into_any()
            .downcast::<O>()
            .expect("observer handle type mismatch");
        Ok(observer.finalize(self.num_worlds))
    }

    /// Finalises one type-erased observer to its boxed output, or a
    /// [`BatchError`] when the handle belongs to a different batch or was
    /// already redeemed.  The caller downcasts the `Box<dyn Any + Send>`
    /// with its knowledge of the registered query.
    pub fn try_take_boxed(&mut self, handle: DynHandle) -> Result<Box<dyn Any + Send>, BatchError> {
        let observer = self.take_slot(handle.batch, handle.index)?;
        Ok(observer.finalize_dyn(self.num_worlds))
    }

    fn take_slot(&mut self, batch: u64, index: usize) -> Result<Box<dyn DynObserver>, BatchError> {
        if batch != self.id {
            return Err(BatchError::WrongBatch {
                results: self.id,
                handle: batch,
            });
        }
        self.slots
            .get_mut(index)
            .and_then(Option::take)
            .ok_or(BatchError::AlreadyTaken { index })
    }
}

impl std::fmt::Debug for BatchResults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchResults")
            .field("num_worlds", &self.num_worlds)
            .field(
                "pending",
                &self.slots.iter().filter(|s| s.is_some()).count(),
            )
            .finish()
    }
}

/// Observer counting how often every edge of the support graph appears in
/// the sampled worlds; finalises to per-edge empirical frequencies (indexed
/// by edge id).  Allocation-free per world — a convenient smoke observer and
/// the cheapest way to validate sampling against edge probabilities.
#[derive(Debug, Clone)]
pub struct EdgeFrequencyObserver {
    counts: Vec<f64>,
    last_fraction: f64,
}

impl EdgeFrequencyObserver {
    /// An observer for the edges of `g`.
    pub fn new(g: &UncertainGraph) -> Self {
        EdgeFrequencyObserver {
            counts: vec![0.0; g.num_edges()],
            last_fraction: f64::NAN,
        }
    }
}

impl WorldObserver for EdgeFrequencyObserver {
    type Output = Vec<f64>;

    fn observe(&mut self, world: &WorldScratch) {
        for &e in world.present_edges() {
            self.counts[e as usize] += 1.0;
        }
        self.last_fraction = world.present_edges().len() as f64 / self.counts.len() as f64;
    }

    fn shard_support(&self) -> ShardSupport {
        ShardSupport::CutAware
    }

    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        // Per-shard partial: every present intra-shard edge counts under its
        // stable global id.  Cut correction: the boundary pass counts every
        // present cut edge exactly once.  Integer increments into the same
        // slots as the monolithic path, so the totals are bit-identical.
        let partition = world.partition();
        for (s, shard) in partition.shards().iter().enumerate() {
            for &e in world.shard_present(s) {
                self.counts[shard.global_edge(e as usize)] += 1.0;
            }
        }
        for &c in world.present_cuts() {
            self.counts[partition.cut_edge(c as usize).edge] += 1.0;
        }
        let present: usize = (0..partition.shards().len())
            .map(|s| world.shard_present(s).len())
            .sum::<usize>()
            + world.present_cuts().len();
        self.last_fraction = present as f64 / self.counts.len() as f64;
    }

    /// Tracked statistic: the fraction of support edges present in the last
    /// world, a `[0, 1]` mean whose MC estimate converges to the graph's
    /// mean edge probability.
    fn tracked_range(&self) -> Option<(f64, f64)> {
        (!self.counts.is_empty()).then_some((0.0, 1.0))
    }

    fn tracked_statistic(&self) -> f64 {
        self.last_fraction
    }

    fn merge(&mut self, other: Self) {
        for (t, o) in self.counts.iter_mut().zip(other.counts) {
            *t += o;
        }
    }

    fn finalize(self, num_worlds: usize) -> Vec<f64> {
        if num_worlds == 0 {
            return self.counts;
        }
        self.counts
            .into_iter()
            .map(|c| c / num_worlds as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SampleMethod;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(4, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn edge_frequencies_match_probabilities() {
        let g = toy();
        let mc = MonteCarlo::worlds(30_000).with_method(SampleMethod::Skip);
        let mut batch = QueryBatch::new(&g, &mc);
        let handle = batch.register(EdgeFrequencyObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(3);
        let freq = batch.run(&mut rng).take(handle);
        for (f, p) in freq.iter().zip([0.5, 0.25, 1.0]) {
            assert!((f - p).abs() < 0.01, "{f} vs {p}");
        }
    }

    #[test]
    fn run_consumes_exactly_one_seed_draw() {
        let g = toy();
        let mc = MonteCarlo::worlds(50).with_threads(4);
        let mut batch = QueryBatch::new(&g, &mc);
        let _ = batch.register(EdgeFrequencyObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(11);
        batch.run(&mut rng);
        let mut expected = SmallRng::seed_from_u64(11);
        expected.gen::<u64>();
        assert_eq!(rng.gen::<u64>(), expected.gen::<u64>());
    }

    #[test]
    fn empty_batches_do_not_consume_the_rng() {
        let g = toy();
        // no observers
        let batch = QueryBatch::new(&g, &MonteCarlo::worlds(50));
        let mut rng = SmallRng::seed_from_u64(5);
        batch.run(&mut rng);
        // zero worlds
        let mut batch = QueryBatch::new(&g, &MonteCarlo::worlds(0));
        let handle = batch.register(EdgeFrequencyObserver::new(&g));
        let mut results = batch.run(&mut rng);
        assert_eq!(results.take(handle), vec![0.0; 3]);
        let mut untouched = SmallRng::seed_from_u64(5);
        assert_eq!(rng.gen::<u64>(), untouched.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "different batch")]
    fn foreign_handles_are_rejected() {
        let g = toy();
        let mc = MonteCarlo::worlds(5);
        let mut batch_a = QueryBatch::new(&g, &mc);
        let handle_a = batch_a.register(EdgeFrequencyObserver::new(&g));
        let mut batch_b = QueryBatch::new(&g, &mc);
        let _ = batch_b.register(EdgeFrequencyObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut results_b = batch_b.run(&mut rng);
        let _ = results_b.take(handle_a);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_panics() {
        let g = toy();
        let mut batch = QueryBatch::new(&g, &MonteCarlo::worlds(5));
        let handle = batch.register(EdgeFrequencyObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut results = batch.run(&mut rng);
        let _ = results.take(handle);
        let _ = results.take(handle);
    }

    #[test]
    fn try_take_reports_errors_instead_of_panicking() {
        let g = toy();
        let mc = MonteCarlo::worlds(5);
        let mut batch_a = QueryBatch::new(&g, &mc);
        let handle_a = batch_a.register(EdgeFrequencyObserver::new(&g));
        let mut batch_b = QueryBatch::new(&g, &mc);
        let handle_b = batch_b.register(EdgeFrequencyObserver::new(&g));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut results_b = batch_b.run(&mut rng);
        assert!(matches!(
            results_b.try_take(handle_a),
            Err(BatchError::WrongBatch { .. })
        ));
        assert!(results_b.try_take(handle_b).is_ok());
        assert_eq!(
            results_b.try_take(handle_b),
            Err(BatchError::AlreadyTaken { index: 0 })
        );
    }

    /// A deliberately `MonolithicOnly` observer (default `shard_support`).
    #[derive(Debug, Clone)]
    struct MonolithicProbe;

    impl WorldObserver for MonolithicProbe {
        type Output = ();

        fn observe(&mut self, _world: &WorldScratch) {}

        fn merge(&mut self, _other: Self) {}

        fn finalize(self, _num_worlds: usize) {}
    }

    #[test]
    fn try_register_rejects_unsupported_observers_with_a_typed_error() {
        use crate::sharded::ShardedWorldEngine;
        use uncertain_graph::GraphPartition;

        let g = toy();
        let partition = GraphPartition::contiguous(&g, 2).unwrap();
        let engine = ShardedWorldEngine::new(&g, &partition);
        let mut batch = QueryBatch::from_sharded(&engine, 10, 1);
        let err = batch.try_register(MonolithicProbe).unwrap_err();
        assert_eq!(
            err,
            BatchError::Unsupported {
                support: ShardSupport::MonolithicOnly
            }
        );
        let err = batch
            .try_register_boxed(BoxedObserver::new(MonolithicProbe))
            .unwrap_err();
        assert!(matches!(err, BatchError::Unsupported { .. }));
        assert_eq!(
            batch.num_observers(),
            0,
            "failed registrations leave no slot"
        );
        // Cut-aware observers still register, typed and boxed alike.
        assert!(batch.try_register(EdgeFrequencyObserver::new(&g)).is_ok());
        // Monolithic batches admit everything.
        let mut mono = QueryBatch::new(&g, &MonteCarlo::worlds(5));
        assert!(mono.try_register(MonolithicProbe).is_ok());
    }

    #[test]
    #[should_panic(expected = "no sharded path")]
    fn register_shim_still_panics_on_unsupported_observers() {
        use crate::sharded::ShardedWorldEngine;
        use uncertain_graph::GraphPartition;

        let g = toy();
        let partition = GraphPartition::contiguous(&g, 2).unwrap();
        let engine = ShardedWorldEngine::new(&g, &partition);
        let mut batch = QueryBatch::from_sharded(&engine, 10, 1);
        let _ = batch.register(MonolithicProbe);
    }

    #[test]
    fn boxed_observers_run_through_the_dyn_registry() {
        // The same worlds, registered typed in one batch and type-erased in
        // another, must produce bit-identical outputs.
        let g = toy();
        let mc = MonteCarlo::worlds(200);
        let mut rng_typed = SmallRng::seed_from_u64(9);
        let mut typed = QueryBatch::new(&g, &mc);
        let h_typed = typed.register(EdgeFrequencyObserver::new(&g));
        let expected = typed.run(&mut rng_typed).take(h_typed);

        let mut rng_dyn = SmallRng::seed_from_u64(9);
        let mut erased = QueryBatch::new(&g, &mc);
        let h_dyn = erased.register_boxed(BoxedObserver::new(EdgeFrequencyObserver::new(&g)));
        let mut results = erased.run(&mut rng_dyn);
        let boxed = results.try_take_boxed(h_dyn).unwrap();
        let freq = *boxed.downcast::<Vec<f64>>().expect("edge frequencies");
        assert_eq!(freq, expected);
        assert!(matches!(
            results.try_take_boxed(h_dyn),
            Err(BatchError::AlreadyTaken { .. })
        ));
    }

    #[test]
    fn from_merged_matches_the_batch_driver() {
        // Drive the observe/merge lifecycle by hand through BoxedObserver
        // (two "workers" over the replayed world stream, exactly like a
        // sharded service) and redeem through from_merged: the result must
        // equal the 2-thread QueryBatch run bit for bit.
        let g = toy();
        let worlds = 101;
        let mc = MonteCarlo::worlds(worlds).with_threads(2);
        let mut rng = SmallRng::seed_from_u64(33);
        let mut batch = QueryBatch::new(&g, &mc);
        let handle = batch.register(EdgeFrequencyObserver::new(&g));
        let expected = batch.run(&mut rng).take(handle);
        let seed = {
            // Recover the batch seed the driver drew from the caller RNG.
            let mut replay = SmallRng::seed_from_u64(33);
            replay.gen::<u64>()
        };

        let engine = WorldEngine::new(&g);
        let template = BoxedObserver::new(EdgeFrequencyObserver::new(&g));
        let (base, extra) = (worlds / 2, worlds % 2);
        let mut partials = Vec::new();
        for worker in 0..2 {
            let count = base + usize::from(worker < extra);
            let skip = base * worker + worker.min(extra);
            let mut observer = template.clone();
            let mut worker_rng = SmallRng::seed_from_u64(seed);
            let mut scratch = engine.make_scratch();
            for _ in 0..skip {
                engine.advance_world(&mut worker_rng, &mut scratch);
            }
            for _ in 0..count {
                engine.sample_world(&mut worker_rng, &mut scratch);
                observer.observe(&scratch);
            }
            partials.push(observer);
        }
        let mut merged = partials.remove(0);
        merged.merge(partials.remove(0));
        let (mut results, handles) = BatchResults::from_merged(vec![merged], worlds);
        assert_eq!(results.num_worlds(), worlds);
        let freq = *results
            .try_take_boxed(handles[0])
            .unwrap()
            .downcast::<Vec<f64>>()
            .unwrap();
        assert_eq!(freq, expected);
    }
}
