//! Ghost-halo exchange: superstep evaluation of neighbourhood queries
//! (PageRank, clustering coefficients, k-NN) over sharded worlds.
//!
//! Count-style queries cross shard boundaries with a *cut correction* (DSU
//! gluing, boundary degree stamps).  Neighbourhood queries cannot: PageRank
//! needs every neighbour's rank each iteration, and a clustering coefficient
//! needs the edges *among* a vertex's neighbours.  This module closes that
//! gap with a ghost halo: every shard replicates the cut endpoints owned by
//! other shards (its *ghosts*, [`uncertain_graph::HaloPlan`]) plus all
//! support edges inside that extended vertex set, filters them by the
//! current world's edge presence ([`WorldPresence`]), runs the kernel
//! locally, and exchanges boundary values between supersteps —
//! Pregel-style iteration for PageRank, one-shot halo materialisation for
//! clustering, frontier exchange for BFS/k-NN.
//!
//! # PageRank iteration equivalence
//!
//! The sharded PageRank is not merely "close" to the monolithic kernel
//! (`graph_algos::pagerank::pagerank`) — it reproduces it **bit for bit**,
//! iteration for iteration.  The argument, term by term:
//!
//! * **Per-target fold order.**  The monolithic kernel walks sources `u`
//!   in ascending order and adds `damping · rank[u] / deg(u)` into each
//!   neighbour.  For a fixed target `v`, the additions into `next[v]`
//!   therefore arrive in ascending source order (ties in ascending edge
//!   order).  A shard's push list ([`uncertain_graph::PushEdge`]) is sorted
//!   by `(global source, edge)` and covers exactly the edges with an owned
//!   target, so each owned `next[v]` folds the identical addends in the
//!   identical order — and floating-point addition, while not associative,
//!   is deterministic for a fixed sequence.  The share is recomputed per
//!   edge as the same expression `damping * rank_u / deg` the monolithic
//!   kernel hoists per source, which yields the same bits each time.
//! * **Dangling mass.**  Every dangling (world-degree-0) vertex holds the
//!   same rank bits in every iteration: initially all ranks are `1/n`, and
//!   a dangling vertex receives no pushes, so its next rank is exactly the
//!   common `base`.  The monolithic dangling sum — a left fold of `k` equal
//!   values over ascending vertex ids — is therefore [`dangling_mass`]`(r_d,
//!   k)`: `k` repeated additions of the shared dangling rank `r_d`, which
//!   any shard can replay locally from the global dangling count, no
//!   exchange needed.  The driver tracks `r_d` as `1/n` initially and the
//!   previous iteration's `base` thereafter.
//! * **Convergence delta.**  The monolithic `delta` is a left fold of
//!   `|rank[v] − next[v]|` over `v = 0..n` ascending.  In process, each
//!   shard writes its owned diffs into a global buffer that is folded once
//!   in ascending global order ([`ShardPageRank::write_diffs`]) — exact for
//!   *any* labelling.  Across processes, the coordinator threads an
//!   accumulator through the shards in ascending shard order
//!   ([`ShardPageRank::fold_delta`]); for contiguous partitions (the only
//!   kind the distributed fleet deploys) shard-order traversal of owned
//!   vertices *is* ascending global order, so the chained fold reproduces
//!   the monolithic fold exactly.
//!
//! Identical per-iteration ranks and an identical delta give an identical
//! stop decision (`delta < tolerance`), hence the same iteration count and
//! bitwise-identical final ranks: iteration equivalence in the strongest
//! sense.
//!
//! Clustering coefficients are exact because `cc(v)` is a pure function of
//! integer degree and triangle counts, and the present-filtered halo world
//! of `v`'s shard contains `v`'s full neighbourhood plus every present edge
//! among it (ghost–ghost edges included).  BFS distances are integers and
//! order-free, so the frontier-exchange variant trivially matches.
//!
//! # Example: sharded PageRank, bit-identical to monolithic
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use uncertain_graph::{GraphPartition, UncertainGraph};
//! use ugs_queries::batch::QueryBatch;
//! use ugs_queries::mc::MonteCarlo;
//! use ugs_queries::node_queries::PageRankObserver;
//! use ugs_queries::sharded::ShardedWorldEngine;
//!
//! let g = UncertainGraph::from_edges(
//!     6,
//!     [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.6), (3, 4, 0.7), (4, 5, 0.5), (5, 0, 0.4)],
//! )
//! .unwrap();
//! let partition = GraphPartition::contiguous(&g, 2).unwrap();
//! let engine = ShardedWorldEngine::new(&g, &partition);
//!
//! // Same world budget and thread count as the monolithic batch below —
//! // per-world ranks are bitwise equal, so equal accumulation structure
//! // makes the *expectations* bitwise equal too.
//! let mut sharded = QueryBatch::from_sharded(&engine, 50, 1);
//! let hs = sharded.register(PageRankObserver::new(&g));
//! let sharded_pr = sharded.run(&mut SmallRng::seed_from_u64(9)).take(hs);
//!
//! let mut monolithic = QueryBatch::new(&g, &MonteCarlo::worlds(50));
//! let hm = monolithic.register(PageRankObserver::new(&g));
//! let monolithic_pr = monolithic.run(&mut SmallRng::seed_from_u64(9)).take(hm);
//!
//! // Not approximately equal: the same bits.
//! for (s, m) in sharded_pr.iter().zip(monolithic_pr.iter()) {
//!     assert_eq!(s.to_bits(), m.to_bits());
//! }
//! ```

use graph_algos::clustering::local_clustering_coefficients;
use graph_algos::pagerank::PageRankConfig;
use graph_algos::DeterministicGraph;
use uncertain_graph::{HaloPlan, ShardHalo, UncertainGraph, VertexId};

use crate::sharded::ShardedWorld;

/// Global edge-presence and degree structure of one sampled world, stamped
/// from the replayed full-graph present list that every shard-aware
/// consumer holds.  Resets incrementally between worlds (O(previous
/// present)), so steady-state stamping allocates nothing.
#[derive(Debug, Clone)]
pub struct WorldPresence {
    num_vertices: usize,
    present: Vec<bool>,
    degrees: Vec<u32>,
    touched_edges: Vec<u32>,
    touched_vertices: Vec<u32>,
}

impl WorldPresence {
    /// Pre-sized presence buffers for worlds of `g`.
    pub fn new(g: &UncertainGraph) -> Self {
        WorldPresence {
            num_vertices: g.num_vertices(),
            present: vec![false; g.num_edges()],
            degrees: vec![0; g.num_vertices()],
            touched_edges: Vec::with_capacity(g.num_edges()),
            touched_vertices: Vec::with_capacity(g.num_vertices()),
        }
    }

    /// Stamps the world whose present global edge ids are `present_edges`,
    /// rebuilding the per-vertex world degrees and the dangling count.
    pub fn stamp(&mut self, g: &UncertainGraph, present_edges: &[u32]) {
        let WorldPresence {
            present,
            degrees,
            touched_edges,
            touched_vertices,
            ..
        } = self;
        for &e in touched_edges.iter() {
            present[e as usize] = false;
        }
        for &v in touched_vertices.iter() {
            degrees[v as usize] = 0;
        }
        touched_edges.clear();
        touched_vertices.clear();
        for &e in present_edges {
            present[e as usize] = true;
            touched_edges.push(e);
            let (u, v) = g.edge_endpoints(e as usize);
            if degrees[u] == 0 {
                touched_vertices.push(u as u32);
            }
            degrees[u] += 1;
            if degrees[v] == 0 {
                touched_vertices.push(v as u32);
            }
            degrees[v] += 1;
        }
    }

    /// Whether global edge `e` is present in the stamped world.
    #[inline]
    pub fn edge_present(&self, e: u32) -> bool {
        self.present[e as usize]
    }

    /// World degree of global vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.degrees[v as usize]
    }

    /// Number of dangling (world-degree-0) vertices.
    pub fn dangling(&self) -> usize {
        self.num_vertices - self.touched_vertices.len()
    }
}

/// The monolithic kernel's dangling-mass sum, replayed locally: `count`
/// repeated additions of the shared dangling rank `rank_d` onto `0.0` —
/// bitwise the same left fold the monolithic kernel performs over ascending
/// vertex ids, because all dangling ranks carry identical bits (see the
/// [module docs](self)).
pub fn dangling_mass(rank_d: f64, count: usize) -> f64 {
    let mut acc = 0.0;
    for _ in 0..count {
        acc += rank_d;
    }
    acc
}

/// Per-shard PageRank superstep state: a halo-local rank vector (owned
/// vertices first, then ghosts in plan order) and the owned `next` buffer.
#[derive(Debug, Clone)]
pub struct ShardPageRank {
    owned: usize,
    rank: Vec<f64>,
    next: Vec<f64>,
}

impl ShardPageRank {
    /// State sized for one shard's halo.
    pub fn new(halo: &ShardHalo) -> Self {
        ShardPageRank {
            owned: halo.owned(),
            rank: vec![0.0; halo.halo_len()],
            next: vec![0.0; halo.owned()],
        }
    }

    /// Resets every rank (owned and ghost) to the uniform start value.
    pub fn reset(&mut self, uniform: f64) {
        self.rank.fill(uniform);
    }

    /// Installs an exchanged ghost rank (`ghost` indexes
    /// [`ShardHalo::ghosts`]).
    #[inline]
    pub fn set_ghost_rank(&mut self, ghost: usize, rank: f64) {
        self.rank[self.owned + ghost] = rank;
    }

    /// Installs a rank by halo-local id (used by the wire path, which
    /// addresses ghosts through [`ShardHalo::halo_index`]).
    #[inline]
    pub fn set_halo_rank(&mut self, halo_local: usize, rank: f64) {
        self.rank[halo_local] = rank;
    }

    /// Current rank of a halo-local vertex.
    #[inline]
    pub fn halo_rank(&self, halo_local: usize) -> f64 {
        self.rank[halo_local]
    }

    /// One push superstep: refills the owned `next` buffer with `base` and
    /// folds the present push contributions in `(global source, edge)`
    /// order — the monolithic per-target order (see the [module
    /// docs](self)).  Ranks of ghost sources must have been exchanged for
    /// this iteration first.
    pub fn superstep(
        &mut self,
        halo: &ShardHalo,
        presence: &WorldPresence,
        damping: f64,
        base: f64,
    ) {
        self.next.fill(base);
        for push in halo.push_edges() {
            if presence.edge_present(push.edge) {
                let rank_u = self.rank[push.source_halo as usize];
                let deg = presence.degree(push.source);
                self.next[push.target_local as usize] += damping * rank_u / deg as f64;
            }
        }
    }

    /// Writes the owned `|rank − next|` terms into a *global* diff buffer
    /// (`owned_globals` = the shard's local→global vertex map); folding
    /// that buffer once over ascending global ids reproduces the monolithic
    /// delta for any labelling.
    pub fn write_diffs(&self, owned_globals: &[VertexId], diffs: &mut [f64]) {
        for (local, &global) in owned_globals.iter().enumerate() {
            diffs[global] = (self.rank[local] - self.next[local]).abs();
        }
    }

    /// Chains the owned `|rank − next|` terms onto `acc` in ascending
    /// owned-local order — for contiguous partitions, threading the
    /// accumulator through shards `0, 1, …` reproduces the monolithic
    /// ascending-vertex fold exactly.
    pub fn fold_delta(&self, mut acc: f64) -> f64 {
        for local in 0..self.owned {
            acc += (self.rank[local] - self.next[local]).abs();
        }
        acc
    }

    /// Commits the superstep: owned ranks take the `next` values.
    pub fn commit(&mut self) {
        self.rank[..self.owned].copy_from_slice(&self.next);
    }

    /// The owned ranks (halo-local ids `0..owned`).
    pub fn owned_ranks(&self) -> &[f64] {
        &self.rank[..self.owned]
    }
}

/// In-process sharded PageRank driver: per-shard [`ShardPageRank`] states
/// exchanging boundary ranks through a global rank board each superstep.
/// Produces bitwise the monolithic `pagerank` result on every world (see
/// the [module docs](self) for the argument).
#[derive(Debug, Clone, Default)]
pub struct HaloPageRank {
    states: Vec<ShardPageRank>,
    /// Global rank board: the in-process form of the boundary exchange.
    board: Vec<f64>,
    diffs: Vec<f64>,
    presence: Option<WorldPresence>,
}

impl HaloPageRank {
    /// An empty driver; buffers are sized lazily on the first world.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, view: &ShardedWorld<'_>, plan: &HaloPlan) {
        if self.presence.is_none() {
            self.presence = Some(WorldPresence::new(view.graph()));
            self.states = (0..plan.num_shards())
                .map(|s| ShardPageRank::new(plan.shard(s)))
                .collect();
            self.board = vec![0.0; view.num_vertices()];
            self.diffs = vec![0.0; view.num_vertices()];
        }
    }

    /// Runs the superstep loop on the current world of `view`; the returned
    /// slice holds the final global ranks.
    ///
    /// Callers must short-circuit 1-shard views to the monolithic kernel
    /// (their replay scatter skips the full-graph present list this driver
    /// stamps presence from).
    pub fn run(&mut self, view: &ShardedWorld<'_>, config: &PageRankConfig) -> &[f64] {
        let plan = view.halo_plan();
        let partition = view.partition();
        let n = view.num_vertices();
        self.ensure(view, plan);
        if n == 0 {
            return &self.board;
        }
        let presence = self.presence.as_mut().expect("ensured above");
        presence.stamp(view.graph(), view.all_present());
        let uniform = 1.0 / n as f64;
        self.board.fill(uniform);
        for state in &mut self.states {
            state.reset(uniform);
        }
        let mut rank_d = uniform;
        for _ in 0..config.max_iterations {
            let mass = dangling_mass(rank_d, presence.dangling());
            let base = (1.0 - config.damping) * uniform + config.damping * mass * uniform;
            for (s, state) in self.states.iter_mut().enumerate() {
                let halo = plan.shard(s);
                for (j, &ghost) in halo.ghosts().iter().enumerate() {
                    state.set_ghost_rank(j, self.board[ghost]);
                }
                state.superstep(halo, presence, config.damping, base);
            }
            for (s, state) in self.states.iter().enumerate() {
                state.write_diffs(partition.shard(s).vertices(), &mut self.diffs);
            }
            let delta: f64 = self.diffs.iter().sum();
            for (s, state) in self.states.iter_mut().enumerate() {
                state.commit();
                for (local, &global) in partition.shard(s).vertices().iter().enumerate() {
                    self.board[global] = state.owned_ranks()[local];
                }
            }
            rank_d = base;
            if delta < config.tolerance {
                break;
            }
        }
        &self.board
    }
}

/// One-shot halo materialisation for clustering coefficients: per shard,
/// filter the halo edge set by world presence, materialise the halo world,
/// run the monolithic clustering kernel, and keep the owned coefficients.
#[derive(Debug, Clone)]
pub struct HaloClustering {
    presence: Option<WorldPresence>,
    endpoints: Vec<(u32, u32)>,
    world: DeterministicGraph,
    coefficients: Vec<f64>,
}

impl Default for HaloClustering {
    fn default() -> Self {
        Self::new()
    }
}

impl HaloClustering {
    /// An empty driver; buffers are sized lazily on the first world.
    pub fn new() -> Self {
        HaloClustering {
            presence: None,
            endpoints: Vec::new(),
            world: DeterministicGraph::from_edges(0, &[]),
            coefficients: Vec::new(),
        }
    }

    /// Computes the per-vertex clustering coefficients of the current
    /// world of `view`, exactly as the monolithic kernel would.
    ///
    /// Callers must short-circuit 1-shard views to the monolithic kernel
    /// (see [`HaloPageRank::run`]).
    pub fn run(&mut self, view: &ShardedWorld<'_>) -> &[f64] {
        let plan = view.halo_plan();
        let partition = view.partition();
        let presence = self
            .presence
            .get_or_insert_with(|| WorldPresence::new(view.graph()));
        presence.stamp(view.graph(), view.all_present());
        self.coefficients.resize(view.num_vertices(), 0.0);
        for s in 0..plan.num_shards() {
            let halo = plan.shard(s);
            self.endpoints.clear();
            for &(a, b, e) in halo.halo_edges() {
                if presence.edge_present(e) {
                    self.endpoints.push((a, b));
                }
            }
            self.world
                .materialize_from_endpoints(halo.halo_len(), &self.endpoints);
            let cc = local_clustering_coefficients(&self.world);
            for (local, &global) in partition.shard(s).vertices().iter().enumerate() {
                self.coefficients[global] = cc[local];
            }
        }
        &self.coefficients
    }
}

/// Per-shard state of a level-synchronous halo BFS (the distributed k-NN /
/// shortest-path superstep): the shard expands its owned frontier over the
/// present halo adjacency, reports every newly settled halo vertex, and
/// absorbs the settlements the coordinator routes back.
#[derive(Debug, Clone, Default)]
pub struct ShardBfs {
    owned: usize,
    dist: Vec<u32>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    touched: Vec<u32>,
}

impl ShardBfs {
    /// An empty state; size with [`ShardBfs::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the state for a fresh traversal over a halo of
    /// `halo.halo_len()` vertices.
    pub fn reset(&mut self, halo: &ShardHalo) {
        self.owned = halo.owned();
        if self.dist.len() != halo.halo_len() {
            self.dist.clear();
            self.dist.resize(halo.halo_len(), u32::MAX);
            self.touched.clear();
        } else {
            for &v in &self.touched {
                self.dist[v as usize] = u32::MAX;
            }
            self.touched.clear();
        }
        self.frontier.clear();
        self.next_frontier.clear();
    }

    /// Absorbs a routed settlement `(halo-local vertex, level)`: marks it
    /// visited and, when owned and newly settled, schedules it for the next
    /// expansion.
    pub fn absorb(&mut self, halo_local: u32, level: u32) {
        if self.dist[halo_local as usize] == u32::MAX {
            self.dist[halo_local as usize] = level;
            self.touched.push(halo_local);
            if (halo_local as usize) < self.owned {
                self.frontier.push(halo_local);
            }
        }
    }

    /// Expands the owned frontier one level over the present halo
    /// adjacency; every newly settled halo vertex is appended to `out` as
    /// `(halo-local vertex, level + 1)`, and newly settled *owned* vertices
    /// also seed the next expansion.
    pub fn expand(
        &mut self,
        halo: &ShardHalo,
        presence: &WorldPresence,
        level: u32,
        out: &mut Vec<(u32, u32)>,
    ) {
        std::mem::swap(&mut self.frontier, &mut self.next_frontier);
        self.frontier.clear();
        for &v in &self.next_frontier {
            for &(neighbor, edge) in halo.halo_neighbors(v as usize) {
                if presence.edge_present(edge) && self.dist[neighbor as usize] == u32::MAX {
                    self.dist[neighbor as usize] = level + 1;
                    self.touched.push(neighbor);
                    out.push((neighbor, level + 1));
                    if (neighbor as usize) < self.owned {
                        self.frontier.push(neighbor);
                    }
                }
            }
        }
        self.next_frontier.clear();
    }

    /// The settled level of a halo-local vertex (`u32::MAX` when unvisited).
    #[inline]
    pub fn level(&self, halo_local: u32) -> u32 {
        self.dist[halo_local as usize]
    }
}

/// Encodes an `f64` for the wire with full bitwise fidelity (16 hex digits
/// of its IEEE-754 representation).
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decodes [`f64_to_hex`] output.
pub fn f64_from_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("malformed f64 hex value {s:?}"))
}

/// Encodes one `id:value` pair for the `halo` wire op (`value` in
/// [`f64_to_hex`] form).
pub fn encode_rank(id: u32, value: f64) -> String {
    format!("{id}:{}", f64_to_hex(value))
}

/// Decodes [`encode_rank`] output.
pub fn decode_rank(s: &str) -> Result<(u32, f64), String> {
    let (id, hex) = s
        .split_once(':')
        .ok_or_else(|| format!("malformed rank entry {s:?}"))?;
    let id: u32 = id
        .parse()
        .map_err(|_| format!("malformed rank entry {s:?}"))?;
    Ok((id, f64_from_hex(hex)?))
}

/// Encodes one `id:level` BFS settlement for the `halo` wire op.
pub fn encode_level(id: u32, level: u32) -> String {
    format!("{id}:{level}")
}

/// Decodes [`encode_level`] output.
pub fn decode_level(s: &str) -> Result<(u32, u32), String> {
    let (id, level) = s
        .split_once(':')
        .ok_or_else(|| format!("malformed level entry {s:?}"))?;
    let id: u32 = id
        .parse()
        .map_err(|_| format!("malformed level entry {s:?}"))?;
    let level: u32 = level
        .parse()
        .map_err(|_| format!("malformed level entry {s:?}"))?;
    Ok((id, level))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SampleMethod, WorldEngine};
    use crate::sharded::ShardedWorldEngine;
    use crate::source::{WorldSource, WorldView};
    use graph_algos::pagerank::pagerank;
    use graph_algos::traversal::bfs_distances;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::GraphPartition;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(
            9,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (0, 2, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (3, 5, 0.4),
                (2, 3, 0.3),
                (0, 5, 0.2),
                (6, 7, 0.55),
                (5, 6, 0.35),
            ],
        )
        .unwrap()
    }

    #[test]
    fn world_presence_tracks_degrees_and_dangling_across_worlds() {
        let g = toy();
        let mut presence = WorldPresence::new(&g);
        presence.stamp(&g, &[0, 6]); // edges (0,1) and (2,3)
        assert!(presence.edge_present(0));
        assert!(!presence.edge_present(1));
        assert_eq!(presence.degree(0), 1);
        assert_eq!(presence.degree(2), 1);
        assert_eq!(presence.dangling(), 5);
        presence.stamp(&g, &[]); // empty world resets everything
        assert!(!presence.edge_present(0));
        assert_eq!(presence.degree(0), 0);
        assert_eq!(presence.dangling(), 9);
    }

    #[test]
    fn dangling_mass_matches_the_monolithic_fold() {
        let r = 0.123456789;
        let monolithic: f64 = std::iter::repeat_n(r, 7).sum();
        assert_eq!(dangling_mass(r, 7).to_bits(), monolithic.to_bits());
        assert_eq!(dangling_mass(r, 0), 0.0);
    }

    #[test]
    fn halo_pagerank_is_bitwise_monolithic_over_worlds_and_labellings() {
        let g = toy();
        let labellings: Vec<Vec<usize>> = vec![
            vec![0, 0, 0, 1, 1, 1, 2, 2, 2],
            (0..9).map(|v| v % 3).collect(),
            vec![1, 0, 1, 0, 1, 0, 1, 0, 1],
        ];
        for labels in labellings {
            let partition = GraphPartition::from_labels(&g, &labels, 3).unwrap();
            let sharded =
                ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::PerEdge);
            let monolithic = WorldEngine::new(&g).with_method(SampleMethod::PerEdge);
            let mut sharded_scratch = WorldSource::make_scratch(&sharded);
            let mut mono_scratch = monolithic.make_scratch();
            let mut rng_s = SmallRng::seed_from_u64(99);
            let mut rng_m = SmallRng::seed_from_u64(99);
            let mut driver = HaloPageRank::new();
            let config = PageRankConfig::default();
            for world in 0..60 {
                let mono_world = monolithic.sample_world(&mut rng_m, &mut mono_scratch);
                let expected = pagerank(mono_world, &config);
                let view = match sharded.sample_world(&mut rng_s, &mut sharded_scratch) {
                    WorldView::Sharded(view) => view,
                    _ => unreachable!(),
                };
                let got = driver.run(&view, &config);
                assert_eq!(got.len(), expected.len());
                for (v, (a, b)) in got.iter().zip(expected.iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "world {world} vertex {v} labels {labels:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn halo_clustering_is_bitwise_monolithic() {
        let g = toy();
        let labels: Vec<usize> = (0..9).map(|v| v % 3).collect();
        let partition = GraphPartition::from_labels(&g, &labels, 3).unwrap();
        let sharded = ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::Skip);
        let monolithic = WorldEngine::new(&g).with_method(SampleMethod::Skip);
        let mut sharded_scratch = WorldSource::make_scratch(&sharded);
        let mut mono_scratch = monolithic.make_scratch();
        let mut rng_s = SmallRng::seed_from_u64(7);
        let mut rng_m = SmallRng::seed_from_u64(7);
        let mut driver = HaloClustering::new();
        for world in 0..80 {
            let mono_world = monolithic.sample_world(&mut rng_m, &mut mono_scratch);
            let expected = local_clustering_coefficients(mono_world);
            let view = match sharded.sample_world(&mut rng_s, &mut sharded_scratch) {
                WorldView::Sharded(view) => view,
                _ => unreachable!(),
            };
            let got = driver.run(&view);
            for (v, (a, b)) in got.iter().zip(expected.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "world {world} vertex {v}");
            }
        }
    }

    #[test]
    fn shard_bfs_supersteps_reproduce_monolithic_distances() {
        // Drive the per-shard BFS states exactly like the distributed
        // coordinator would: route settlements to owner shards, expand
        // level-synchronously, stop on a quiet superstep.
        let g = toy();
        let partition = GraphPartition::from_labels(&g, &[0, 1, 2, 0, 1, 2, 0, 1, 2], 3).unwrap();
        let plan = HaloPlan::new(&g, &partition);
        let engine = ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::Skip);
        let monolithic = WorldEngine::new(&g).with_method(SampleMethod::Skip);
        let mut sharded_scratch = WorldSource::make_scratch(&engine);
        let mut mono_scratch = monolithic.make_scratch();
        let mut rng_s = SmallRng::seed_from_u64(3);
        let mut rng_m = SmallRng::seed_from_u64(3);
        let mut presence = WorldPresence::new(&g);
        let mut states: Vec<ShardBfs> = (0..3).map(|_| ShardBfs::new()).collect();
        for world in 0..60 {
            let mono_world = monolithic.sample_world(&mut rng_m, &mut mono_scratch);
            let view = match engine.sample_world(&mut rng_s, &mut sharded_scratch) {
                WorldView::Sharded(view) => view,
                _ => unreachable!(),
            };
            presence.stamp(&g, view.all_present());
            for source in [0usize, 4, 8] {
                let expected = bfs_distances(mono_world, source);
                let mut global: Vec<u32> = vec![u32::MAX; g.num_vertices()];
                for (s, state) in states.iter_mut().enumerate() {
                    state.reset(plan.shard(s));
                }
                global[source] = 0;
                let mut settlements = vec![(source as u32, 0u32)];
                let mut level = 0u32;
                let mut reported: Vec<(u32, u32)> = Vec::new();
                loop {
                    // Route to owners, then expand every shard.
                    for &(v, lvl) in &settlements {
                        let owner = partition.shard_of(v as usize);
                        let halo_local = plan.shard(owner).halo_index(v as usize);
                        states[owner].absorb(halo_local, lvl);
                    }
                    settlements.clear();
                    for (s, state) in states.iter_mut().enumerate() {
                        reported.clear();
                        state.expand(plan.shard(s), &presence, level, &mut reported);
                        let halo = plan.shard(s);
                        for &(halo_local, lvl) in &reported {
                            let gid = if (halo_local as usize) < halo.owned() {
                                partition.shard(s).global_vertex(halo_local as usize) as u32
                            } else {
                                halo.ghosts()[halo_local as usize - halo.owned()] as u32
                            };
                            if global[gid as usize] == u32::MAX {
                                global[gid as usize] = lvl;
                                settlements.push((gid, lvl));
                            }
                        }
                    }
                    if settlements.is_empty() {
                        break;
                    }
                    level += 1;
                }
                for v in 0..g.num_vertices() {
                    let want = expected[v];
                    if want == usize::MAX {
                        assert_eq!(global[v], u32::MAX, "world {world} source {source} v {v}");
                    } else {
                        assert_eq!(
                            global[v] as usize, want,
                            "world {world} source {source} v {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wire_codecs_round_trip() {
        for x in [0.0, -0.0, 1.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let hex = f64_to_hex(x);
            assert_eq!(f64_from_hex(&hex).unwrap().to_bits(), x.to_bits());
        }
        let entry = encode_rank(42, 0.125);
        assert_eq!(decode_rank(&entry).unwrap(), (42, 0.125));
        assert!(decode_rank("nope").is_err());
        assert!(decode_rank("3:zz").is_err());
        let lvl = encode_level(7, 3);
        assert_eq!(decode_level(&lvl).unwrap(), (7, 3));
        assert!(decode_level("7").is_err());
        assert!(decode_level("a:b").is_err());
    }
}
