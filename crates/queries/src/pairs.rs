//! Random vertex-pair selection for pairwise queries.
//!
//! The paper evaluates shortest-path distance and reliability on 1 000 random
//! vertex pairs (evaluating all pairs is infeasible on the real datasets).

use rand::Rng;

/// Draws `count` distinct unordered vertex pairs `(u, v)`, `u ≠ v`, uniformly
/// at random from a graph with `num_vertices` vertices.
///
/// If the graph has fewer than `count` possible pairs, all pairs are
/// returned (in random order).
pub fn random_pairs<R: Rng + ?Sized>(
    num_vertices: usize,
    count: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    if num_vertices < 2 || count == 0 {
        return Vec::new();
    }
    let total_pairs = num_vertices * (num_vertices - 1) / 2;
    if count >= total_pairs {
        // Enumerate everything and shuffle.
        let mut all = Vec::with_capacity(total_pairs);
        for u in 0..num_vertices {
            for v in (u + 1)..num_vertices {
                all.push((u, v));
            }
        }
        for i in (1..all.len()).rev() {
            let j = rng.gen_range(0..=i);
            all.swap(i, j);
        }
        return all;
    }
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let u = rng.gen_range(0..num_vertices);
        let v = rng.gen_range(0..num_vertices);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            pairs.push(key);
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pairs_are_distinct_valid_and_exactly_counted() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pairs = random_pairs(50, 200, &mut rng);
        assert_eq!(pairs.len(), 200);
        let unique: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), 200);
        for &(u, v) in &pairs {
            assert!(u < v, "pairs are normalised");
            assert!(v < 50);
        }
    }

    #[test]
    fn requesting_more_pairs_than_exist_returns_all() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pairs = random_pairs(5, 1000, &mut rng);
        assert_eq!(pairs.len(), 10);
        let unique: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn degenerate_inputs_return_empty() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(random_pairs(1, 10, &mut rng).is_empty());
        assert!(random_pairs(0, 10, &mut rng).is_empty());
        assert!(random_pairs(10, 0, &mut rng).is_empty());
    }

    #[test]
    fn pair_sampling_is_reproducible() {
        let a = random_pairs(30, 50, &mut SmallRng::seed_from_u64(9));
        let b = random_pairs(30, 50, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
