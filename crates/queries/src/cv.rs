//! Two-stage control-variate estimation: sparsified backbone + residual MC.
//!
//! The paper's Section 6.3 variance analysis shows the sample count needed
//! for a given confidence width scales as `N'/N = (σ(G')/σ(G))²` — the
//! sparsified graph `G'` is a *cheap, correlated* estimator of any
//! world-level statistic of `G`.  Offline, that motivates sparsify-then-
//! query; online, it is a textbook **control variate**.  For a statistic
//! `f` with unknown mean `θ = E[f(G)]`:
//!
//! ```text
//! θ = E[f(G) − β·f(G')] + β·E[f(G')]
//! ```
//!
//! [`ControlVariate::estimate`] evaluates the two terms separately:
//!
//! 1. **Pilot** — a small block of *coupled* worlds (common random numbers:
//!    one uniform per original edge drives both graphs) fits
//!    `β = Cov(f(G), f(G')) / Var(f(G'))`, the variance-minimising
//!    coefficient.  Pilot worlds are discarded from the estimate so `β` is
//!    independent of the averaged samples.
//! 2. **Backbone** — `E[f(G')]` by plain Monte-Carlo on `G'` alone through
//!    the [`crate::WorldEngine`] (worlds of the sparsified backbone are
//!    cheap: fewer edges, lower entropy, skip-sampling-friendly), run
//!    adaptively to half-width `ε/(2|β|)`.
//! 3. **Residual** — adaptive Monte-Carlo on the *coupled residual*
//!    `f(G) − β·f(G')` to half-width `ε/2`.  Under common random numbers
//!    the residual variance is `σ²(1 − ρ²)`-ish, so a well-correlated
//!    backbone lets the empirical-Bernstein rule of
//!    [`crate::variance::StoppingRule`] stop after a handful of epochs.
//!
//! The achieved half-width is `hw(residual) + |β|·hw(backbone)` (a union
//! bound with the confidence budget `δ` split between the two stages), so
//! the returned [`CvEstimate::half_width`] is a valid `1 − δ` bound on
//! `|estimate − θ|`.
//!
//! Coupled worlds are sampled per-edge (one uniform per original edge —
//! skip-sampling cannot drive two graphs from shared uniforms), so the
//! estimator trades a slower per-world sampler for far fewer worlds of the
//! expensive original graph.
//!
//! ## Example
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use uncertain_graph::UncertainGraph;
//! use ugs_queries::cv::{ControlVariate, CvConfig};
//! use ugs_queries::Precision;
//!
//! let original = UncertainGraph::from_edges(
//!     5,
//!     [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.7), (3, 4, 0.4), (4, 0, 0.6)],
//! )
//! .unwrap();
//! // A backbone a sparsifier might produce: two edges dropped, survivors
//! // re-weighted upward to preserve expected degrees.
//! let backbone =
//!     UncertainGraph::from_edges(5, [(0, 1, 1.0), (2, 3, 0.9), (4, 0, 0.8)]).unwrap();
//! let cv = ControlVariate::new(&original, &backbone).unwrap();
//!
//! // Estimate the expected edge fraction of the ORIGINAL graph (truth:
//! // mean edge probability 0.62) to ±0.05 at 95% confidence.
//! let config = CvConfig::new(Precision::new(0.05).with_max_worlds(20_000), (0.0, 1.0));
//! let mut rng = SmallRng::seed_from_u64(7);
//! let estimate = cv.estimate(
//!     |world| world.num_edges() as f64 / 5.0,
//!     &config,
//!     &mut rng,
//! );
//! assert!((estimate.estimate - 0.62).abs() < 0.05, "{estimate:?}");
//! assert!(estimate.residual_worlds > 0);
//! ```

use graph_algos::DeterministicGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_graph::UncertainGraph;

use crate::engine::WorldEngine;
use crate::variance::{Precision, StopReason, StoppingRule};

/// Why a [`ControlVariate`] could not be built over a graph pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CvError {
    /// The two graphs have different vertex counts.
    VertexMismatch {
        /// Vertices of the original graph.
        original: usize,
        /// Vertices of the backbone.
        backbone: usize,
    },
    /// The backbone contains an edge absent from the original's support —
    /// it cannot be a sparsification of the original.
    ForeignEdge {
        /// One endpoint of the offending backbone edge.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

impl std::fmt::Display for CvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CvError::VertexMismatch { original, backbone } => write!(
                f,
                "backbone has {backbone} vertices but the original has {original}"
            ),
            CvError::ForeignEdge { u, v } => write!(
                f,
                "backbone edge ({u}, {v}) is not in the original graph's support"
            ),
        }
    }
}

impl std::error::Error for CvError {}

/// Configuration of a control-variate run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvConfig {
    /// Accuracy target for the **final** estimate: `ε` is the total
    /// half-width, `δ` the total failure probability (split between the
    /// backbone and residual stages), `max_worlds` the per-stage world cap
    /// and `epoch` the worlds-per-checkpoint block.
    pub precision: Precision,
    /// Coupled pilot worlds used to fit `β` (discarded from the estimate);
    /// defaults to the precision's epoch size.
    pub pilot: usize,
    /// A-priori closed range of the statistic `f` on any world, required by
    /// the empirical-Bernstein bound.
    pub range: (f64, f64),
}

impl CvConfig {
    /// A configuration with the default pilot size (one epoch).
    ///
    /// # Panics
    /// Panics unless `range` is a non-empty finite interval.
    pub fn new(precision: Precision, range: (f64, f64)) -> Self {
        assert!(
            range.0.is_finite() && range.1.is_finite() && range.0 <= range.1,
            "invalid statistic range [{}, {}]",
            range.0,
            range.1
        );
        CvConfig {
            precision,
            pilot: precision.epoch.max(2),
            range,
        }
    }

    /// Overrides the pilot size (clamped to at least 2, the minimum for a
    /// covariance fit).
    pub fn with_pilot(mut self, pilot: usize) -> Self {
        self.pilot = pilot.max(2);
        self
    }
}

/// Result of a [`ControlVariate::estimate`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvEstimate {
    /// The control-variate estimate of `E[f(G)]`.
    pub estimate: f64,
    /// Achieved confidence half-width: residual half-width plus
    /// `|β|` × backbone half-width.
    pub half_width: f64,
    /// The fitted control-variate coefficient.
    pub beta: f64,
    /// Pilot correlation between `f(G)` and `f(G')` under common random
    /// numbers (0 when either side was degenerate).
    pub correlation: f64,
    /// The backbone stage's estimate of `E[f(G')]`.
    pub backbone_mean: f64,
    /// Coupled worlds spent fitting `β`.
    pub pilot_worlds: usize,
    /// Cheap backbone-only worlds spent on `E[f(G')]`.
    pub backbone_worlds: usize,
    /// Coupled worlds averaged into the residual mean.
    pub residual_worlds: usize,
    /// Why the residual stage stopped.
    pub stopped: StopReason,
}

impl CvEstimate {
    /// Worlds of the **original** graph consumed (pilot + residual — the
    /// backbone stage samples only the cheap sparsified graph).  This is
    /// the number to compare against a plain Monte-Carlo run's world count.
    pub fn original_worlds(&self) -> usize {
        self.pilot_worlds + self.residual_worlds
    }
}

/// A coupled (original, backbone) sampler plus the two-stage estimator; see
/// the [module docs](self).
pub struct ControlVariate<'g> {
    original: &'g UncertainGraph,
    backbone: &'g UncertainGraph,
    /// Original edge endpoints, pre-resolved for materialisation.
    endpoints: Vec<(u32, u32)>,
    /// Backbone probability aligned to each *original* edge id (0.0 for
    /// edges the sparsifier dropped), so one uniform per original edge
    /// drives both graphs.
    backbone_p: Vec<f64>,
}

impl<'g> ControlVariate<'g> {
    /// Builds the estimator over an original graph and its sparsified
    /// backbone (e.g. the [`SparsifyOutput::graph`] of the workspace's
    /// GDB/EMD sparsifiers, which only ever keep support edges).
    ///
    /// [`SparsifyOutput::graph`]: ../../ugs_core/spec/struct.SparsifyOutput.html
    pub fn new(
        original: &'g UncertainGraph,
        backbone: &'g UncertainGraph,
    ) -> Result<Self, CvError> {
        if original.num_vertices() != backbone.num_vertices() {
            return Err(CvError::VertexMismatch {
                original: original.num_vertices(),
                backbone: backbone.num_vertices(),
            });
        }
        let mut backbone_p = vec![0.0; original.num_edges()];
        for edge in backbone.edges() {
            let Some(e) = original.find_edge(edge.u, edge.v) else {
                return Err(CvError::ForeignEdge {
                    u: edge.u,
                    v: edge.v,
                });
            };
            backbone_p[e] = edge.p;
        }
        let endpoints = original.edges().map(|e| (e.u as u32, e.v as u32)).collect();
        Ok(ControlVariate {
            original,
            backbone,
            endpoints,
            backbone_p,
        })
    }

    /// The original graph.
    pub fn original(&self) -> &'g UncertainGraph {
        self.original
    }

    /// The sparsified backbone.
    pub fn backbone(&self) -> &'g UncertainGraph {
        self.backbone
    }

    /// Samples one coupled world pair into `scratch` (common random
    /// numbers: uniform `u_e` realises original edge `e` iff `u_e < p_e`
    /// and its backbone counterpart iff `u_e < p'_e`).
    fn sample_paired<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut PairedScratch) {
        scratch.orig_pairs.clear();
        scratch.back_pairs.clear();
        let probabilities = self.original.probabilities();
        for (e, &(u, v)) in self.endpoints.iter().enumerate() {
            let draw: f64 = rng.gen();
            if draw < probabilities[e] {
                scratch.orig_pairs.push((u, v));
            }
            if draw < self.backbone_p[e] {
                scratch.back_pairs.push((u, v));
            }
        }
        let n = self.original.num_vertices();
        scratch
            .orig_world
            .materialize_from_endpoints(n, &scratch.orig_pairs);
        scratch
            .back_world
            .materialize_from_endpoints(n, &scratch.back_pairs);
    }

    /// Runs the two-stage estimator for the statistic `f` (whose value on
    /// any world must lie in `config.range`).
    ///
    /// Draws **exactly one** `u64` from the caller's RNG; all three stage
    /// streams derive from it, so the full run — including every stopping
    /// decision — is a deterministic function of (seed, config).
    pub fn estimate<F, R>(&self, f: F, config: &CvConfig, rng: &mut R) -> CvEstimate
    where
        F: Fn(&DeterministicGraph) -> f64,
        R: Rng + ?Sized,
    {
        let mut master = SmallRng::seed_from_u64(rng.gen::<u64>());
        let pilot_seed = master.gen::<u64>();
        let backbone_seed = master.gen::<u64>();
        let residual_seed = master.gen::<u64>();
        let started = std::time::Instant::now();
        let precision = config.precision;
        let (lo, hi) = config.range;
        let mut scratch = PairedScratch::new(self.original);

        // ── Stage 1: pilot — fit β on coupled worlds, then discard them ──
        let mut pilot_rng = SmallRng::seed_from_u64(pilot_seed);
        let pilot = config.pilot.max(2);
        let mut xs = Vec::with_capacity(pilot);
        let mut ys = Vec::with_capacity(pilot);
        for _ in 0..pilot {
            self.sample_paired(&mut pilot_rng, &mut scratch);
            xs.push(f(&scratch.orig_world));
            ys.push(f(&scratch.back_world));
        }
        let (beta, correlation) = fit_beta(&xs, &ys);

        // The total ε/δ budget splits between the two stages; a zero β
        // makes the backbone term exact, freeing its whole share for the
        // residual.
        let (eps_residual, eps_backbone) = if beta == 0.0 {
            (precision.epsilon, f64::INFINITY)
        } else {
            (
                precision.epsilon / 2.0,
                precision.epsilon / (2.0 * beta.abs()),
            )
        };
        let half_delta = precision.delta / 2.0;

        // ── Stage 2: backbone mean on G' alone (cheap worlds) ──
        let mut backbone_mean = 0.0;
        let mut backbone_hw = 0.0;
        let mut backbone_worlds = 0;
        if beta != 0.0 {
            let target = Precision {
                epsilon: eps_backbone,
                delta: half_delta,
                ..precision
            };
            let mut rule = StoppingRule::new(target);
            let slot = rule.register(lo, hi);
            let engine = WorldEngine::new(self.backbone);
            let mut engine_scratch = engine.make_scratch();
            let mut backbone_rng = SmallRng::seed_from_u64(backbone_seed);
            run_stage(&mut rule, started, |rule| {
                let world = engine.sample_world(&mut backbone_rng, &mut engine_scratch);
                rule.record(slot, f(world));
            });
            backbone_mean = rule.stats()[slot].mean();
            backbone_hw = rule.half_width();
            backbone_worlds = rule.stats()[slot].count() as usize;
        }

        // ── Stage 3: adaptive residual on coupled worlds ──
        let target = Precision {
            epsilon: eps_residual,
            delta: half_delta,
            ..precision
        };
        let mut rule = StoppingRule::new(target);
        // Interval arithmetic on r = x − β·y with x, y ∈ [lo, hi].
        let beta_lo = (beta * lo).min(beta * hi);
        let beta_hi = (beta * lo).max(beta * hi);
        let slot = rule.register(lo - beta_hi, hi - beta_lo);
        let mut residual_rng = SmallRng::seed_from_u64(residual_seed);
        let stopped = run_stage(&mut rule, started, |rule| {
            self.sample_paired(&mut residual_rng, &mut scratch);
            let x = f(&scratch.orig_world);
            let y = f(&scratch.back_world);
            rule.record(slot, x - beta * y);
        });
        let residual_mean = rule.stats()[slot].mean();
        let residual_hw = rule.half_width();
        let residual_worlds = rule.stats()[slot].count() as usize;

        CvEstimate {
            estimate: residual_mean + beta * backbone_mean,
            half_width: residual_hw + beta.abs() * backbone_hw,
            beta,
            correlation,
            backbone_mean,
            pilot_worlds: pilot,
            backbone_worlds,
            residual_worlds,
            stopped,
        }
    }
}

impl std::fmt::Debug for ControlVariate<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlVariate")
            .field("original_edges", &self.original.num_edges())
            .field("backbone_edges", &self.backbone.num_edges())
            .finish()
    }
}

/// Coupled-world materialisation buffers, reused across samples.
struct PairedScratch {
    orig_pairs: Vec<(u32, u32)>,
    back_pairs: Vec<(u32, u32)>,
    orig_world: DeterministicGraph,
    back_world: DeterministicGraph,
}

impl PairedScratch {
    fn new(original: &UncertainGraph) -> Self {
        PairedScratch {
            orig_pairs: Vec::with_capacity(original.num_edges()),
            back_pairs: Vec::with_capacity(original.num_edges()),
            orig_world: DeterministicGraph::from_edges(0, &[]),
            back_world: DeterministicGraph::from_edges(0, &[]),
        }
    }
}

/// Two-pass least-squares fit of the control-variate coefficient and the
/// pilot correlation; `(0.0, 0.0)` when the backbone statistic is constant.
fn fit_beta(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
        var_y += (y - mean_y) * (y - mean_y);
    }
    if var_y <= 0.0 {
        return (0.0, 0.0);
    }
    let beta = cov / var_y;
    let correlation = if var_x <= 0.0 {
        0.0
    } else {
        cov / (var_x * var_y).sqrt()
    };
    (beta, correlation)
}

/// One adaptive stage: epochs of `rule.precision().epoch` samples produced
/// by `sample`, checked against the rule until convergence, budget
/// exhaustion ([`Precision::max_worlds`], unbounded when absent) or the
/// wall-clock deadline.
fn run_stage<S>(rule: &mut StoppingRule, started: std::time::Instant, mut sample: S) -> StopReason
where
    S: FnMut(&mut StoppingRule),
{
    let epoch = rule.precision().epoch.max(1);
    let cap = rule.precision().max_worlds.unwrap_or(usize::MAX);
    if cap == 0 {
        return StopReason::BudgetExhausted;
    }
    let mut consumed = 0usize;
    loop {
        let block = epoch.min(cap - consumed);
        for _ in 0..block {
            sample(rule);
        }
        consumed += block;
        if rule.check() {
            return StopReason::Converged;
        }
        if consumed >= cap {
            return StopReason::BudgetExhausted;
        }
        if rule.deadline_expired(started) {
            return StopReason::DeadlineExpired;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn original() -> UncertainGraph {
        UncertainGraph::from_edges(
            6,
            [
                (0, 1, 0.9),
                (1, 2, 0.6),
                (2, 3, 0.7),
                (3, 4, 0.5),
                (4, 5, 0.8),
                (5, 0, 0.4),
                (0, 3, 0.3),
                (1, 4, 0.2),
            ],
        )
        .unwrap()
    }

    /// A plausible sparsifier output: half the edges dropped, survivors
    /// boosted — correlated with, but not equal to, the original.
    fn backbone() -> UncertainGraph {
        UncertainGraph::from_edges(6, [(0, 1, 1.0), (2, 3, 0.9), (4, 5, 1.0), (0, 3, 0.5)]).unwrap()
    }

    #[test]
    fn construction_validates_the_graph_pair() {
        let g = original();
        let mismatched = UncertainGraph::from_edges(4, [(0, 1, 0.5)]).unwrap();
        assert_eq!(
            ControlVariate::new(&g, &mismatched).unwrap_err(),
            CvError::VertexMismatch {
                original: 6,
                backbone: 4
            }
        );
        let foreign = UncertainGraph::from_edges(6, [(2, 5, 0.5)]).unwrap();
        assert_eq!(
            ControlVariate::new(&g, &foreign).unwrap_err(),
            CvError::ForeignEdge { u: 2, v: 5 }
        );
        assert!(ControlVariate::new(&g, &backbone()).is_ok());
    }

    #[test]
    fn estimate_hits_the_analytic_truth_within_epsilon() {
        let g = original();
        let b = backbone();
        let cv = ControlVariate::new(&g, &b).unwrap();
        // Statistic: edge fraction of the original world; truth = mean edge
        // probability.
        let truth = g.mean_edge_probability();
        let m = g.num_edges() as f64;
        let config = CvConfig::new(Precision::new(0.03).with_max_worlds(200_000), (0.0, 1.0));
        let mut rng = SmallRng::seed_from_u64(11);
        let estimate = cv.estimate(|w| w.num_edges() as f64 / m, &config, &mut rng);
        assert_eq!(estimate.stopped, StopReason::Converged, "{estimate:?}");
        assert!(estimate.half_width <= 0.03, "{estimate:?}");
        assert!(
            (estimate.estimate - truth).abs() <= estimate.half_width,
            "estimate {} vs truth {truth} (hw {})",
            estimate.estimate,
            estimate.half_width
        );
        assert!(estimate.correlation > 0.0, "{estimate:?}");
    }

    #[test]
    fn a_perfect_backbone_collapses_the_residual_variance() {
        // Backbone identical to the original: the coupled residual
        // f(G) − β·f(G') is exactly 0 per world (β fits to 1).  The
        // empirical-Bernstein variance term vanishes, leaving only the
        // O(R·log/n) range term — so the residual stage converges in far
        // fewer worlds than plain MC, whose variance term alone would need
        // ~2·V·log/ε² ≈ 10⁵ worlds at ε/2 = 0.005 here.
        let g = original();
        let cv = ControlVariate::new(&g, &g).unwrap();
        let m = g.num_edges() as f64;
        let config = CvConfig::new(Precision::new(0.01).with_max_worlds(100_000), (0.0, 1.0));
        let mut rng = SmallRng::seed_from_u64(3);
        let estimate = cv.estimate(|w| w.num_edges() as f64 / m, &config, &mut rng);
        assert!((estimate.beta - 1.0).abs() < 1e-9, "{estimate:?}");
        assert_eq!(estimate.stopped, StopReason::Converged, "{estimate:?}");
        assert!(
            estimate.residual_worlds < 25_000,
            "range term only: {estimate:?}"
        );
        let truth = g.mean_edge_probability();
        assert!((estimate.estimate - truth).abs() <= 0.01, "{estimate:?}");
    }

    #[test]
    fn runs_are_deterministic_and_consume_one_rng_draw() {
        let g = original();
        let b = backbone();
        let cv = ControlVariate::new(&g, &b).unwrap();
        let m = g.num_edges() as f64;
        let config = CvConfig::new(Precision::new(0.05).with_max_worlds(50_000), (0.0, 1.0));
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let e = cv.estimate(|w| w.num_edges() as f64 / m, &config, &mut rng);
            (e, rng.gen::<u64>())
        };
        let (a, next_a) = run(5);
        let (b2, next_b) = run(5);
        assert_eq!(a, b2);
        assert_eq!(next_a, next_b);
        // Exactly one u64 was drawn from the caller RNG.
        let mut expected = SmallRng::seed_from_u64(5);
        expected.gen::<u64>();
        assert_eq!(next_a, expected.gen::<u64>());
    }

    #[test]
    fn degenerate_backbone_statistic_degrades_to_plain_adaptive() {
        // A statistic the backbone cannot see (it is constant on G'):
        // β = 0, the backbone stage is skipped and the residual is plain
        // f(G).
        let g = original();
        // Backbone with only the certain edge realisation pattern: use a
        // single always-on edge so num_edges is constant in every world.
        let b = UncertainGraph::from_edges(6, [(0, 1, 1.0)]).unwrap();
        let cv = ControlVariate::new(&g, &b).unwrap();
        let m = g.num_edges() as f64;
        let config = CvConfig::new(Precision::new(0.05).with_max_worlds(100_000), (0.0, 1.0));
        let mut rng = SmallRng::seed_from_u64(17);
        let estimate = cv.estimate(|w| w.num_edges() as f64 / m, &config, &mut rng);
        assert_eq!(estimate.beta, 0.0, "{estimate:?}");
        assert_eq!(estimate.backbone_worlds, 0);
        let truth = g.mean_edge_probability();
        assert!((estimate.estimate - truth).abs() <= 0.05, "{estimate:?}");
    }

    #[test]
    fn max_worlds_caps_every_stage() {
        let g = original();
        let b = backbone();
        let cv = ControlVariate::new(&g, &b).unwrap();
        let m = g.num_edges() as f64;
        // An impossible target with a tiny budget: both adaptive stages
        // must stop at the cap.
        let config = CvConfig::new(
            Precision::new(1e-9).with_max_worlds(96).with_epoch(32),
            (0.0, 1.0),
        );
        let mut rng = SmallRng::seed_from_u64(23);
        let estimate = cv.estimate(|w| w.num_edges() as f64 / m, &config, &mut rng);
        assert_eq!(estimate.stopped, StopReason::BudgetExhausted);
        assert!(estimate.residual_worlds <= 96, "{estimate:?}");
        assert!(estimate.backbone_worlds <= 96, "{estimate:?}");
    }
}
