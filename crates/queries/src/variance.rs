//! Run-to-run variance of Monte-Carlo estimators (Section 6.3, Figure 12).
//!
//! Different executions of the same Monte-Carlo estimator yield different
//! results; the paper quantifies this with the unbiased sample variance over
//! 100 repetitions and compares `σ̂(G')/σ̂(G)` between the sparsified and the
//! original graph.  A low relative variance means far fewer samples are
//! needed on the sparsified graph for the same confidence width, since
//! `N'/N = (σ(G')/σ(G))²`.
//!
//! Estimators in this workspace return a *vector* of per-item values (one
//! per vertex or per pair); [`estimator_variance`] therefore reports the
//! per-item unbiased variances and summarises them by their mean, which is
//! the scalar used in the figures.

/// Variance of a repeated vector-valued estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceEstimate {
    /// Unbiased per-item variance across repetitions.
    pub per_item: Vec<f64>,
    /// Per-item mean across repetitions.
    pub mean: Vec<f64>,
    /// Number of repetitions.
    pub repetitions: usize,
}

impl VarianceEstimate {
    /// Mean of the per-item variances — the scalar summary used when
    /// comparing graphs.
    pub fn mean_variance(&self) -> f64 {
        if self.per_item.is_empty() {
            0.0
        } else {
            self.per_item.iter().sum::<f64>() / self.per_item.len() as f64
        }
    }

    /// Ratio of this estimate's mean variance to a baseline's (the paper's
    /// relative variance `σ̂(G')/σ̂(G)`); 0 when the baseline variance is 0.
    pub fn relative_to(&self, baseline: &VarianceEstimate) -> f64 {
        let base = baseline.mean_variance();
        if base <= 0.0 {
            0.0
        } else {
            self.mean_variance() / base
        }
    }
}

/// Runs `estimator` `repetitions` times and computes per-item mean and
/// unbiased variance.  Non-finite observations (e.g. the `NAN` distance of a
/// never-connected pair) are treated as missing for that item and repetition.
///
/// # Panics
/// Panics if the estimator returns vectors of inconsistent lengths.
pub fn estimator_variance<F>(repetitions: usize, mut estimator: F) -> VarianceEstimate
where
    F: FnMut(usize) -> Vec<f64>,
{
    assert!(repetitions >= 2, "variance needs at least two repetitions");
    let mut runs: Vec<Vec<f64>> = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let values = estimator(rep);
        if let Some(first) = runs.first() {
            assert_eq!(
                first.len(),
                values.len(),
                "estimator changed its output length"
            );
        }
        runs.push(values);
    }
    let items = runs.first().map_or(0, Vec::len);
    let mut mean = vec![0.0; items];
    let mut per_item = vec![0.0; items];
    for item in 0..items {
        let observations: Vec<f64> = runs
            .iter()
            .map(|r| r[item])
            .filter(|x| x.is_finite())
            .collect();
        if observations.len() < 2 {
            mean[item] = observations.first().copied().unwrap_or(0.0);
            per_item[item] = 0.0;
            continue;
        }
        let n = observations.len() as f64;
        let m = observations.iter().sum::<f64>() / n;
        let var = observations.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1.0);
        mean[item] = m;
        per_item[item] = var;
    }
    VarianceEstimate {
        per_item,
        mean,
        repetitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constant_estimator_has_zero_variance() {
        let estimate = estimator_variance(10, |_| vec![1.0, 2.0, 3.0]);
        assert_eq!(estimate.per_item, vec![0.0; 3]);
        assert_eq!(estimate.mean, vec![1.0, 2.0, 3.0]);
        assert_eq!(estimate.mean_variance(), 0.0);
        assert_eq!(estimate.repetitions, 10);
    }

    #[test]
    fn known_variance_is_recovered() {
        // Alternating 0/1 observations: sample variance with n=2k is
        // k/(2k-1) * ... simpler: for values {0,1} repeated 50/50, unbiased
        // variance = n/(n-1) * 0.25.
        let reps = 100;
        let estimate = estimator_variance(reps, |rep| vec![(rep % 2) as f64]);
        let expected = (reps as f64) / (reps as f64 - 1.0) * 0.25;
        assert!((estimate.per_item[0] - expected).abs() < 1e-12);
        assert!((estimate.mean[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_observations_are_skipped() {
        let estimate = estimator_variance(4, |rep| {
            if rep == 0 {
                vec![f64::NAN, 1.0]
            } else {
                vec![2.0, 1.0]
            }
        });
        assert_eq!(estimate.per_item, vec![0.0, 0.0]);
        assert_eq!(estimate.mean, vec![2.0, 1.0]);
    }

    #[test]
    fn relative_variance_compares_estimators() {
        let mut rng = SmallRng::seed_from_u64(1);
        let noisy = estimator_variance(200, |_| vec![rng.gen_range(0.0..1.0)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let tight = estimator_variance(200, |_| vec![0.5 + 0.01 * rng.gen_range(-1.0..1.0)]);
        let ratio = tight.relative_to(&noisy);
        assert!(ratio < 0.05, "ratio {ratio}");
        let zero = estimator_variance(5, |_| vec![1.0]);
        assert_eq!(noisy.relative_to(&zero), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two repetitions")]
    fn single_repetition_panics() {
        estimator_variance(1, |_| vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "changed its output length")]
    fn inconsistent_lengths_panic() {
        estimator_variance(3, |rep| vec![0.0; rep + 1]);
    }

    #[test]
    fn empty_observation_vectors_are_fine() {
        let estimate = estimator_variance(3, |_| Vec::new());
        assert_eq!(estimate.mean_variance(), 0.0);
        assert!(estimate.per_item.is_empty());
    }
}
