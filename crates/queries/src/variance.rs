//! Run-to-run variance of Monte-Carlo estimators (Section 6.3, Figure 12)
//! and the streaming accumulators behind adaptive-precision sampling.
//!
//! Different executions of the same Monte-Carlo estimator yield different
//! results; the paper quantifies this with the unbiased sample variance over
//! 100 repetitions and compares `σ̂(G')/σ̂(G)` between the sparsified and the
//! original graph.  A low relative variance means far fewer samples are
//! needed on the sparsified graph for the same confidence width, since
//! `N'/N = (σ(G')/σ(G))²`.
//!
//! Estimators in this workspace return a *vector* of per-item values (one
//! per vertex or per pair); [`estimator_variance`] therefore reports the
//! per-item unbiased variances and summarises them by their mean, which is
//! the scalar used in the figures.
//!
//! The second half of this module turns that offline analysis into an online
//! control loop: a streaming [`Welford`] accumulator (single-pass mean and
//! variance, with Chan-style merge for worker partials), an
//! [`AccumulatorStats`] wrapper that knows the a-priori range of its
//! statistic, and a [`StoppingRule`] that pools registered accumulators into
//! an empirical-Bernstein confidence half-width and decides — at epoch
//! checkpoints only, so the decision is a deterministic function of
//! `(seed, ε, δ, epoch size)` — whether a Monte-Carlo run may stop early.

use std::time::{Duration, Instant};

/// Variance of a repeated vector-valued estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceEstimate {
    /// Unbiased per-item variance across repetitions.
    pub per_item: Vec<f64>,
    /// Per-item mean across repetitions.
    pub mean: Vec<f64>,
    /// Number of repetitions.
    pub repetitions: usize,
}

impl VarianceEstimate {
    /// Mean of the per-item variances — the scalar summary used when
    /// comparing graphs.
    pub fn mean_variance(&self) -> f64 {
        if self.per_item.is_empty() {
            0.0
        } else {
            self.per_item.iter().sum::<f64>() / self.per_item.len() as f64
        }
    }

    /// Ratio of this estimate's mean variance to a baseline's (the paper's
    /// relative variance `σ̂(G')/σ̂(G)`).
    ///
    /// A degenerate baseline (zero variance) is not the same thing as a
    /// ratio of zero: dividing a *noisy* estimator by a noiseless baseline
    /// is an infinitely *bad* ratio, not an infinitely good one.  The
    /// convention is therefore:
    ///
    /// * baseline variance > 0 — the ordinary ratio `self / baseline`;
    /// * both variances 0 — `0.0` (two exact estimators are equally good);
    /// * baseline 0 but `self` > 0 — [`f64::INFINITY`].
    pub fn relative_to(&self, baseline: &VarianceEstimate) -> f64 {
        let own = self.mean_variance();
        let base = baseline.mean_variance();
        if base > 0.0 {
            own / base
        } else if own <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    }
}

/// Runs `estimator` `repetitions` times and computes per-item mean and
/// unbiased variance.  Non-finite observations (e.g. the `NAN` distance of a
/// never-connected pair) are treated as missing for that item and repetition.
///
/// # Panics
/// Panics if the estimator returns vectors of inconsistent lengths.
pub fn estimator_variance<F>(repetitions: usize, mut estimator: F) -> VarianceEstimate
where
    F: FnMut(usize) -> Vec<f64>,
{
    assert!(repetitions >= 2, "variance needs at least two repetitions");
    let mut runs: Vec<Vec<f64>> = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let values = estimator(rep);
        if let Some(first) = runs.first() {
            assert_eq!(
                first.len(),
                values.len(),
                "estimator changed its output length"
            );
        }
        runs.push(values);
    }
    let items = runs.first().map_or(0, Vec::len);
    let mut mean = vec![0.0; items];
    let mut per_item = vec![0.0; items];
    for item in 0..items {
        let observations: Vec<f64> = runs
            .iter()
            .map(|r| r[item])
            .filter(|x| x.is_finite())
            .collect();
        if observations.len() < 2 {
            mean[item] = observations.first().copied().unwrap_or(0.0);
            per_item[item] = 0.0;
            continue;
        }
        let n = observations.len() as f64;
        let m = observations.iter().sum::<f64>() / n;
        let var = observations.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1.0);
        mean[item] = m;
        per_item[item] = var;
    }
    VarianceEstimate {
        per_item,
        mean,
        repetitions,
    }
}

/// Streaming mean/variance accumulator (Welford's online algorithm).
///
/// One pass, O(1) state, numerically stable; [`Welford::merge`] combines two
/// accumulators with Chan's parallel update so worker partials can be folded
/// together.  Merging is exact arithmetic-wise only up to floating-point
/// rounding, but it is a pure function of the two operands: folding the same
/// partials in the same order always reproduces the same bits, which is what
/// the deterministic batch driver relies on.
///
/// ```
/// use ugs_queries::Welford;
///
/// let mut acc = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean() - 2.5).abs() < 1e-12);
/// assert!((acc.variance() - 5.0 / 3.0).abs() < 1e-12); // unbiased
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations pushed (or merged) so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations; `0.0` while empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`M2 / (n - 1)`); `0.0` with fewer than two
    /// observations, matching [`estimator_variance`]'s convention.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Folds another accumulator into this one (Chan et al.'s parallel
    /// combination).  Deterministic: the result is a pure function of the
    /// two operands, so merging worker partials in a fixed order yields
    /// bitwise-reproducible state.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.count += other.count;
    }
}

/// A [`Welford`] accumulator plus the a-priori closed range of its
/// statistic — everything the empirical-Bernstein bound needs.
///
/// ```
/// use ugs_queries::AccumulatorStats;
///
/// let mut stats = AccumulatorStats::new(0.0, 1.0);
/// for i in 0..400 {
///     stats.record(f64::from(i % 2));
/// }
/// // Empirical-Bernstein half-width at 95% confidence: a few percent after
/// // 400 Bernoulli observations.
/// let hw = stats.half_width(0.05);
/// assert!(hw > 0.0 && hw < 0.2, "half-width {hw}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccumulatorStats {
    welford: Welford,
    lo: f64,
    hi: f64,
}

impl AccumulatorStats {
    /// A new accumulator for a statistic with values in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `lo <= hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid statistic range [{lo}, {hi}]"
        );
        Self {
            welford: Welford::new(),
            lo,
            hi,
        }
    }

    /// The declared range of the statistic.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Running mean of the statistic.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Unbiased sample variance of the statistic.
    pub fn variance(&self) -> f64 {
        self.welford.variance()
    }

    /// Adds one per-world observation.
    pub fn record(&mut self, value: f64) {
        self.welford.push(value);
    }

    /// Empirical-Bernstein confidence half-width at confidence level
    /// `1 - delta` (Audibert–Munos–Szepesvári / Maurer–Pontil): with
    /// probability at least `1 - delta`,
    ///
    /// `|mean − truth| ≤ sqrt(2·V̂·ln(3/δ)/n) + 3·R·ln(3/δ)/n`
    ///
    /// where `V̂` is the sample variance and `R = hi − lo`.  The variance
    /// term dominates for concentrated statistics — this is what lets a
    /// low-variance estimator (e.g. the control-variate residual) stop far
    /// earlier than the range-only Hoeffding bound would allow.  Returns
    /// [`f64::INFINITY`] while empty.
    pub fn half_width(&self, delta: f64) -> f64 {
        let n = self.welford.count();
        if n == 0 {
            return f64::INFINITY;
        }
        let n = n as f64;
        let log = (3.0 / delta).ln();
        let range = self.hi - self.lo;
        (2.0 * self.welford.variance() * log / n).sqrt() + 3.0 * range * log / n
    }
}

/// Why an adaptive run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every tracked statistic reached the target half-width `ε`.
    Converged,
    /// The world budget (`num_worlds`, possibly capped by
    /// [`Precision::max_worlds`]) ran out first.
    BudgetExhausted,
    /// The wall-clock [`Precision::deadline`] expired first.
    DeadlineExpired,
    /// A cooperative cancellation flag was raised; the run aborted at the
    /// next epoch checkpoint (partial results are still well-defined — the
    /// worlds consumed so far were observed normally).
    Cancelled,
}

/// Accuracy target for adaptive Monte-Carlo: stop as soon as every tracked
/// statistic's confidence half-width is at most `epsilon`, at confidence
/// `1 - delta`, subject to an optional wall-clock `deadline` and world cap.
///
/// Sampling proceeds in fixed blocks of `epoch` worlds with the bound
/// checked only at block boundaries, so the number of worlds consumed is a
/// deterministic function of `(seed, ε, δ, epoch)` — independent of thread
/// count and (absent a deadline) of wall-clock speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Target confidence half-width for every tracked statistic.
    pub epsilon: f64,
    /// Allowed failure probability, split across checkpoints and tracked
    /// statistics by a union bound.
    pub delta: f64,
    /// Optional wall-clock budget; checked at epoch boundaries, after the
    /// convergence and world-budget checks (so a deadline can only make a
    /// run *shorter*, never change a converged answer).
    pub deadline: Option<Duration>,
    /// Optional hard cap on worlds, tightening the batch's `num_worlds`.
    pub max_worlds: Option<usize>,
    /// Worlds per epoch between stopping checks.
    pub epoch: usize,
}

impl Precision {
    /// Default failure probability (95% confidence).
    pub const DEFAULT_DELTA: f64 = 0.05;
    /// Default worlds per epoch.
    pub const DEFAULT_EPOCH: usize = 64;

    /// A target half-width at the default `delta` and epoch size.
    ///
    /// # Panics
    /// Panics unless `epsilon` is finite and positive.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be finite and positive, got {epsilon}"
        );
        Self {
            epsilon,
            delta: Self::DEFAULT_DELTA,
            deadline: None,
            max_worlds: None,
            epoch: Self::DEFAULT_EPOCH,
        }
    }

    /// Sets the failure probability.
    ///
    /// # Panics
    /// Panics unless `delta` is in `(0, 1)`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        self.delta = delta;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the hard world cap.
    pub fn with_max_worlds(mut self, max_worlds: usize) -> Self {
        self.max_worlds = Some(max_worlds);
        self
    }

    /// Sets the epoch (worlds per stopping check; clamped to at least 1).
    pub fn with_epoch(mut self, epoch: usize) -> Self {
        self.epoch = epoch.max(1);
        self
    }

    /// The effective world budget given a batch's `num_worlds`.
    pub fn cap(&self, num_worlds: usize) -> usize {
        self.max_worlds.map_or(num_worlds, |m| m.min(num_worlds))
    }
}

/// Sequential stopping rule: registered per-statistic accumulators pooled
/// into an empirical-Bernstein bound, with the confidence budget `δ` split
/// `δ_k = δ / (k(k+1))` over checkpoints `k = 1, 2, …` (a convergent series
/// summing to `δ`) and uniformly over the tracked statistics — a union
/// bound, so the *final* answer is within `ε` of truth with probability at
/// least `1 − δ` no matter how many checkpoints the run needed.
///
/// ```
/// use ugs_queries::{Precision, StoppingRule};
///
/// let mut rule = StoppingRule::new(Precision::new(0.2));
/// let slot = rule.register(0.0, 1.0);
/// for i in 0..256 {
///     rule.record(slot, f64::from(i % 2));
/// }
/// // One checkpoint after 256 Bernoulli worlds: comfortably within ε=0.2.
/// assert!(rule.check());
/// assert!(rule.half_width() <= 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingRule {
    precision: Precision,
    stats: Vec<AccumulatorStats>,
    checks: u64,
    half_width: f64,
}

impl StoppingRule {
    /// A fresh rule for the given target; statistics are added with
    /// [`StoppingRule::register`].
    pub fn new(precision: Precision) -> Self {
        Self {
            precision,
            stats: Vec::new(),
            checks: 0,
            half_width: f64::INFINITY,
        }
    }

    /// The target this rule enforces.
    pub fn precision(&self) -> &Precision {
        &self.precision
    }

    /// Registers a statistic with values in `[lo, hi]`; returns its slot
    /// index for [`StoppingRule::record`].
    pub fn register(&mut self, lo: f64, hi: f64) -> usize {
        self.stats.push(AccumulatorStats::new(lo, hi));
        self.stats.len() - 1
    }

    /// Number of registered statistics.
    pub fn num_tracked(&self) -> usize {
        self.stats.len()
    }

    /// The registered accumulators, in registration order.
    pub fn stats(&self) -> &[AccumulatorStats] {
        &self.stats
    }

    /// Records one per-world observation of slot `slot`.
    pub fn record(&mut self, slot: usize, value: f64) {
        self.stats[slot].record(value);
    }

    /// Runs checkpoint `k` (incrementing the internal counter): recomputes
    /// the pooled half-width — the maximum over tracked statistics at the
    /// split confidence `δ_k / num_tracked` — and returns whether it meets
    /// `ε`.  With no tracked statistics the rule never converges (the run
    /// falls back to its world budget).
    pub fn check(&mut self) -> bool {
        self.checks += 1;
        if self.stats.is_empty() {
            self.half_width = f64::INFINITY;
            return false;
        }
        let k = self.checks as f64;
        let delta_k = self.precision.delta / (k * (k + 1.0)) / self.stats.len() as f64;
        self.half_width = self
            .stats
            .iter()
            .map(|s| s.half_width(delta_k))
            .fold(0.0, f64::max);
        self.half_width <= self.precision.epsilon
    }

    /// Number of checkpoints run so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Pooled half-width from the most recent [`StoppingRule::check`];
    /// [`f64::INFINITY`] before the first checkpoint.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Whether the rule's optional wall-clock deadline has expired relative
    /// to `started`.  Intentionally *not* part of [`StoppingRule::check`]:
    /// the bound must stay a deterministic function of the recorded values,
    /// with the (inherently timing-dependent) deadline consulted separately
    /// and last.
    pub fn deadline_expired(&self, started: Instant) -> bool {
        self.precision
            .deadline
            .is_some_and(|d| started.elapsed() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constant_estimator_has_zero_variance() {
        let estimate = estimator_variance(10, |_| vec![1.0, 2.0, 3.0]);
        assert_eq!(estimate.per_item, vec![0.0; 3]);
        assert_eq!(estimate.mean, vec![1.0, 2.0, 3.0]);
        assert_eq!(estimate.mean_variance(), 0.0);
        assert_eq!(estimate.repetitions, 10);
    }

    #[test]
    fn known_variance_is_recovered() {
        // Alternating 0/1 observations: sample variance with n=2k is
        // k/(2k-1) * ... simpler: for values {0,1} repeated 50/50, unbiased
        // variance = n/(n-1) * 0.25.
        let reps = 100;
        let estimate = estimator_variance(reps, |rep| vec![(rep % 2) as f64]);
        let expected = (reps as f64) / (reps as f64 - 1.0) * 0.25;
        assert!((estimate.per_item[0] - expected).abs() < 1e-12);
        assert!((estimate.mean[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_observations_are_skipped() {
        let estimate = estimator_variance(4, |rep| {
            if rep == 0 {
                vec![f64::NAN, 1.0]
            } else {
                vec![2.0, 1.0]
            }
        });
        assert_eq!(estimate.per_item, vec![0.0, 0.0]);
        assert_eq!(estimate.mean, vec![2.0, 1.0]);
    }

    #[test]
    fn relative_variance_compares_estimators() {
        let mut rng = SmallRng::seed_from_u64(1);
        let noisy = estimator_variance(200, |_| vec![rng.gen_range(0.0..1.0)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let tight = estimator_variance(200, |_| vec![0.5 + 0.01 * rng.gen_range(-1.0..1.0)]);
        let ratio = tight.relative_to(&noisy);
        assert!(ratio < 0.05, "ratio {ratio}");
    }

    #[test]
    fn degenerate_baseline_is_infinitely_bad_not_zero() {
        // A noiseless baseline under a noisy estimator used to report ratio
        // 0 — "infinitely better" — when it is the exact opposite.
        let mut rng = SmallRng::seed_from_u64(1);
        let noisy = estimator_variance(200, |_| vec![rng.gen_range(0.0..1.0)]);
        let zero = estimator_variance(5, |_| vec![1.0]);
        assert_eq!(noisy.relative_to(&zero), f64::INFINITY);
        // Two exact estimators really are equally good.
        let other_zero = estimator_variance(7, |_| vec![3.0]);
        assert_eq!(zero.relative_to(&other_zero), 0.0);
        // And a noisy baseline under an exact estimator is an honest 0.
        assert_eq!(zero.relative_to(&noisy), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two repetitions")]
    fn single_repetition_panics() {
        estimator_variance(1, |_| vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "changed its output length")]
    fn inconsistent_lengths_panic() {
        estimator_variance(3, |rep| vec![0.0; rep + 1]);
    }

    #[test]
    fn empty_observation_vectors_are_fine() {
        let estimate = estimator_variance(3, |_| Vec::new());
        assert_eq!(estimate.mean_variance(), 0.0);
        assert!(estimate.per_item.is_empty());
    }

    #[test]
    fn welford_agrees_with_the_two_pass_oracle_to_1e12() {
        // Satellite contract: single-pass Welford within 1e-12 of the
        // existing two-pass estimator_variance on random data.
        for seed in [3_u64, 17, 0xFEED] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let values: Vec<f64> = (0..500).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let mut acc = Welford::new();
            for &x in &values {
                acc.push(x);
            }
            let mut at = 0;
            let oracle = estimator_variance(values.len(), |_| {
                let v = vec![values[at]];
                at += 1;
                v
            });
            assert!((acc.mean() - oracle.mean[0]).abs() < 1e-12, "seed {seed}");
            assert!(
                (acc.variance() - oracle.per_item[0]).abs() < 1e-12,
                "seed {seed}: {} vs {}",
                acc.variance(),
                oracle.per_item[0]
            );
        }
    }

    #[test]
    fn welford_merge_is_bitwise_stable_and_accurate() {
        let mut rng = SmallRng::seed_from_u64(99);
        let values: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        // Split into uneven partials, as the batch driver's replay
        // partitioning does.
        let splits = [0, 137, 137 + 401, 1000];
        let partials: Vec<Welford> = splits
            .windows(2)
            .map(|w| {
                let mut acc = Welford::new();
                for &x in &values[w[0]..w[1]] {
                    acc.push(x);
                }
                acc
            })
            .collect();
        // Merging the same partials in the same order twice is bitwise
        // identical — merge is a pure function of its operands.
        let fold = |parts: &[Welford]| {
            let mut total = Welford::new();
            for p in parts {
                total.merge(p);
            }
            total
        };
        let a = fold(&partials);
        let b = fold(&partials);
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
        assert_eq!(a.count(), b.count());
        // And the merged result agrees with one sequential pass to 1e-12
        // (not bitwise: Chan's update rounds differently than push-by-push).
        let mut seq = Welford::new();
        for &x in &values {
            seq.push(x);
        }
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-12);
        // Merging an empty accumulator in either direction is the identity.
        let mut left = a;
        left.merge(&Welford::new());
        assert_eq!(left, a);
        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn empirical_bernstein_tightens_with_samples_and_variance() {
        // More samples → smaller half-width.
        let mut few = AccumulatorStats::new(0.0, 1.0);
        let mut many = AccumulatorStats::new(0.0, 1.0);
        for i in 0..64 {
            few.record(f64::from(i % 2));
        }
        for i in 0..4096 {
            many.record(f64::from(i % 2));
        }
        assert!(many.half_width(0.05) < few.half_width(0.05));
        // Lower variance → smaller half-width at equal n.
        let mut constant = AccumulatorStats::new(0.0, 1.0);
        for _ in 0..64 {
            constant.record(0.5);
        }
        assert!(constant.half_width(0.05) < few.half_width(0.05));
        // Empty accumulator knows nothing.
        assert_eq!(
            AccumulatorStats::new(0.0, 1.0).half_width(0.05),
            f64::INFINITY
        );
    }

    #[test]
    fn stopping_rule_splits_delta_and_converges() {
        let mut rule = StoppingRule::new(Precision::new(0.25).with_delta(0.1));
        let slot = rule.register(0.0, 1.0);
        // First checkpoint after a small epoch: not converged.
        for i in 0..16 {
            rule.record(slot, f64::from(i % 2));
        }
        assert!(!rule.check());
        let first = rule.half_width();
        assert!(first.is_finite() && first > 0.25);
        // Keep sampling; later checkpoints pay a stricter δ_k yet still
        // tighten, and eventually converge.
        let mut converged = false;
        for round in 0..64 {
            for i in 0..64 {
                rule.record(slot, f64::from(i % 2));
            }
            if rule.check() {
                converged = true;
                break;
            }
            assert!(round < 63, "rule never converged: {}", rule.half_width());
        }
        assert!(converged);
        assert!(rule.half_width() <= 0.25);
        assert!(rule.checks() >= 2);
    }

    #[test]
    fn stopping_rule_without_tracked_statistics_never_converges() {
        let mut rule = StoppingRule::new(Precision::new(0.5));
        assert!(!rule.check());
        assert_eq!(rule.half_width(), f64::INFINITY);
        assert_eq!(rule.num_tracked(), 0);
    }

    #[test]
    fn deadline_is_separate_from_the_statistical_check() {
        let rule = StoppingRule::new(Precision::new(0.5).with_deadline(Duration::ZERO));
        assert!(rule.deadline_expired(Instant::now()));
        let lenient =
            StoppingRule::new(Precision::new(0.5).with_deadline(Duration::from_secs(3600)));
        assert!(!lenient.deadline_expired(Instant::now()));
        let none = StoppingRule::new(Precision::new(0.5));
        assert!(!none.deadline_expired(Instant::now()));
    }

    #[test]
    fn precision_cap_combines_budgets() {
        assert_eq!(Precision::new(0.1).cap(500), 500);
        assert_eq!(Precision::new(0.1).with_max_worlds(200).cap(500), 200);
        assert_eq!(Precision::new(0.1).with_max_worlds(900).cap(500), 500);
        assert_eq!(Precision::new(0.1).with_epoch(0).epoch, 1);
    }
}
