//! Serializable boundary messages for distributed shard workers: the
//! per-(world, shard) summary a worker ships to the coordinator, and the
//! coordinator-side DSU glue that reassembles global component structure
//! from those summaries.
//!
//! ## The exchange
//!
//! A worker owning shard `s` replays the full-graph edge stream
//! ([`crate::sharded::ShardedWorldEngine::sample_shard_world`]) but
//! materialises only its own shard.  For every sampled world it extracts a
//! [`ShardWorldRecord`]: the shard-local component count, the present cut
//! edges incident to the shard with the component **label** of the local
//! endpoint of each, the sizes of the labelled boundary components, the
//! largest interior (non-boundary) component, and the shard's isolated
//! vertex count.  That record is everything the coordinator needs — the
//! shard's CSR never crosses the wire.
//!
//! The coordinator collects one record per shard per world and runs
//! [`glue_records`]: a disjoint-set union over the shards' local components,
//! unioned across each present cut edge exactly as
//! [`crate::sharded::ShardedComponents`] does in process.  Because a DSU's
//! component structure is invariant to union order, the glued component
//! count, largest-component size and isolated count are **bit-identical**
//! to the in-process cut-aware path at equal seeds — that is the parity
//! contract of the distributed suite.
//!
//! ## Wire format
//!
//! Records cross the line-delimited JSON protocol as compact ASCII strings
//! ([`ShardWorldRecord::encode`] / [`ShardWorldRecord::decode`]) so this
//! crate needs no JSON dependency: six `|`-separated fields, with the cut
//! and size lists as comma-separated `key:value` pairs.  See `ugs-server`'s
//! wire-grammar reference for where the strings are embedded.

use graph_algos::dsu::UnionFind;
use graph_algos::traversal::connected_components;
use uncertain_graph::GraphPartition;

use crate::sharded::ShardScratch;

/// One shard's contribution to one sampled world: everything the
/// coordinator's cross-shard glue needs, and nothing shard-sized.
///
/// Records are extracted with [`extract_shard_record`] and glued with
/// [`glue_records`]; both sides of the exchange agree on the partition (the
/// cut-edge indexing is the partition's
/// [`GraphPartition::cut_edges`] order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardWorldRecord {
    /// Number of connected components of the shard-local world (isolated
    /// vertices included).
    pub comp_count: u32,
    /// Present cut edges incident to the shard, as ascending
    /// `(cut index, local component label)` pairs — the label is the
    /// shard-local component of the cut's endpoint inside this shard.
    pub cuts: Vec<(u32, u32)>,
    /// Sizes of the distinct boundary components (labels that appear in
    /// [`ShardWorldRecord::cuts`]), as ascending `(label, size)` pairs.
    pub label_sizes: Vec<(u32, u32)>,
    /// Size of the largest *interior* component — one touching no present
    /// cut — or `0` if every component touches the boundary.
    pub max_other: u32,
    /// Vertices with local degree 0 and no incident present cut edge.
    pub isolated: u32,
    /// Present intra-shard edges of this world (the shard's share of the
    /// world's edge count; cut edges are counted by the coordinator).
    pub intra_present: u32,
}

impl ShardWorldRecord {
    /// Renders the record as a compact single-line ASCII string:
    /// `comp_count|cut:label,…|label:size,…|max_other|isolated|intra`.
    /// Empty lists render as empty fields.
    pub fn encode(&self) -> String {
        let pairs = |list: &[(u32, u32)]| {
            list.iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.comp_count,
            pairs(&self.cuts),
            pairs(&self.label_sizes),
            self.max_other,
            self.isolated,
            self.intra_present
        )
    }

    /// Parses a string produced by [`ShardWorldRecord::encode`].  Malformed
    /// input yields a typed error message (never a panic): the coordinator
    /// surfaces it as an internal protocol error.
    pub fn decode(text: &str) -> Result<ShardWorldRecord, String> {
        let fields: Vec<&str> = text.split('|').collect();
        if fields.len() != 6 {
            return Err(format!(
                "shard record must have 6 '|'-separated fields, got {}",
                fields.len()
            ));
        }
        let int = |s: &str, what: &str| -> Result<u32, String> {
            s.parse::<u32>()
                .map_err(|_| format!("shard record: invalid {what} {s:?}"))
        };
        let pairs = |s: &str, what: &str| -> Result<Vec<(u32, u32)>, String> {
            if s.is_empty() {
                return Ok(Vec::new());
            }
            s.split(',')
                .map(|pair| {
                    let (k, v) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("shard record: {what} entry {pair:?} has no ':'"))?;
                    Ok((int(k, what)?, int(v, what)?))
                })
                .collect()
        };
        Ok(ShardWorldRecord {
            comp_count: int(fields[0], "component count")?,
            cuts: pairs(fields[1], "cut list")?,
            label_sizes: pairs(fields[2], "size list")?,
            max_other: int(fields[3], "max_other")?,
            isolated: int(fields[4], "isolated count")?,
            intra_present: int(fields[5], "intra count")?,
        })
    }
}

/// Extracts the boundary record of the most recently sampled world in
/// `scratch` (one [`crate::sharded::ShardedWorldEngine::sample_shard_world`]
/// call).  Pure shard-local work: a component labelling of the shard world
/// plus one pass over the incident present cuts.
pub fn extract_shard_record(
    partition: &GraphPartition,
    scratch: &ShardScratch,
) -> ShardWorldRecord {
    let shard = scratch.shard();
    let world = scratch.world();
    let (labels, count) = connected_components(world);

    // Ascending cut order: the sampler emits skip-order (descending
    // probability); the coordinator's merge-walk and the wire format want a
    // canonical order, and DSU glue is union-order-invariant.
    let mut cut_ids: Vec<u32> = scratch.present_cuts().to_vec();
    cut_ids.sort_unstable();
    let cuts: Vec<(u32, u32)> = cut_ids
        .iter()
        .map(|&c| {
            let cut = partition.cut_edge(c as usize);
            let local = if cut.shard_u == shard {
                cut.local_u
            } else {
                cut.local_v
            };
            (c, labels[local] as u32)
        })
        .collect();

    let mut sizes = vec![0u32; count];
    for &label in &labels {
        sizes[label] += 1;
    }
    let mut boundary = vec![false; count];
    for &(_, label) in &cuts {
        boundary[label as usize] = true;
    }
    let label_sizes: Vec<(u32, u32)> = (0..count)
        .filter(|&l| boundary[l])
        .map(|l| (l as u32, sizes[l]))
        .collect();
    let max_other = (0..count)
        .filter(|&l| !boundary[l])
        .map(|l| sizes[l])
        .max()
        .unwrap_or(0);

    // A local-degree-0 vertex is globally isolated iff no present cut
    // touches it; every cut incident to the vertex is incident to the shard,
    // so the incidence-filtered present list is exhaustive here.
    let mut cut_touched = vec![false; world.num_vertices()];
    for &c in &cut_ids {
        let cut = partition.cut_edge(c as usize);
        if cut.shard_u == shard {
            cut_touched[cut.local_u] = true;
        }
        if cut.shard_v == shard {
            cut_touched[cut.local_v] = true;
        }
    }
    let isolated = (0..world.num_vertices())
        .filter(|&v| world.degree(v) == 0 && !cut_touched[v])
        .count() as u32;

    ShardWorldRecord {
        comp_count: count as u32,
        cuts,
        label_sizes,
        max_other,
        isolated,
        intra_present: scratch.present_edges().len() as u32,
    }
}

/// Folds the most recent world in `scratch` into a worker's running
/// aggregates: the degree histogram (`hist[d]` = vertex-world observations
/// at degree `d`, grown on demand — the worker does not know the parent
/// graph's maximum support degree) and the per-local-edge appearance counts
/// (`intra[e]` += 1 for each present intra-shard edge).
///
/// A vertex's degree in the world is its shard-local degree plus its
/// incident present cut edges — the same sum the in-process
/// `DegreeHistogramObserver` computes from the all-shard view.
pub fn accumulate_shard_aggregates(
    partition: &GraphPartition,
    scratch: &ShardScratch,
    hist: &mut Vec<u64>,
    intra: &mut [u64],
) {
    let shard = scratch.shard();
    let world = scratch.world();
    let mut cut_degree = vec![0u32; world.num_vertices()];
    for &c in scratch.present_cuts() {
        let cut = partition.cut_edge(c as usize);
        if cut.shard_u == shard {
            cut_degree[cut.local_u] += 1;
        }
        if cut.shard_v == shard {
            cut_degree[cut.local_v] += 1;
        }
    }
    for (v, &cuts) in cut_degree.iter().enumerate() {
        let degree = world.degree(v) + cuts as usize;
        if degree >= hist.len() {
            hist.resize(degree + 1, 0);
        }
        hist[degree] += 1;
    }
    for &e in scratch.present_edges() {
        intra[e as usize] += 1;
    }
}

/// The coordinator's view of one fully glued world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GluedWorld {
    /// Global connected-component count (isolated vertices included).
    pub num_components: usize,
    /// Size of the largest global component.
    pub largest: usize,
    /// Globally isolated vertices.
    pub isolated: usize,
    /// Distinct present cut edges of this world, ascending — the
    /// coordinator's share of the world's edge set (for edge-frequency
    /// counting and the per-world present-edge total).
    pub present_cuts: Vec<u32>,
}

impl GluedWorld {
    /// Whether the world is connected (exactly one component).
    pub fn connected(&self) -> bool {
        self.num_components == 1
    }
}

/// Glues one record per shard (indexed by shard) into the world's global
/// component structure — the distributed counterpart of
/// [`crate::sharded::ShardedComponents::compute`].
///
/// Every present cut edge must be reported by **both** of its endpoint
/// shards with consistent indices; a record set that violates this (a
/// worker answered for the wrong world, or the transport corrupted a
/// message) yields a typed error instead of a wrong answer.
pub fn glue_records(
    partition: &GraphPartition,
    records: &[ShardWorldRecord],
) -> Result<GluedWorld, String> {
    if records.len() != partition.num_shards() {
        return Err(format!(
            "expected one record per shard ({}), got {}",
            partition.num_shards(),
            records.len()
        ));
    }
    let mut offsets = vec![0usize; records.len() + 1];
    for (s, record) in records.iter().enumerate() {
        offsets[s + 1] = offsets[s] + record.comp_count as usize;
        let labels = record
            .cuts
            .iter()
            .map(|&(_, label)| label)
            .chain(record.label_sizes.iter().map(|&(label, _)| label));
        for label in labels {
            if label >= record.comp_count {
                return Err(format!(
                    "shard {s}: component label {label} out of range (count {})",
                    record.comp_count
                ));
            }
        }
    }
    // Pair up each present cut's two endpoint labels.  Each cut spans two
    // distinct shards, so it must appear in exactly two records — and those
    // records must be its endpoint shards.
    let mut entries: Vec<(u32, usize, u32)> = Vec::new();
    for (s, record) in records.iter().enumerate() {
        for window in record.cuts.windows(2) {
            if window[0].0 >= window[1].0 {
                return Err(format!("shard {s}: cut list not strictly ascending"));
            }
        }
        entries.extend(record.cuts.iter().map(|&(cut, label)| (cut, s, label)));
    }
    entries.sort_unstable();
    if !entries.len().is_multiple_of(2) {
        return Err("present cut reported by only one shard".to_string());
    }
    let mut dsu = UnionFind::new(offsets[records.len()]);
    let mut present_cuts = Vec::with_capacity(entries.len() / 2);
    for pair in entries.chunks(2) {
        let (cut_id, shard_a, label_a) = pair[0];
        let (cut_id_b, shard_b, label_b) = pair[1];
        if cut_id != cut_id_b {
            return Err(format!("present cut {cut_id} reported by only one shard"));
        }
        if cut_id as usize >= partition.cut_edges().len() {
            return Err(format!("cut index {cut_id} out of range"));
        }
        let cut = partition.cut_edge(cut_id as usize);
        if (shard_a, shard_b) != (cut.shard_u.min(cut.shard_v), cut.shard_u.max(cut.shard_v)) {
            return Err(format!(
                "cut {cut_id} reported by shards {shard_a}/{shard_b}, \
                 expected {}/{}",
                cut.shard_u, cut.shard_v
            ));
        }
        dsu.union(
            offsets[shard_a] + label_a as usize,
            offsets[shard_b] + label_b as usize,
        );
        present_cuts.push(cut_id);
    }
    let num_components = dsu.num_sets();

    // Glued sizes: every boundary component's size lands on its DSU root;
    // interior components never union, so their maxima are the per-shard
    // `max_other` fields.
    let mut glued_sizes = vec![0usize; offsets[records.len()]];
    let mut largest = 0usize;
    for (s, record) in records.iter().enumerate() {
        largest = largest.max(record.max_other as usize);
        for &(label, size) in &record.label_sizes {
            let root = dsu.find(offsets[s] + label as usize);
            glued_sizes[root] += size as usize;
            largest = largest.max(glued_sizes[root]);
        }
    }
    let isolated = records.iter().map(|r| r.isolated as usize).sum();
    Ok(GluedWorld {
        num_components,
        largest,
        isolated,
        present_cuts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SampleMethod;
    use crate::sharded::{ShardedComponents, ShardedWorldEngine};
    use crate::source::{WorldSource, WorldView};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::UncertainGraph;

    fn toy() -> UncertainGraph {
        UncertainGraph::from_edges(
            9,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (0, 2, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (3, 5, 0.4),
                (2, 3, 0.3),
                (0, 5, 0.2),
                (6, 7, 0.55),
                (5, 6, 0.35),
            ],
        )
        .unwrap()
    }

    #[test]
    fn records_round_trip_through_the_wire_encoding() {
        let record = ShardWorldRecord {
            comp_count: 4,
            cuts: vec![(0, 1), (3, 2)],
            label_sizes: vec![(1, 5), (2, 1)],
            max_other: 7,
            isolated: 2,
            intra_present: 11,
        };
        let text = record.encode();
        assert_eq!(ShardWorldRecord::decode(&text).unwrap(), record);
        // Empty lists survive too.
        let empty = ShardWorldRecord {
            comp_count: 3,
            isolated: 3,
            ..ShardWorldRecord::default()
        };
        assert_eq!(ShardWorldRecord::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn malformed_records_decode_to_typed_errors() {
        for bad in [
            "",
            "1|2|3",
            "x|||0|0|0",
            "1|0|0|0|0|0",
            "1|0:1:2||0|0|0",
            "1|0:x||0|0|0",
            "1||1:2|0|0|0|extra",
        ] {
            assert!(ShardWorldRecord::decode(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn glue_matches_the_in_process_cut_aware_path() {
        let g = toy();
        for method in [SampleMethod::Skip, SampleMethod::PerEdge] {
            for shards in [2usize, 3] {
                let partition = GraphPartition::contiguous(&g, shards).unwrap();
                let engine = ShardedWorldEngine::new(&g, &partition).with_method(method);
                let mut full = WorldSource::make_scratch(&engine);
                let mut singles: Vec<_> =
                    (0..shards).map(|s| engine.make_shard_scratch(s)).collect();
                let mut rng_full = SmallRng::seed_from_u64(99);
                let mut rngs: Vec<SmallRng> =
                    (0..shards).map(|_| SmallRng::seed_from_u64(99)).collect();
                for world in 0..150 {
                    let view = match engine.sample_world(&mut rng_full, &mut full) {
                        WorldView::Sharded(view) => view,
                        _ => unreachable!(),
                    };
                    let mut comps = ShardedComponents::compute(&view);
                    let records: Vec<ShardWorldRecord> = singles
                        .iter_mut()
                        .zip(rngs.iter_mut())
                        .map(|(scratch, rng)| {
                            engine.sample_shard_world(rng, scratch);
                            // Ship through the wire encoding to cover it.
                            ShardWorldRecord::decode(
                                &extract_shard_record(&partition, scratch).encode(),
                            )
                            .unwrap()
                        })
                        .collect();
                    let glued = glue_records(&partition, &records).unwrap();
                    assert_eq!(
                        glued.num_components,
                        comps.num_components(),
                        "{method:?} shards={shards} world {world}"
                    );
                    assert_eq!(
                        glued.largest,
                        comps.largest_component(),
                        "{method:?} shards={shards} world {world}"
                    );
                    // Isolated: a vertex with no present edge at all.
                    let expected_isolated = (0..g.num_vertices())
                        .filter(|&v| {
                            let (s, local) = partition.locate(v);
                            view.shard_world(s).degree(local) == 0 && view.cut_degree(v) == 0
                        })
                        .count();
                    assert_eq!(glued.isolated, expected_isolated);
                    // Present cuts: ascending distinct, same set as the view.
                    let mut expected_cuts = view.present_cuts().to_vec();
                    expected_cuts.sort_unstable();
                    assert_eq!(glued.present_cuts, expected_cuts);
                    // The per-world edge total reassembles from shard intra
                    // counts plus the glued cut count.
                    let total: usize = records.iter().map(|r| r.intra_present as usize).sum();
                    let mut whole = 0;
                    for s in 0..shards {
                        whole += view.shard_present(s).len();
                    }
                    assert_eq!(total, whole);
                }
            }
        }
    }

    #[test]
    fn aggregates_match_the_monolithic_per_world_tallies() {
        let g = toy();
        let partition = GraphPartition::contiguous(&g, 3).unwrap();
        let engine = ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::Skip);
        let mut full = WorldSource::make_scratch(&engine);
        let mut singles: Vec<_> = (0..3).map(|s| engine.make_shard_scratch(s)).collect();
        let mut rng_full = SmallRng::seed_from_u64(5);
        let mut rngs: Vec<SmallRng> = (0..3).map(|_| SmallRng::seed_from_u64(5)).collect();
        let worlds = 80usize;
        let mut hists: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut intras: Vec<Vec<u64>> = partition
            .shards()
            .iter()
            .map(|shard| vec![0u64; shard.num_edges()])
            .collect();
        let mut cut_counts = vec![0u64; partition.cut_edges().len()];
        let mut expected_hist: Vec<u64> = Vec::new();
        let mut expected_edges = vec![0u64; g.num_edges()];
        for _ in 0..worlds {
            let view = match engine.sample_world(&mut rng_full, &mut full) {
                WorldView::Sharded(view) => view,
                _ => unreachable!(),
            };
            for v in 0..g.num_vertices() {
                let (s, local) = partition.locate(v);
                let degree = view.shard_world(s).degree(local) + view.cut_degree(v);
                if degree >= expected_hist.len() {
                    expected_hist.resize(degree + 1, 0);
                }
                expected_hist[degree] += 1;
            }
            for s in 0..3 {
                let shard = partition.shard(s);
                for &e in view.shard_present(s) {
                    expected_edges[shard.global_edge(e as usize)] += 1;
                }
            }
            for &c in view.present_cuts() {
                expected_edges[partition.cut_edge(c as usize).edge] += 1;
            }

            let records: Vec<ShardWorldRecord> = singles
                .iter_mut()
                .zip(rngs.iter_mut())
                .enumerate()
                .map(|(s, (scratch, rng))| {
                    engine.sample_shard_world(rng, scratch);
                    accumulate_shard_aggregates(&partition, scratch, &mut hists[s], &mut intras[s]);
                    extract_shard_record(&partition, scratch)
                })
                .collect();
            for &c in &glue_records(&partition, &records).unwrap().present_cuts {
                cut_counts[c as usize] += 1;
            }
        }
        // Degree histogram: the shard hists partition the vertex set.
        let width = hists.iter().map(Vec::len).max().unwrap();
        let mut combined = vec![0u64; width];
        for hist in &hists {
            for (d, &count) in hist.iter().enumerate() {
                combined[d] += count;
            }
        }
        combined.resize(expected_hist.len().max(width), 0);
        expected_hist.resize(combined.len(), 0);
        assert_eq!(combined, expected_hist);
        // Edge counts: shard intra counts scatter back by global edge id,
        // cut counts by the partition's cut table.
        let mut edges = vec![0u64; g.num_edges()];
        for (s, intra) in intras.iter().enumerate() {
            let shard = partition.shard(s);
            for (e, &count) in intra.iter().enumerate() {
                edges[shard.global_edge(e)] += count;
            }
        }
        for (c, &count) in cut_counts.iter().enumerate() {
            edges[partition.cut_edge(c).edge] += count;
        }
        assert_eq!(edges, expected_edges);
    }

    #[test]
    fn inconsistent_record_sets_are_rejected() {
        let g = toy();
        let partition = GraphPartition::contiguous(&g, 2).unwrap();
        let blank = |count: u32| ShardWorldRecord {
            comp_count: count,
            ..ShardWorldRecord::default()
        };
        // Wrong record count.
        assert!(glue_records(&partition, &[blank(1)]).is_err());
        // A cut reported by one shard only.
        let mut one_sided = [blank(2), blank(2)];
        one_sided[0].cuts = vec![(0, 0)];
        assert!(glue_records(&partition, &[one_sided[0].clone(), one_sided[1].clone()]).is_err());
        // Label out of range.
        let mut bad_label = vec![blank(1), blank(1)];
        bad_label[0].cuts = vec![(0, 5)];
        assert!(glue_records(&partition, &bad_label).is_err());
        // Cut index out of range (both shards agree on the bogus index).
        let mut bad_cut = vec![blank(1), blank(1)];
        let bogus = partition.cut_edges().len() as u32 + 7;
        bad_cut[0].cuts = vec![(bogus, 0)];
        bad_cut[1].cuts = vec![(bogus, 0)];
        assert!(glue_records(&partition, &bad_cut).is_err());
        // Unsorted cut list.
        let mut unsorted = vec![blank(3), blank(3)];
        unsorted[0].cuts = vec![(2, 0), (1, 1)];
        assert!(glue_records(&partition, &unsorted).is_err());
    }
}
