//! Pairwise Monte-Carlo queries: shortest-path distance (`SP`) and
//! reliability (`RL`).
//!
//! * `SP(u, v)` — the average hop distance between `u` and `v` over the
//!   sampled worlds in which the pair is connected (worlds that disconnect
//!   the pair are excluded, exactly as in the paper).
//! * `RL(u, v)` — the fraction of sampled worlds in which `v` is reachable
//!   from `u`.
//!
//! Both are evaluated together: reliability falls out of the per-world
//! connected-components labelling, and distances reuse one BFS per distinct
//! source vertex per world (pairs sharing a source share the BFS).
//!
//! The evaluation is a [`crate::batch::WorldObserver`]
//! ([`PairQueriesObserver`]) so it can share sampled worlds with other
//! queries in a [`QueryBatch`]; [`pair_queries()`] is the single-observer
//! wrapper keeping the original signature (bit-identical sequentially, one
//! caller-RNG draw).

use rand::Rng;
use uncertain_graph::UncertainGraph;

use crate::batch::{QueryBatch, WorldObserver};
use crate::engine::WorldScratch;
use crate::mc::MonteCarlo;
use crate::sharded::{sharded_bfs_distances, ShardedComponents, ShardedWorld};
use crate::source::ShardSupport;
use graph_algos::traversal::{bfs_distances, connected_components};

/// Result of the pairwise queries for a fixed pair list.
#[derive(Debug, Clone, PartialEq)]
pub struct PairQueryResult {
    /// The evaluated pairs, in the order the observations refer to.
    pub pairs: Vec<(usize, usize)>,
    /// `SP`: mean hop distance over the worlds in which the pair was
    /// connected; `f64::NAN` when the pair was never connected.
    pub mean_distance: Vec<f64>,
    /// `RL`: fraction of worlds in which the pair was connected.
    pub reliability: Vec<f64>,
    /// Number of worlds in which each pair was connected.
    pub connected_worlds: Vec<usize>,
    /// Total number of sampled worlds.
    pub num_worlds: usize,
}

impl PairQueryResult {
    /// The `SP` observations with never-connected pairs removed (used when
    /// building empirical distributions).
    pub fn finite_distances(&self) -> Vec<f64> {
        self.mean_distance
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .collect()
    }
}

/// Observer evaluating `SP` and `RL` for a fixed pair list; finalises to a
/// [`PairQueryResult`].
///
/// Pairs are grouped by source vertex at construction so that one BFS per
/// world serves all pairs sharing a source.
#[derive(Debug, Clone)]
pub struct PairQueriesObserver {
    pairs: Vec<(usize, usize)>,
    sources: Vec<(usize, Vec<usize>)>,
    /// Layout: [0, num_pairs) = Σ distances over connected worlds,
    ///         [num_pairs, 2*num_pairs) = # connected worlds.
    totals: Vec<f64>,
    /// Scratch of the shard-aware BFS (lazily sized; not part of the
    /// accumulated state).
    shard_dist: Vec<u32>,
    /// Scratch queue of the shard-aware BFS.
    shard_queue: Vec<u32>,
}

impl PairQueriesObserver {
    /// An observer for the given `(source, target)` pairs.
    pub fn new(pairs: &[(usize, usize)]) -> Self {
        let mut by_source: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (idx, &(u, _)) in pairs.iter().enumerate() {
            by_source.entry(u).or_default().push(idx);
        }
        let sources: Vec<(usize, Vec<usize>)> = {
            let mut s: Vec<_> = by_source.into_iter().collect();
            s.sort_by_key(|&(src, _)| src);
            s
        };
        PairQueriesObserver {
            pairs: pairs.to_vec(),
            sources,
            totals: vec![0.0; 2 * pairs.len()],
            shard_dist: Vec::new(),
            shard_queue: Vec::new(),
        }
    }
}

impl WorldObserver for PairQueriesObserver {
    type Output = PairQueryResult;

    fn observe(&mut self, scratch: &WorldScratch) {
        let world = scratch.world();
        let num_pairs = self.pairs.len();
        let (labels, _) = connected_components(world);
        let (distance_acc, connected_acc) = self.totals.split_at_mut(num_pairs);
        for (source, pair_indices) in &self.sources {
            // Check whether any pair from this source is connected in this
            // world before paying for the BFS.
            let any_connected = pair_indices
                .iter()
                .any(|&idx| labels[self.pairs[idx].0] == labels[self.pairs[idx].1]);
            if !any_connected {
                continue;
            }
            let dist = bfs_distances(world, *source);
            for &idx in pair_indices {
                let (u, v) = self.pairs[idx];
                debug_assert_eq!(u, *source);
                if labels[u] == labels[v] {
                    connected_acc[idx] += 1.0;
                    distance_acc[idx] += dist[v] as f64;
                }
            }
        }
    }

    fn shard_support(&self) -> ShardSupport {
        ShardSupport::CutAware
    }

    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        // Existence counts come from the exact cross-shard component
        // structure (DSU over the cut edges); distances from a BFS that
        // hops across present cut edges.  Both yield the same per-world
        // integers as the monolithic kernels, so the accumulated sums are
        // bit-identical.
        let partition = world.partition();
        let num_pairs = self.pairs.len();
        let mut components = ShardedComponents::compute(world);
        let (distance_acc, connected_acc) = self.totals.split_at_mut(num_pairs);
        for (source, pair_indices) in &self.sources {
            let any_connected = pair_indices.iter().any(|&idx| {
                let (u, v) = self.pairs[idx];
                components.connected(partition, u, v)
            });
            if !any_connected {
                continue;
            }
            sharded_bfs_distances(world, *source, &mut self.shard_dist, &mut self.shard_queue);
            for &idx in pair_indices {
                let (u, v) = self.pairs[idx];
                debug_assert_eq!(u, *source);
                if components.connected(partition, u, v) {
                    connected_acc[idx] += 1.0;
                    distance_acc[idx] += self.shard_dist[v] as f64;
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (t, o) in self.totals.iter_mut().zip(other.totals) {
            *t += o;
        }
    }

    fn finalize(self, num_worlds: usize) -> PairQueryResult {
        let num_pairs = self.pairs.len();
        let mut mean_distance = Vec::with_capacity(num_pairs);
        let mut reliability = Vec::with_capacity(num_pairs);
        let mut connected_worlds = Vec::with_capacity(num_pairs);
        for idx in 0..num_pairs {
            let connected = self.totals[num_pairs + idx];
            connected_worlds.push(connected as usize);
            reliability.push(if num_worlds == 0 {
                0.0
            } else {
                connected / num_worlds as f64
            });
            if connected > 0.0 {
                mean_distance.push(self.totals[idx] / connected);
            } else {
                mean_distance.push(f64::NAN);
            }
        }
        PairQueryResult {
            pairs: self.pairs,
            mean_distance,
            reliability,
            connected_worlds,
            num_worlds,
        }
    }
}

/// Evaluates `SP` and `RL` for `pairs` with Monte-Carlo sampling.
pub fn pair_queries<R: Rng + ?Sized>(
    g: &UncertainGraph,
    pairs: &[(usize, usize)],
    mc: &MonteCarlo,
    rng: &mut R,
) -> PairQueryResult {
    let num_pairs = pairs.len();
    if num_pairs == 0 || mc.num_worlds == 0 {
        return PairQueryResult {
            pairs: pairs.to_vec(),
            mean_distance: vec![f64::NAN; num_pairs],
            reliability: vec![0.0; num_pairs],
            connected_worlds: vec![0; num_pairs],
            num_worlds: mc.num_worlds,
        };
    }
    let mut batch = QueryBatch::new(g, mc);
    let handle = batch.register(PairQueriesObserver::new(pairs));
    batch.run(rng).take(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_path_graph_has_exact_distances_and_full_reliability() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let pairs = vec![(0, 3), (0, 1), (1, 3)];
        let mc = MonteCarlo::worlds(50);
        let mut rng = SmallRng::seed_from_u64(1);
        let result = pair_queries(&g, &pairs, &mc, &mut rng);
        assert_eq!(result.mean_distance, vec![3.0, 1.0, 2.0]);
        assert_eq!(result.reliability, vec![1.0, 1.0, 1.0]);
        assert_eq!(result.connected_worlds, vec![50, 50, 50]);
    }

    #[test]
    fn reliability_matches_closed_form_for_a_single_edge() {
        let g = UncertainGraph::from_edges(2, [(0, 1, 0.3)]).unwrap();
        let pairs = vec![(0, 1)];
        let mc = MonteCarlo::worlds(30_000);
        let mut rng = SmallRng::seed_from_u64(5);
        let result = pair_queries(&g, &pairs, &mc, &mut rng);
        assert!((result.reliability[0] - 0.3).abs() < 0.01);
        // whenever connected the distance is exactly 1
        assert!((result.mean_distance[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_hop_reliability_matches_product_of_probabilities() {
        // 0 -0.6- 1 -0.5- 2: reliability(0,2) = 0.3, distance always 2.
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.6), (1, 2, 0.5)]).unwrap();
        let pairs = vec![(0, 2)];
        let mc = MonteCarlo::worlds(40_000);
        let mut rng = SmallRng::seed_from_u64(9);
        let result = pair_queries(&g, &pairs, &mc, &mut rng);
        assert!((result.reliability[0] - 0.3).abs() < 0.01);
        assert!((result.mean_distance[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pairs_get_nan_distance_and_zero_reliability() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        let pairs = vec![(0, 2), (0, 1)];
        let mc = MonteCarlo::worlds(100);
        let mut rng = SmallRng::seed_from_u64(2);
        let result = pair_queries(&g, &pairs, &mc, &mut rng);
        assert!(result.mean_distance[0].is_nan());
        assert_eq!(result.reliability[0], 0.0);
        assert_eq!(result.finite_distances().len(), 1);
    }

    #[test]
    fn shortest_path_uses_alternative_routes_when_available() {
        // Square 0-1-2-3-0: distance(0,2) is 2 whenever any of the two
        // 2-hop routes survives.
        let g = UncertainGraph::from_edges(4, [(0, 1, 0.7), (1, 2, 0.7), (2, 3, 0.7), (3, 0, 0.7)])
            .unwrap();
        let pairs = vec![(0, 2)];
        let mc = MonteCarlo::worlds(20_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let result = pair_queries(&g, &pairs, &mc, &mut rng);
        // Conditional on connectivity the distance is always exactly 2.
        assert!((result.mean_distance[0] - 2.0).abs() < 1e-12);
        // P(connected) = P(route A) + P(route B) - P(both) with route prob 0.49
        let route = 0.7 * 0.7;
        let expected = 2.0 * route - route * route;
        assert!((result.reliability[0] - expected).abs() < 0.01);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let mc = MonteCarlo::worlds(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let result = pair_queries(&g, &[], &mc, &mut rng);
        assert!(result.pairs.is_empty());
        let result = pair_queries(&g, &[(0, 1)], &MonteCarlo::worlds(0), &mut rng);
        assert!(result.mean_distance[0].is_nan());
        assert_eq!(result.reliability[0], 0.0);
    }
}
