//! Vertex-centric Monte-Carlo queries: expected PageRank (`PR`) and expected
//! local clustering coefficient (`CC`).
//!
//! Both queries are [`crate::batch::WorldObserver`]s ([`PageRankObserver`],
//! [`ClusteringObserver`]) so they can share sampled worlds with other
//! queries in a [`QueryBatch`]; the free functions below are thin
//! single-observer wrappers that keep the original signatures (and, for
//! sequential runs, bit-identical results).  They advance the caller RNG by
//! exactly one `u64` draw (zero when `num_worlds == 0` or the graph is
//! empty).

use rand::Rng;
use uncertain_graph::UncertainGraph;

use crate::batch::{QueryBatch, WorldObserver};
use crate::engine::WorldScratch;
use crate::halo::{HaloClustering, HaloPageRank};
use crate::mc::MonteCarlo;
use crate::sharded::ShardedWorld;
use crate::source::ShardSupport;
use graph_algos::clustering::local_clustering_coefficients;
use graph_algos::pagerank::{pagerank, PageRankConfig};

/// Observer accumulating deterministic PageRank over sampled worlds;
/// finalises to the per-vertex expected PageRank.
///
/// Sharded sources are supported through the ghost-halo exchange
/// ([`crate::halo`]): per-world ranks are bit-identical to the monolithic
/// kernel's, so the accumulated expectation is too.
#[derive(Debug, Clone)]
pub struct PageRankObserver {
    config: PageRankConfig,
    totals: Vec<f64>,
    /// Superstep scratch for sharded views (lazily sized; not part of the
    /// accumulated state).
    halo: HaloPageRank,
}

impl PageRankObserver {
    /// An observer for the vertices of `g` with the default configuration.
    pub fn new(g: &UncertainGraph) -> Self {
        Self::with_config(g, PageRankConfig::default())
    }

    /// An observer with an explicit PageRank configuration.
    pub fn with_config(g: &UncertainGraph, config: PageRankConfig) -> Self {
        PageRankObserver {
            config,
            totals: vec![0.0; g.num_vertices()],
            halo: HaloPageRank::new(),
        }
    }

    /// Accumulates one world's per-vertex ranks (the seam shared by the
    /// in-process paths and the distributed coordinator).
    pub fn record_scores(&mut self, scores: &[f64]) {
        for (t, p) in self.totals.iter_mut().zip(scores.iter()) {
            *t += p;
        }
    }

    /// The PageRank configuration this observer runs.
    pub fn config(&self) -> PageRankConfig {
        self.config
    }
}

impl WorldObserver for PageRankObserver {
    type Output = Vec<f64>;

    fn observe(&mut self, world: &WorldScratch) {
        let pr = pagerank(world.world(), &self.config);
        self.record_scores(&pr);
    }

    fn shard_support(&self) -> ShardSupport {
        ShardSupport::Halo
    }

    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        if world.num_shards() == 1 {
            // Trivial partitions skip the full-graph scatter (no
            // `all_present` list); shard 0 *is* the monolithic world.
            let pr = pagerank(world.shard_world(0), &self.config);
            self.record_scores(&pr);
        } else {
            let config = self.config;
            let pr = self.halo.run(world, &config);
            for (t, p) in self.totals.iter_mut().zip(pr.iter()) {
                *t += p;
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (t, o) in self.totals.iter_mut().zip(other.totals) {
            *t += o;
        }
    }

    fn finalize(self, num_worlds: usize) -> Vec<f64> {
        if num_worlds == 0 {
            return self.totals;
        }
        self.totals
            .into_iter()
            .map(|x| x / num_worlds as f64)
            .collect()
    }
}

/// Observer accumulating local clustering coefficients over sampled worlds;
/// finalises to the per-vertex expected coefficient.
///
/// Sharded sources are supported through a one-shot halo materialisation
/// per world ([`crate::halo::HaloClustering`]), bit-identical to the
/// monolithic kernel.
#[derive(Debug, Clone)]
pub struct ClusteringObserver {
    totals: Vec<f64>,
    /// Halo materialisation scratch for sharded views (lazily sized; not
    /// part of the accumulated state).
    halo: HaloClustering,
}

impl ClusteringObserver {
    /// An observer for the vertices of `g`.
    pub fn new(g: &UncertainGraph) -> Self {
        ClusteringObserver {
            totals: vec![0.0; g.num_vertices()],
            halo: HaloClustering::new(),
        }
    }

    /// Accumulates one world's per-vertex coefficients (the seam shared by
    /// the in-process paths and the distributed coordinator).
    pub fn record_coefficients(&mut self, coefficients: &[f64]) {
        for (t, c) in self.totals.iter_mut().zip(coefficients.iter()) {
            *t += c;
        }
    }
}

impl WorldObserver for ClusteringObserver {
    type Output = Vec<f64>;

    fn observe(&mut self, world: &WorldScratch) {
        let cc = local_clustering_coefficients(world.world());
        self.record_coefficients(&cc);
    }

    fn shard_support(&self) -> ShardSupport {
        ShardSupport::Halo
    }

    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        if world.num_shards() == 1 {
            // See `PageRankObserver::observe_sharded`.
            let cc = local_clustering_coefficients(world.shard_world(0));
            self.record_coefficients(&cc);
        } else {
            let cc = self.halo.run(world);
            for (t, c) in self.totals.iter_mut().zip(cc.iter()) {
                *t += c;
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (t, o) in self.totals.iter_mut().zip(other.totals) {
            *t += o;
        }
    }

    fn finalize(self, num_worlds: usize) -> Vec<f64> {
        if num_worlds == 0 {
            return self.totals;
        }
        self.totals
            .into_iter()
            .map(|x| x / num_worlds as f64)
            .collect()
    }
}

/// Expected PageRank of every vertex: deterministic PageRank averaged over
/// sampled possible worlds.
pub fn expected_pagerank<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<f64> {
    expected_pagerank_with(g, mc, &PageRankConfig::default(), rng)
}

/// [`expected_pagerank`] with an explicit PageRank configuration.
pub fn expected_pagerank_with<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    config: &PageRankConfig,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.num_vertices();
    if mc.num_worlds == 0 || n == 0 {
        return vec![0.0; n];
    }
    let mut batch = QueryBatch::new(g, mc);
    let handle = batch.register(PageRankObserver::with_config(g, *config));
    batch.run(rng).take(handle)
}

/// Expected local clustering coefficient of every vertex, averaged over
/// sampled possible worlds.
pub fn expected_clustering_coefficients<R: Rng + ?Sized>(
    g: &UncertainGraph,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.num_vertices();
    if mc.num_worlds == 0 || n == 0 {
        return vec![0.0; n];
    }
    let mut batch = QueryBatch::new(g, mc);
    let handle = batch.register(ClusteringObserver::new(g));
    batch.run(rng).take(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_graph_matches_deterministic_kernels() {
        // All probabilities 1 → every world is the support graph, so the MC
        // estimate equals the deterministic value exactly.
        let g = UncertainGraph::from_edges(
            4,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 1.0),
            ],
        )
        .unwrap();
        let mc = MonteCarlo::worlds(16);
        let mut rng = SmallRng::seed_from_u64(1);
        let pr = expected_pagerank(&g, &mc, &mut rng);
        let support = graph_algos::DeterministicGraph::support(&g);
        let exact_pr = pagerank(&support, &PageRankConfig::default());
        for (a, b) in pr.iter().zip(exact_pr.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        let cc = expected_clustering_coefficients(&g, &mc, &mut rng);
        let exact_cc = local_clustering_coefficients(&support);
        for (a, b) in cc.iter().zip(exact_cc.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_estimates_sum_to_one_per_world_on_average() {
        let g = UncertainGraph::from_edges(5, [(0, 1, 0.5), (1, 2, 0.4), (2, 3, 0.6), (3, 4, 0.7)])
            .unwrap();
        let mc = MonteCarlo::worlds(300);
        let mut rng = SmallRng::seed_from_u64(7);
        let pr = expected_pagerank(&g, &mc, &mut rng);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn clustering_coefficient_matches_closed_form_on_a_triangle() {
        // In a triangle with edge probability p on one edge and 1 on the
        // others, cc(0) is the probability that edge (1,2) exists.
        let p = 0.3;
        let g = UncertainGraph::from_edges(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, p)]).unwrap();
        let mc = MonteCarlo::worlds(40_000);
        let mut rng = SmallRng::seed_from_u64(11);
        let cc = expected_clustering_coefficients(&g, &mc, &mut rng);
        assert!((cc[0] - p).abs() < 0.02, "cc[0] = {}", cc[0]);
        // vertices 1 and 2 have degree 2 only when (1,2) exists, giving cc 1;
        // otherwise degree 1 and cc 0, so the expectation is also p.
        assert!((cc[1] - p).abs() < 0.02);
    }

    #[test]
    fn zero_worlds_yield_zero_vectors() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let mc = MonteCarlo::worlds(0);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(expected_pagerank(&g, &mc, &mut rng), vec![0.0; 3]);
        assert_eq!(
            expected_clustering_coefficients(&g, &mc, &mut rng),
            vec![0.0; 3]
        );
    }

    #[test]
    fn hub_vertices_receive_higher_expected_pagerank() {
        // A star with reliable spokes: the centre must dominate.
        let g = UncertainGraph::from_edges(
            6,
            [
                (0, 1, 0.9),
                (0, 2, 0.9),
                (0, 3, 0.9),
                (0, 4, 0.9),
                (0, 5, 0.9),
            ],
        )
        .unwrap();
        let mc = MonteCarlo::worlds(400);
        let mut rng = SmallRng::seed_from_u64(5);
        let pr = expected_pagerank(&g, &mc, &mut rng);
        for leaf in 1..6 {
            assert!(pr[0] > pr[leaf]);
        }
    }
}
