//! Shard-aware world sampling over a [`GraphPartition`]: per-shard worlds
//! plus a dedicated boundary pass for the cut edges.
//!
//! ## Replaying the graph axis
//!
//! The service layer shards the *world budget* by letting every worker
//! replay the same world stream from a shared seed and skip to its block.
//! [`ShardedWorldEngine`] applies the same replay idea to the *graph* axis:
//! every consumer draws the **full** edge-outcome stream of the parent graph
//! (the identical [`SkipSampler`]/per-edge draws, in the identical order, as
//! the monolithic [`crate::engine::WorldEngine`]) and then only *scatters*
//! the present edges differently —
//!
//! * an edge internal to shard `s` lands in shard `s`'s present list
//!   (relabelled to the shard-local edge id),
//! * a cut edge lands in the boundary pass
//!   ([`ShardedWorld::present_cuts`]).
//!
//! Because the RNG stream and the sampled edge set are *bit-identical* to
//! the monolithic engine's at equal seeds, every count-style observation
//! (appearance counts, degree tallies, component counts, BFS hop distances)
//! is exactly the same number per world, regardless of the shard count —
//! that is what makes the sharded results of the parity suite bit-identical
//! to monolithic runs, invariant over shards *and* threads.
//!
//! Two consumption modes share this machinery:
//!
//! * [`WorldSource::sample_world`] materialises **every** shard of the
//!   current world ([`ShardedWorld`]) — what the in-process batch driver
//!   feeds to cut-aware observers, whose cross-shard corrections (DSU
//!   unions, ghost-hop BFS) need all shards of a world at once.
//! * [`ShardedWorldEngine::sample_shard_world`] materialises **one** shard
//!   (plus its incident cut edges) — the seam for workers that own a single
//!   shard: such a worker holds the full `O(|E|)` probability table (to
//!   replay the stream) but only its own shard's CSR, scratch and observer
//!   state.  This is the path the `shard` benchmark measures and the
//!   distributed direction builds on.
//!
//! Steady-state sampling is allocation-free in both modes (guarded by the
//! counting-allocator proof in `crates/bench/tests/zero_alloc.rs`).

use std::sync::OnceLock;

use rand::Rng;
use uncertain_graph::{
    GraphPartition, HaloPlan, SkipSampler, UncertainGraph, VertexId, WorldSampler,
};

use graph_algos::dsu::UnionFind;
use graph_algos::traversal::connected_components;
use graph_algos::{DeterministicGraph, WorldTemplate};

use crate::engine::SampleMethod;
use crate::source::{WorldSource, WorldView};

/// How a global edge id scatters under the partition, packed into one `u64`
/// (`shard << 32 | local index`, with shard `u32::MAX` marking a cut edge
/// whose low half is the cut index) — the scatter pass reads one table
/// entry per present edge, so the packing halves its cache traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EdgeClass(u64);

const CUT_SHARD: u32 = u32::MAX;

impl EdgeClass {
    fn local(shard: u32, local: u32) -> Self {
        EdgeClass((u64::from(shard) << 32) | u64::from(local))
    }

    fn cut(cut: u32) -> Self {
        EdgeClass((u64::from(CUT_SHARD) << 32) | u64::from(cut))
    }

    #[inline]
    fn shard(self) -> u32 {
        (self.0 >> 32) as u32
    }

    #[inline]
    fn index(self) -> u32 {
        self.0 as u32
    }
}

/// Immutable shard-aware world source for one uncertain graph and one
/// [`GraphPartition`]; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardedWorldEngine<'g> {
    graph: &'g UncertainGraph,
    partition: &'g GraphPartition,
    /// Full-graph sampler — the replayed stream shared with the monolithic
    /// engine.
    sampler: SkipSampler,
    method: SampleMethod,
    /// One support template per shard (local ids).
    templates: Vec<WorldTemplate>,
    /// `global edge id -> scatter class`.
    class: Vec<EdgeClass>,
    /// Lazily built ghost-halo replication plan (shared by every
    /// halo-capable observer; see [`crate::halo`]).
    halo: OnceLock<HaloPlan>,
}

impl<'g> ShardedWorldEngine<'g> {
    /// Builds the engine with [`SampleMethod::Auto`].
    ///
    /// # Panics
    /// Panics if `partition` was not built from a graph shaped like `g`
    /// (vertex/edge counts must match).
    pub fn new(g: &'g UncertainGraph, partition: &'g GraphPartition) -> Self {
        assert!(
            partition.matches(g),
            "partition was built for a {}-vertex/{}-edge graph, got {}/{}",
            partition.num_vertices(),
            partition.num_edges(),
            g.num_vertices(),
            g.num_edges()
        );
        let mut class = vec![EdgeClass::cut(0); g.num_edges()];
        for (s, shard) in partition.shards().iter().enumerate() {
            for (local, &global) in shard.edges().iter().enumerate() {
                class[global] = EdgeClass::local(s as u32, local as u32);
            }
        }
        for (c, cut) in partition.cut_edges().iter().enumerate() {
            class[cut.edge] = EdgeClass::cut(c as u32);
        }
        let templates = partition
            .shards()
            .iter()
            .map(|shard| WorldTemplate::new(shard.graph()))
            .collect();
        ShardedWorldEngine {
            graph: g,
            partition,
            sampler: SkipSampler::new(g),
            method: SampleMethod::Auto,
            templates,
            class,
            halo: OnceLock::new(),
        }
    }

    /// Builds an engine for a **single-shard worker**: only `shard`'s
    /// support template is materialised, every other shard gets an empty
    /// placeholder.  The full-graph sampler and the O(|E|) scatter-class
    /// table are still built — they are what keeps the replayed stream
    /// identical across workers — but the per-shard CSR memory is O(shard),
    /// which is the point of running one process per shard.
    ///
    /// The returned engine supports only [`Self::make_shard_scratch`] /
    /// [`Self::sample_shard_world`] **for `shard`**; asking it for any other
    /// shard's scratch (or for the all-shard `WorldSource` view) touches a
    /// placeholder template and yields empty worlds.
    ///
    /// # Panics
    /// Panics if the partition does not match `g` or `shard` is out of
    /// range.
    pub fn for_shard(g: &'g UncertainGraph, partition: &'g GraphPartition, shard: usize) -> Self {
        assert!(
            shard < partition.num_shards(),
            "shard {shard} out of range for a {}-shard partition",
            partition.num_shards()
        );
        assert!(
            partition.matches(g),
            "partition was built for a {}-vertex/{}-edge graph, got {}/{}",
            partition.num_vertices(),
            partition.num_edges(),
            g.num_vertices(),
            g.num_edges()
        );
        let mut class = vec![EdgeClass::cut(0); g.num_edges()];
        for (s, sh) in partition.shards().iter().enumerate() {
            for (local, &global) in sh.edges().iter().enumerate() {
                class[global] = EdgeClass::local(s as u32, local as u32);
            }
        }
        for (c, cut) in partition.cut_edges().iter().enumerate() {
            class[cut.edge] = EdgeClass::cut(c as u32);
        }
        let empty = UncertainGraph::from_edges(0, std::iter::empty::<(usize, usize, f64)>())
            .expect("the empty graph is valid");
        let templates = (0..partition.num_shards())
            .map(|s| {
                if s == shard {
                    WorldTemplate::new(partition.shard(s).graph())
                } else {
                    WorldTemplate::new(&empty)
                }
            })
            .collect();
        ShardedWorldEngine {
            graph: g,
            partition,
            sampler: SkipSampler::new(g),
            method: SampleMethod::Auto,
            templates,
            class,
            halo: OnceLock::new(),
        }
    }

    /// Overrides the sampling method (applies to the full-graph stream, as
    /// in the monolithic engine).
    pub fn with_method(mut self, method: SampleMethod) -> Self {
        self.method = method;
        self
    }

    /// The parent graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.graph
    }

    /// The partition this engine scatters into.
    pub fn partition(&self) -> &'g GraphPartition {
        self.partition
    }

    /// The ghost-halo replication plan for this partition, built on first
    /// use and shared thereafter (see [`crate::halo`]).
    pub fn halo_plan(&self) -> &HaloPlan {
        self.halo
            .get_or_init(|| HaloPlan::new(self.graph, self.partition))
    }

    /// The method the engine will actually use: [`SampleMethod::Auto`]
    /// resolves through the **same** shared rule as the monolithic engine
    /// (`SampleMethod::resolve` over the whole-graph sampler), so both
    /// engines always pick the same sampling path for the same graph.
    pub fn effective_method(&self) -> SampleMethod {
        self.method.resolve(&self.sampler)
    }

    /// Draws the full-graph edge outcomes of one world — the same RNG
    /// consumption and present set as `WorldEngine::sample_world` at equal
    /// seeds and method.
    fn sample_present<R: Rng + ?Sized>(&self, rng: &mut R, present: &mut Vec<u32>) {
        match self.effective_method() {
            SampleMethod::PerEdge => {
                WorldSampler::new().sample_present_into(self.graph, rng, present);
            }
            SampleMethod::Skip => {
                self.sampler.sample_present_into(rng, present);
            }
            SampleMethod::Auto => unreachable!("effective_method always resolves Auto"),
        }
    }

    /// A trivial (1-shard) partition scatters every edge to shard 0 with
    /// `local id == global id`, so the scatter pass can be skipped
    /// entirely: samples land straight in the shard's present list.
    fn is_trivial(&self) -> bool {
        self.partition.num_shards() == 1
    }

    /// Creates a pre-sized scratch for the single-shard consumption mode.
    pub fn make_shard_scratch(&self, shard: usize) -> ShardScratch {
        let template = &self.templates[shard];
        // O(1) incidence test for the scatter pass: is this cut edge
        // incident to the owned shard?
        let cut_incident = self
            .partition
            .cut_edges()
            .iter()
            .map(|cut| cut.shard_u == shard || cut.shard_v == shard)
            .collect();
        ShardScratch {
            shard,
            all_present: Vec::with_capacity(self.graph.num_edges()),
            present: Vec::with_capacity(template.num_edges()),
            endpoints: Vec::with_capacity(template.num_edges()),
            world: DeterministicGraph::with_capacity_for(template),
            present_cuts: Vec::with_capacity(self.partition.cut_edges().len()),
            cut_incident,
        }
    }

    /// Samples one world but materialises **only** `scratch.shard`'s part of
    /// it: the shard's CSR world plus the present cut edges incident to the
    /// shard ([`ShardScratch::present_cuts`]).  The RNG consumption is
    /// identical to [`WorldSource::sample_world`] — a worker owning one
    /// shard replays the same stream as everyone else.  Allocation-free in
    /// steady state.
    pub fn sample_shard_world<'s, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &'s mut ShardScratch,
    ) -> &'s DeterministicGraph {
        if self.is_trivial() {
            // No foreign edges, no cuts: sample straight into the present
            // list (local ids equal global ids on a 1-shard partition).
            self.sample_present(rng, &mut scratch.present);
            scratch.present_cuts.clear();
        } else {
            let shard = scratch.shard as u32;
            self.sample_present(rng, &mut scratch.all_present);
            scratch.present.clear();
            scratch.present_cuts.clear();
            for &e in &scratch.all_present {
                let class = self.class[e as usize];
                let owner = class.shard();
                if owner == shard {
                    scratch.present.push(class.index());
                } else if owner == CUT_SHARD && scratch.cut_incident[class.index() as usize] {
                    scratch.present_cuts.push(class.index());
                }
            }
        }
        let template = &self.templates[scratch.shard];
        scratch.endpoints.clear();
        scratch.endpoints.extend(
            scratch
                .present
                .iter()
                .map(|&e| template.endpoints(e as usize)),
        );
        scratch
            .world
            .materialize_from_endpoints(template.num_vertices(), &scratch.endpoints);
        &scratch.world
    }

    /// Advances the shared world stream by one world without materialising
    /// anything.  Consumes the RNG exactly like [`Self::sample_shard_world`]
    /// (one presence pass over the edge stream), so a worker that joins at
    /// world `w` can replay worlds `0..w` cheaply and stay in lockstep with
    /// the rest of the fleet.  The scratch's materialised world becomes
    /// stale; call [`Self::sample_shard_world`] before reading it again.
    pub fn advance_shard_world<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut ShardScratch) {
        if self.is_trivial() {
            self.sample_present(rng, &mut scratch.present);
        } else {
            self.sample_present(rng, &mut scratch.all_present);
        }
    }

    /// The **global** edge ids present in the whole current world, regardless
    /// of partition arity.  On a non-trivial partition this is the scratch's
    /// [`ShardScratch::all_present`] list; on a trivial (1-shard) partition
    /// the scatter pass is skipped and samples land straight in the local
    /// present list, whose local ids equal global ids — so both arms return
    /// the same ascending global stream the monolithic engine would sample.
    pub fn world_edges<'s>(&self, scratch: &'s ShardScratch) -> &'s [u32] {
        if self.is_trivial() {
            &scratch.present
        } else {
            &scratch.all_present
        }
    }

    /// Fills the all-shard scratch for the current world.
    fn fill_world<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut ShardedScratch) {
        let ShardedScratch {
            all_present,
            shards,
            present_cuts,
            cut_degree,
            cut_present,
        } = scratch;
        if self.is_trivial() {
            self.sample_present(rng, &mut shards[0].present);
        } else {
            // Undo the previous world's boundary stamps (O(previous cuts)).
            for &c in present_cuts.iter() {
                let cut = self.partition.cut_edge(c as usize);
                cut_degree[cut.u] = 0;
                cut_degree[cut.v] = 0;
                cut_present[c as usize] = false;
            }
            present_cuts.clear();
            for shard in shards.iter_mut() {
                shard.present.clear();
            }
            self.sample_present(rng, all_present);
            for &e in all_present.iter() {
                let class = self.class[e as usize];
                let owner = class.shard();
                if owner != CUT_SHARD {
                    shards[owner as usize].present.push(class.index());
                } else {
                    let cut = class.index();
                    let record = self.partition.cut_edge(cut as usize);
                    cut_degree[record.u] += 1;
                    cut_degree[record.v] += 1;
                    cut_present[cut as usize] = true;
                    present_cuts.push(cut);
                }
            }
        }
        for (template, shard) in self.templates.iter().zip(shards.iter_mut()) {
            shard.endpoints.clear();
            shard.endpoints.extend(
                shard
                    .present
                    .iter()
                    .map(|&e| template.endpoints(e as usize)),
            );
            shard
                .world
                .materialize_from_endpoints(template.num_vertices(), &shard.endpoints);
        }
    }
}

impl<'g> WorldSource for ShardedWorldEngine<'g> {
    type Scratch = ShardedScratch;

    fn make_scratch(&self) -> ShardedScratch {
        ShardedScratch {
            all_present: Vec::with_capacity(self.graph.num_edges()),
            shards: self
                .templates
                .iter()
                .map(|template| ShardWorldScratch {
                    present: Vec::with_capacity(template.num_edges()),
                    endpoints: Vec::with_capacity(template.num_edges()),
                    world: DeterministicGraph::with_capacity_for(template),
                })
                .collect(),
            present_cuts: Vec::with_capacity(self.partition.cut_edges().len()),
            cut_degree: vec![0; self.graph.num_vertices()],
            cut_present: vec![false; self.partition.cut_edges().len()],
        }
    }

    fn produces_sharded_views(&self) -> bool {
        true
    }

    fn num_shards(&self) -> usize {
        self.partition.num_shards()
    }

    fn advance_world<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut ShardedScratch) {
        // Same RNG consumption as a full sample; the scatter and
        // materialisation are skipped, and the boundary stamps are left
        // stale (the next `sample_world` resets them from `present_cuts`,
        // which this does not touch).
        self.sample_present(rng, &mut scratch.all_present);
    }

    fn sample_world<'s, R: Rng + ?Sized>(
        &'s self,
        rng: &mut R,
        scratch: &'s mut ShardedScratch,
    ) -> WorldView<'s> {
        self.fill_world(rng, scratch);
        WorldView::Sharded(ShardedWorld {
            engine: self,
            scratch,
        })
    }
}

/// Per-shard world buffers of a [`ShardedScratch`].
#[derive(Debug, Clone)]
struct ShardWorldScratch {
    /// Present shard-local edge ids of the current world.
    present: Vec<u32>,
    /// Resolved local endpoints (materialisation staging).
    endpoints: Vec<(u32, u32)>,
    /// The materialised shard world (buffers recycled between worlds).
    world: DeterministicGraph,
}

/// All-shard per-thread scratch: every shard's world buffers plus the
/// boundary state of the current world.  Create with
/// [`WorldSource::make_scratch`].
#[derive(Debug, Clone)]
pub struct ShardedScratch {
    /// Present global edge ids (the replayed full-graph outcome).
    all_present: Vec<u32>,
    shards: Vec<ShardWorldScratch>,
    /// Present cut edges (indices into the partition's cut list).
    present_cuts: Vec<u32>,
    /// Per global vertex: number of present cut edges incident to it in the
    /// current world (reset incrementally between worlds).
    cut_degree: Vec<u32>,
    /// Per cut edge: present in the current world?  (Reset incrementally.)
    cut_present: Vec<bool>,
}

/// Single-shard per-thread scratch for
/// [`ShardedWorldEngine::sample_shard_world`]: the owned shard's world
/// buffers, the replayed full-graph present list, and the present cut edges
/// incident to the shard.
#[derive(Debug, Clone)]
pub struct ShardScratch {
    shard: usize,
    all_present: Vec<u32>,
    present: Vec<u32>,
    endpoints: Vec<(u32, u32)>,
    world: DeterministicGraph,
    present_cuts: Vec<u32>,
    /// Per cut edge: incident to `shard`?  (Built once per scratch.)
    cut_incident: Vec<bool>,
}

impl ShardScratch {
    /// The shard this scratch materialises.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The most recently materialised shard world.
    pub fn world(&self) -> &DeterministicGraph {
        &self.world
    }

    /// Present shard-local edge ids of the most recent world.
    pub fn present_edges(&self) -> &[u32] {
        &self.present
    }

    /// Present cut edges incident to the shard (indices into the
    /// partition's cut list), in sampling order.
    pub fn present_cuts(&self) -> &[u32] {
        &self.present_cuts
    }

    /// Present **global** edge ids of the most recent world (the replayed
    /// full-graph outcome).  Empty on trivial (1-shard) partitions, which
    /// skip the scatter pass — see [`ShardedWorld::all_present`].
    pub fn all_present(&self) -> &[u32] {
        &self.all_present
    }
}

/// A borrowed view of one sampled world, decomposed by the partition: the
/// payload of [`WorldView::Sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedWorld<'a> {
    engine: &'a ShardedWorldEngine<'a>,
    scratch: &'a ShardedScratch,
}

impl<'a> ShardedWorld<'a> {
    /// The parent uncertain graph.
    pub fn graph(&self) -> &'a UncertainGraph {
        self.engine.graph
    }

    /// The partition the world is decomposed by.
    pub fn partition(&self) -> &'a GraphPartition {
        self.engine.partition
    }

    /// The engine's ghost-halo replication plan (built on first use).
    pub fn halo_plan(&self) -> &'a HaloPlan {
        self.engine.halo_plan()
    }

    /// Present **global** edge ids of this world — the replayed full-graph
    /// outcome the scatter pass decomposed.
    ///
    /// Only filled on multi-shard partitions: a trivial (1-shard) engine
    /// samples straight into shard 0's present list and leaves this empty,
    /// which is why halo consumers must short-circuit 1-shard views to the
    /// monolithic kernel over [`ShardedWorld::shard_world`]`(0)`.
    pub fn all_present(&self) -> &'a [u32] {
        &self.scratch.all_present
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.engine.partition.num_shards()
    }

    /// Number of vertices of the parent graph.
    pub fn num_vertices(&self) -> usize {
        self.engine.partition.num_vertices()
    }

    /// The materialised world of one shard (shard-local vertex ids).
    pub fn shard_world(&self, shard: usize) -> &'a DeterministicGraph {
        &self.scratch.shards[shard].world
    }

    /// Present shard-local edge ids of one shard.
    pub fn shard_present(&self, shard: usize) -> &'a [u32] {
        &self.scratch.shards[shard].present
    }

    /// Present cut edges (indices into
    /// [`GraphPartition::cut_edges`]), in sampling order.
    pub fn present_cuts(&self) -> &'a [u32] {
        &self.scratch.present_cuts
    }

    /// Whether cut edge `cut` is present in this world (O(1)).
    #[inline]
    pub fn cut_is_present(&self, cut: usize) -> bool {
        self.scratch.cut_present[cut]
    }

    /// Number of present cut edges incident to global vertex `v` — the
    /// boundary part of `v`'s degree in this world (its full degree is the
    /// shard-local degree plus this).
    #[inline]
    pub fn cut_degree(&self, v: VertexId) -> usize {
        self.scratch.cut_degree[v] as usize
    }
}

/// The global connected-component structure of a sharded world: per-shard
/// component labels glued together with a disjoint-set union across the
/// present cut edges.  This is the exact cut correction for component
/// counting — component counts, sizes and pair connectivity all match the
/// monolithic labelling bit for bit.
#[derive(Debug)]
pub struct ShardedComponents {
    /// Per-shard local component labels.
    labels: Vec<Vec<usize>>,
    /// `offsets[s]` = first global component id of shard `s`.
    offsets: Vec<usize>,
    /// DSU over the `offsets[k]` local components, unioned across present
    /// cut edges.
    dsu: UnionFind,
}

impl ShardedComponents {
    /// Labels every shard's world and unions across the present cut edges.
    pub fn compute(world: &ShardedWorld<'_>) -> Self {
        let k = world.num_shards();
        let mut labels = Vec::with_capacity(k);
        let mut offsets = vec![0usize; k + 1];
        for s in 0..k {
            let (shard_labels, count) = connected_components(world.shard_world(s));
            offsets[s + 1] = offsets[s] + count;
            labels.push(shard_labels);
        }
        let mut dsu = UnionFind::new(offsets[k]);
        let partition = world.partition();
        for &c in world.present_cuts() {
            let cut = partition.cut_edge(c as usize);
            let a = offsets[cut.shard_u] + labels[cut.shard_u][cut.local_u];
            let b = offsets[cut.shard_v] + labels[cut.shard_v][cut.local_v];
            dsu.union(a, b);
        }
        ShardedComponents {
            labels,
            offsets,
            dsu,
        }
    }

    /// Number of global connected components (isolated vertices included).
    pub fn num_components(&self) -> usize {
        self.dsu.num_sets()
    }

    /// Canonical global component id of global vertex `v`.
    pub fn component(&mut self, partition: &GraphPartition, v: VertexId) -> usize {
        let (s, local) = partition.locate(v);
        self.dsu.find(self.offsets[s] + self.labels[s][local])
    }

    /// Whether two global vertices lie in the same global component.
    pub fn connected(&mut self, partition: &GraphPartition, u: VertexId, v: VertexId) -> bool {
        self.component(partition, u) == self.component(partition, v)
    }

    /// Size of the largest global component (0 for an empty vertex set).
    pub fn largest_component(&mut self) -> usize {
        let ShardedComponents {
            labels,
            offsets,
            dsu,
        } = self;
        let mut sizes = vec![0usize; offsets[labels.len()]];
        for (s, shard_labels) in labels.iter().enumerate() {
            for &label in shard_labels {
                sizes[dsu.find(offsets[s] + label)] += 1;
            }
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

/// BFS hop distances from `source` over a sharded world: traverses the
/// shard-local CSRs and hops across **present** cut edges (ghost-vertex
/// traversal).  Produces exactly the distances of a monolithic BFS on the
/// same world; unreachable vertices get `u32::MAX`.
///
/// `dist` and `queue` are caller-owned scratch (resized to the global vertex
/// count; no allocation once warm).
pub fn sharded_bfs_distances(
    world: &ShardedWorld<'_>,
    source: VertexId,
    dist: &mut Vec<u32>,
    queue: &mut Vec<u32>,
) {
    let partition = world.partition();
    let n = partition.num_vertices();
    dist.clear();
    dist.resize(n, u32::MAX);
    queue.clear();
    dist[source] = 0;
    queue.push(source as u32);
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head] as usize;
        head += 1;
        let next = dist[v] + 1;
        let (s, local) = partition.locate(v);
        let shard = partition.shard(s);
        for local_neighbor in world.shard_world(s).neighbors(local) {
            let neighbor = shard.global_vertex(local_neighbor);
            if dist[neighbor] == u32::MAX {
                dist[neighbor] = next;
                queue.push(neighbor as u32);
            }
        }
        for &c in partition.incident_cuts(v) {
            if world.cut_is_present(c as usize) {
                let cut = partition.cut_edge(c as usize);
                let neighbor = if cut.u == v { cut.v } else { cut.u };
                if dist[neighbor] == u32::MAX {
                    dist[neighbor] = next;
                    queue.push(neighbor as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorldEngine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> UncertainGraph {
        // Two dense clusters joined by two bridges, plus a pendant.
        UncertainGraph::from_edges(
            9,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (0, 2, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
                (3, 5, 0.4),
                (2, 3, 0.3),
                (0, 5, 0.2),
                (6, 7, 0.55),
                (5, 6, 0.35),
            ],
        )
        .unwrap()
    }

    fn monolithic_present(
        g: &UncertainGraph,
        method: SampleMethod,
        seed: u64,
        worlds: usize,
    ) -> Vec<Vec<u32>> {
        let engine = WorldEngine::new(g).with_method(method);
        let mut scratch = engine.make_scratch();
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..worlds)
            .map(|_| {
                engine.sample_world(&mut rng, &mut scratch);
                scratch.present_edges().to_vec()
            })
            .collect()
    }

    #[test]
    fn sharded_worlds_replay_the_monolithic_edge_stream() {
        let g = toy();
        for method in [SampleMethod::Skip, SampleMethod::PerEdge] {
            for shards in [1usize, 2, 3] {
                let partition = GraphPartition::contiguous(&g, shards).unwrap();
                let engine = ShardedWorldEngine::new(&g, &partition).with_method(method);
                let mut scratch = WorldSource::make_scratch(&engine);
                let mut rng = SmallRng::seed_from_u64(41);
                let reference = monolithic_present(&g, method, 41, 120);
                for expected in &reference {
                    let view = match engine.sample_world(&mut rng, &mut scratch) {
                        WorldView::Sharded(view) => view,
                        _ => unreachable!(),
                    };
                    // Reassemble the global present set from the scatter.
                    let mut got: Vec<u32> = Vec::new();
                    for s in 0..view.num_shards() {
                        let shard = view.partition().shard(s);
                        got.extend(
                            view.shard_present(s)
                                .iter()
                                .map(|&e| shard.global_edge(e as usize) as u32),
                        );
                    }
                    got.extend(
                        view.present_cuts()
                            .iter()
                            .map(|&c| view.partition().cut_edge(c as usize).edge as u32),
                    );
                    got.sort_unstable();
                    let mut want = expected.clone();
                    want.sort_unstable();
                    assert_eq!(got, want, "{method:?} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn advance_world_consumes_the_rng_exactly_like_sample_world() {
        let g = toy();
        let partition = GraphPartition::contiguous(&g, 3).unwrap();
        for method in [SampleMethod::Skip, SampleMethod::PerEdge] {
            let engine = ShardedWorldEngine::new(&g, &partition).with_method(method);
            let mut sampled = WorldSource::make_scratch(&engine);
            let mut advanced = WorldSource::make_scratch(&engine);
            let mut rng_sample = SmallRng::seed_from_u64(17);
            let mut rng_advance = SmallRng::seed_from_u64(17);
            for _ in 0..100 {
                engine.sample_world(&mut rng_sample, &mut sampled);
                engine.advance_world(&mut rng_advance, &mut advanced);
            }
            assert_eq!(
                rng_sample.gen::<u64>(),
                rng_advance.gen::<u64>(),
                "{method:?}"
            );
        }
    }

    #[test]
    fn shard_world_advance_and_world_edges_replay_the_monolithic_stream() {
        let g = toy();
        for method in [SampleMethod::Skip, SampleMethod::PerEdge] {
            let reference = monolithic_present(&g, method, 23, 60);
            for shards in [1usize, 2, 3] {
                let partition = GraphPartition::contiguous(&g, shards).unwrap();
                let engine = ShardedWorldEngine::for_shard(&g, &partition, 0).with_method(method);
                let mut sampled = engine.make_shard_scratch(0);
                let mut advanced = engine.make_shard_scratch(0);
                let mut rng_sample = SmallRng::seed_from_u64(23);
                let mut rng_advance = SmallRng::seed_from_u64(23);
                for expected in &reference {
                    engine.sample_shard_world(&mut rng_sample, &mut sampled);
                    engine.advance_shard_world(&mut rng_advance, &mut advanced);
                    assert_eq!(
                        engine.world_edges(&sampled),
                        expected.as_slice(),
                        "{method:?} shards={shards}"
                    );
                }
                // Advancing consumed the RNG exactly like sampling did.
                assert_eq!(
                    rng_sample.gen::<u64>(),
                    rng_advance.gen::<u64>(),
                    "{method:?} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn cut_degree_and_presence_match_the_boundary_pass() {
        let g = toy();
        let partition = GraphPartition::contiguous(&g, 2).unwrap();
        let engine = ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::Skip);
        let mut scratch = WorldSource::make_scratch(&engine);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let view = match engine.sample_world(&mut rng, &mut scratch) {
                WorldView::Sharded(view) => view,
                _ => unreachable!(),
            };
            let mut expected_degree = vec![0usize; g.num_vertices()];
            for (c, cut) in partition.cut_edges().iter().enumerate() {
                let present = view.present_cuts().contains(&(c as u32));
                assert_eq!(view.cut_is_present(c), present);
                if present {
                    expected_degree[cut.u] += 1;
                    expected_degree[cut.v] += 1;
                }
            }
            for (v, &expected) in expected_degree.iter().enumerate() {
                assert_eq!(view.cut_degree(v), expected);
            }
        }
    }

    #[test]
    fn sharded_components_match_the_monolithic_labelling() {
        let g = toy();
        let labels = [0usize, 0, 0, 1, 1, 1, 2, 2, 2];
        let partition = GraphPartition::from_labels(&g, &labels, 3).unwrap();
        let sharded = ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::PerEdge);
        let monolithic = WorldEngine::new(&g).with_method(SampleMethod::PerEdge);
        let mut sharded_scratch = WorldSource::make_scratch(&sharded);
        let mut mono_scratch = monolithic.make_scratch();
        let mut rng_s = SmallRng::seed_from_u64(23);
        let mut rng_m = SmallRng::seed_from_u64(23);
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        for _ in 0..150 {
            let world = monolithic.sample_world(&mut rng_m, &mut mono_scratch);
            let (mono_labels, mono_count) = connected_components(world);
            let mut mono_sizes = vec![0usize; mono_count];
            for &l in &mono_labels {
                mono_sizes[l] += 1;
            }
            let reference_distances = graph_algos::traversal::bfs_distances(world, 0);

            let view = match sharded.sample_world(&mut rng_s, &mut sharded_scratch) {
                WorldView::Sharded(view) => view,
                _ => unreachable!(),
            };
            let mut comps = ShardedComponents::compute(&view);
            assert_eq!(comps.num_components(), mono_count);
            assert_eq!(
                comps.largest_component(),
                mono_sizes.iter().copied().max().unwrap_or(0)
            );
            for u in 0..g.num_vertices() {
                for v in (u + 1)..g.num_vertices() {
                    assert_eq!(
                        comps.connected(&partition, u, v),
                        mono_labels[u] == mono_labels[v],
                        "pair ({u}, {v})"
                    );
                }
            }
            sharded_bfs_distances(&view, 0, &mut dist, &mut queue);
            for v in 0..g.num_vertices() {
                let expected = reference_distances[v];
                if expected == usize::MAX {
                    assert_eq!(dist[v], u32::MAX, "vertex {v}");
                } else {
                    assert_eq!(dist[v] as usize, expected, "vertex {v}");
                }
            }
        }
    }

    #[test]
    fn single_shard_mode_agrees_with_the_all_shard_view() {
        let g = toy();
        let partition = GraphPartition::contiguous(&g, 3).unwrap();
        let engine = ShardedWorldEngine::new(&g, &partition).with_method(SampleMethod::Skip);
        let mut full = WorldSource::make_scratch(&engine);
        let mut singles: Vec<ShardScratch> = (0..3).map(|s| engine.make_shard_scratch(s)).collect();
        let mut rng_full = SmallRng::seed_from_u64(77);
        let mut rngs: Vec<SmallRng> = (0..3).map(|_| SmallRng::seed_from_u64(77)).collect();
        for _ in 0..120 {
            let view = match engine.sample_world(&mut rng_full, &mut full) {
                WorldView::Sharded(view) => view,
                _ => unreachable!(),
            };
            for (s, (scratch, rng)) in singles.iter_mut().zip(rngs.iter_mut()).enumerate() {
                engine.sample_shard_world(rng, scratch);
                assert_eq!(scratch.present_edges(), view.shard_present(s), "shard {s}");
                // The single-shard boundary pass sees exactly the present
                // cuts incident to this shard.
                let expected: Vec<u32> = view
                    .present_cuts()
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let cut = partition.cut_edge(c as usize);
                        cut.shard_u == s || cut.shard_v == s
                    })
                    .collect();
                assert_eq!(scratch.present_cuts(), expected.as_slice(), "shard {s}");
                assert_eq!(
                    scratch.world().num_edges(),
                    view.shard_world(s).num_edges(),
                    "shard {s}"
                );
            }
        }
    }

    #[test]
    fn a_single_shard_worker_engine_matches_the_full_engine() {
        let g = toy();
        for method in [SampleMethod::Skip, SampleMethod::PerEdge] {
            let partition = GraphPartition::contiguous(&g, 3).unwrap();
            let full_engine = ShardedWorldEngine::new(&g, &partition).with_method(method);
            for s in 0..3 {
                let worker = ShardedWorldEngine::for_shard(&g, &partition, s).with_method(method);
                assert_eq!(worker.effective_method(), full_engine.effective_method());
                let mut full = full_engine.make_shard_scratch(s);
                let mut lean = worker.make_shard_scratch(s);
                let mut rng_a = SmallRng::seed_from_u64(1234);
                let mut rng_b = SmallRng::seed_from_u64(1234);
                for world in 0..60 {
                    full_engine.sample_shard_world(&mut rng_a, &mut full);
                    worker.sample_shard_world(&mut rng_b, &mut lean);
                    assert_eq!(
                        lean.present_edges(),
                        full.present_edges(),
                        "{method:?} shard {s} world {world}"
                    );
                    assert_eq!(
                        lean.present_cuts(),
                        full.present_cuts(),
                        "{method:?} shard {s} world {world}"
                    );
                    assert_eq!(lean.world().num_edges(), full.world().num_edges());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "partition was built")]
    fn mismatched_partition_panics() {
        let g = toy();
        let other = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let partition = GraphPartition::contiguous(&other, 2).unwrap();
        let _ = ShardedWorldEngine::new(&g, &partition);
    }
}
