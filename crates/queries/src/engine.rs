//! The reusable world-sampling engine: samples possible worlds and
//! materialises them as [`DeterministicGraph`]s with **zero heap
//! allocations per world** in steady state.
//!
//! The engine splits per-graph from per-world state:
//!
//! * [`WorldEngine`] — immutable, built once per graph: a
//!   [`SkipSampler`] (edges sorted by descending probability, geometric
//!   skips — `O(Σ pₑ)` expected draws per world) and a
//!   [`WorldTemplate`] (edge endpoint table + support CSR).  Shareable
//!   across threads.
//! * [`WorldScratch`] — mutable, one per thread: the present-edge buffer and
//!   a [`DeterministicGraph`] whose CSR buffers are recycled world after
//!   world.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use uncertain_graph::UncertainGraph;
//! use ugs_queries::engine::WorldEngine;
//!
//! let g = UncertainGraph::from_edges(3, [(0, 1, 0.9), (1, 2, 0.4)]).unwrap();
//! let engine = WorldEngine::new(&g);
//! let mut scratch = engine.make_scratch();
//! let mut rng = SmallRng::seed_from_u64(7);
//! for _ in 0..100 {
//!     let world = engine.sample_world(&mut rng, &mut scratch);
//!     assert!(world.num_edges() <= 2); // no allocation happened here
//! }
//! ```

use rand::Rng;
use uncertain_graph::{SkipSampler, UncertainGraph, WorldSampler};

use graph_algos::{DeterministicGraph, WorldTemplate};

/// How the engine draws the Bernoulli edge outcomes of a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleMethod {
    /// Pick automatically: skip-sampling when the mean edge probability is
    /// at most [`SampleMethod::AUTO_SKIP_THRESHOLD`] (the sparsified-graph
    /// regime the paper targets), per-edge otherwise.
    #[default]
    Auto,
    /// One Bernoulli draw per edge in edge-id order — consumes the RNG
    /// exactly like [`WorldSampler::sample`], so results are bit-identical
    /// to the pre-engine driver for the same seed.
    PerEdge,
    /// Geometric skip-sampling over the edges sorted by descending
    /// probability: `O(Σ pₑ)` expected draws per world.
    Skip,
}

impl SampleMethod {
    /// Mean edge probability at or below which [`SampleMethod::Auto`]
    /// selects skip-sampling.  Above it, a plain per-edge sweep is cheaper
    /// than paying a logarithm per (almost always present) edge.
    pub const AUTO_SKIP_THRESHOLD: f64 = 0.5;

    /// Resolves [`SampleMethod::Auto`] against a graph's [`SkipSampler`]
    /// (mean edge probability vs [`SampleMethod::AUTO_SKIP_THRESHOLD`]);
    /// concrete methods pass through.  **The single resolution rule** —
    /// shared by the monolithic and the sharded engine, which must agree
    /// bit-for-bit on the sampling path for the same graph and method.
    pub(crate) fn resolve(self, sampler: &SkipSampler) -> SampleMethod {
        match self {
            SampleMethod::Auto => {
                let m = sampler.num_edges();
                let mean = if m == 0 {
                    0.0
                } else {
                    sampler.expected_present() / m as f64
                };
                if mean <= SampleMethod::AUTO_SKIP_THRESHOLD {
                    SampleMethod::Skip
                } else {
                    SampleMethod::PerEdge
                }
            }
            other => other,
        }
    }
}

/// Per-thread scratch state: reused buffers for one world at a time.
///
/// Create with [`WorldEngine::make_scratch`]; every buffer is pre-sized for
/// the engine's graph so the sample–materialise cycle never allocates.
#[derive(Debug, Clone)]
pub struct WorldScratch {
    /// Present edge ids of the current world.
    present: Vec<u32>,
    /// Endpoints of the present edges (resolved once per world, so the
    /// materialisation passes scan sequentially instead of gathering from
    /// the edge table).
    endpoints: Vec<(u32, u32)>,
    /// The materialised world (buffers recycled between worlds).
    world: DeterministicGraph,
}

impl WorldScratch {
    /// Present edge ids of the most recently sampled world.
    pub fn present_edges(&self) -> &[u32] {
        &self.present
    }

    /// The most recently materialised world.
    pub fn world(&self) -> &DeterministicGraph {
        &self.world
    }
}

/// Immutable world-sampling engine for one uncertain graph.
///
/// Construction costs one `O(|E| log |E|)` sort (for the skip order) and one
/// `O(|V| + |E|)` pass (for the support template); afterwards
/// [`WorldEngine::sample_world`] runs in `O(|V| + Σ pₑ)` expected time per
/// world with zero heap allocations.
#[derive(Debug, Clone)]
pub struct WorldEngine<'g> {
    graph: &'g UncertainGraph,
    sampler: SkipSampler,
    template: WorldTemplate,
    method: SampleMethod,
}

impl<'g> WorldEngine<'g> {
    /// Builds the engine for `g` with [`SampleMethod::Auto`].
    pub fn new(g: &'g UncertainGraph) -> Self {
        WorldEngine {
            sampler: SkipSampler::new(g),
            template: WorldTemplate::new(g),
            method: SampleMethod::Auto,
            graph: g,
        }
    }

    /// Overrides the sampling method.
    pub fn with_method(mut self, method: SampleMethod) -> Self {
        self.method = method;
        self
    }

    /// The graph this engine samples from.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.graph
    }

    /// The support template shared by every materialised world.
    pub fn template(&self) -> &WorldTemplate {
        &self.template
    }

    /// The method the engine will actually use (resolves
    /// [`SampleMethod::Auto`] from the mean edge probability, in O(1)).
    pub fn effective_method(&self) -> SampleMethod {
        self.method.resolve(&self.sampler)
    }

    /// Creates a pre-sized per-thread scratch.
    pub fn make_scratch(&self) -> WorldScratch {
        WorldScratch {
            present: Vec::with_capacity(self.template.num_edges()),
            endpoints: Vec::with_capacity(self.template.num_edges()),
            world: DeterministicGraph::with_capacity_for(&self.template),
        }
    }

    /// Draws the edge outcomes of one world into `scratch.present` without
    /// materialising the CSR.
    fn sample_present<R: Rng + ?Sized>(&self, rng: &mut R, present: &mut Vec<u32>) {
        match self.effective_method() {
            SampleMethod::PerEdge => {
                WorldSampler::new().sample_present_into(self.graph, rng, present);
            }
            SampleMethod::Skip => {
                self.sampler.sample_present_into(rng, present);
            }
            SampleMethod::Auto => unreachable!("effective_method always resolves Auto"),
        }
    }

    /// Advances the RNG past one world without materialising it: draws
    /// exactly the same edge outcomes as [`WorldEngine::sample_world`]
    /// (consuming the RNG identically, so a subsequent `sample_world` sees
    /// the same stream it would have after a full sample) but skips both CSR
    /// materialisation passes.  Used by the batch driver to hand each
    /// parallel worker the same deterministic world sequence regardless of
    /// the thread count.  `scratch.world()` is left stale; only
    /// `scratch.present_edges()` reflects the advanced-past world.
    pub fn advance_world<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut WorldScratch) {
        self.sample_present(rng, &mut scratch.present);
    }

    /// Samples one world and materialises it into `scratch`, returning the
    /// materialised [`DeterministicGraph`].  Allocation-free in steady
    /// state.
    pub fn sample_world<'s, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &'s mut WorldScratch,
    ) -> &'s DeterministicGraph {
        self.sample_present(rng, &mut scratch.present);
        // Resolve endpoints once; the two materialisation passes then run
        // over this compact sequential buffer.
        scratch.endpoints.clear();
        scratch.endpoints.extend(
            scratch
                .present
                .iter()
                .map(|&e| self.template.endpoints(e as usize)),
        );
        scratch
            .world
            .materialize_from_endpoints(self.template.num_vertices(), &scratch.endpoints);
        &scratch.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_graph::PossibleWorld;

    fn toy(p: f64) -> UncertainGraph {
        UncertainGraph::from_edges(
            5,
            [
                (0, 1, p),
                (1, 2, p),
                (2, 3, p),
                (3, 4, p),
                (4, 0, p),
                (0, 2, p),
            ],
        )
        .unwrap()
    }

    #[test]
    fn auto_method_tracks_mean_probability() {
        let sparse = toy(0.2);
        let dense = toy(0.9);
        assert_eq!(
            WorldEngine::new(&sparse).effective_method(),
            SampleMethod::Skip
        );
        assert_eq!(
            WorldEngine::new(&dense).effective_method(),
            SampleMethod::PerEdge
        );
        let forced = WorldEngine::new(&dense).with_method(SampleMethod::Skip);
        assert_eq!(forced.effective_method(), SampleMethod::Skip);
    }

    #[test]
    fn per_edge_mode_reproduces_the_reference_sampler_exactly() {
        // Same seed ⇒ the engine's per-edge mode draws the exact same worlds
        // as the legacy `WorldSampler::sample` path, world after world.
        let g = toy(0.4);
        let engine = WorldEngine::new(&g).with_method(SampleMethod::PerEdge);
        let mut scratch = engine.make_scratch();
        let mut rng_engine = SmallRng::seed_from_u64(99);
        let mut rng_reference = SmallRng::seed_from_u64(99);
        let reference = WorldSampler::new();
        for _ in 0..500 {
            engine.sample_world(&mut rng_engine, &mut scratch);
            let world = reference.sample(&g, &mut rng_reference);
            let expected: Vec<u32> = world.present_edges().map(|e| e as u32).collect();
            assert_eq!(scratch.present_edges(), expected.as_slice());
        }
    }

    #[test]
    fn sampled_worlds_match_reference_materialisation() {
        // For every method, the materialised CSR must equal what the legacy
        // from_world path builds for the same edge set.
        let g = toy(0.35);
        for method in [SampleMethod::PerEdge, SampleMethod::Skip] {
            let engine = WorldEngine::new(&g).with_method(method);
            let mut scratch = engine.make_scratch();
            let mut rng = SmallRng::seed_from_u64(11);
            for _ in 0..200 {
                engine.sample_world(&mut rng, &mut scratch);
                let mut mask = vec![false; g.num_edges()];
                for &e in scratch.present_edges() {
                    mask[e as usize] = true;
                }
                let world = scratch.world();
                let reference = DeterministicGraph::from_world(&g, &PossibleWorld::new(mask));
                assert_eq!(world.num_vertices(), reference.num_vertices());
                assert_eq!(world.num_edges(), reference.num_edges());
                for u in 0..world.num_vertices() {
                    let mut got: Vec<usize> = world.neighbors(u).collect();
                    let mut want: Vec<usize> = reference.neighbors(u).collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want, "{method:?} vertex {u}");
                }
            }
        }
    }

    #[test]
    fn skip_sampling_matches_edge_frequencies() {
        let g =
            UncertainGraph::from_edges(4, [(0, 1, 0.05), (1, 2, 0.35), (2, 3, 0.85), (0, 3, 1.0)])
                .unwrap();
        let engine = WorldEngine::new(&g).with_method(SampleMethod::Skip);
        let mut scratch = engine.make_scratch();
        let mut rng = SmallRng::seed_from_u64(3);
        let worlds = 60_000;
        let mut hits = [0usize; 4];
        for _ in 0..worlds {
            engine.sample_world(&mut rng, &mut scratch);
            for &e in scratch.present_edges() {
                hits[e as usize] += 1;
            }
        }
        for (e, &expected) in [0.05, 0.35, 0.85, 1.0].iter().enumerate() {
            let freq = hits[e] as f64 / worlds as f64;
            assert!(
                (freq - expected).abs() < 0.01,
                "edge {e}: {freq} vs {expected}"
            );
        }
    }

    #[test]
    fn advance_world_consumes_the_rng_exactly_like_sample_world() {
        let g = toy(0.35);
        for method in [SampleMethod::PerEdge, SampleMethod::Skip] {
            let engine = WorldEngine::new(&g).with_method(method);
            let mut sampled = engine.make_scratch();
            let mut advanced = engine.make_scratch();
            let mut rng_sample = SmallRng::seed_from_u64(17);
            let mut rng_advance = SmallRng::seed_from_u64(17);
            for _ in 0..200 {
                engine.sample_world(&mut rng_sample, &mut sampled);
                engine.advance_world(&mut rng_advance, &mut advanced);
                assert_eq!(
                    sampled.present_edges(),
                    advanced.present_edges(),
                    "{method:?}"
                );
            }
            // Both RNGs must be in the same state afterwards.
            assert_eq!(
                rng_sample.gen::<u64>(),
                rng_advance.gen::<u64>(),
                "{method:?}"
            );
        }
    }

    #[test]
    fn scratch_buffers_do_not_grow_after_warmup() {
        let g = toy(0.5);
        let engine = WorldEngine::new(&g).with_method(SampleMethod::Skip);
        let mut scratch = engine.make_scratch();
        let mut rng = SmallRng::seed_from_u64(5);
        engine.sample_world(&mut rng, &mut scratch);
        let present_cap = scratch.present.capacity();
        for _ in 0..1_000 {
            engine.sample_world(&mut rng, &mut scratch);
        }
        assert_eq!(scratch.present.capacity(), present_cap);
    }

    #[test]
    fn empty_graph_samples_empty_worlds() {
        let g = UncertainGraph::from_edges(3, []).unwrap();
        let engine = WorldEngine::new(&g);
        let mut scratch = engine.make_scratch();
        let mut rng = SmallRng::seed_from_u64(1);
        let world = engine.sample_world(&mut rng, &mut scratch);
        assert_eq!(world.num_edges(), 0);
        assert_eq!(world.num_vertices(), 3);
        assert_eq!(world.degree(2), 0);
    }
}
