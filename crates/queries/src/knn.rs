//! k-nearest-neighbour queries in uncertain graphs.
//!
//! The paper's `SP` workload is based on Potamias et al.'s work on k-NN in
//! uncertain graphs (its reference \[32\]): for a query vertex, return the `k`
//! vertices with the smallest *expected* shortest-path distance (conditioned
//! on connectivity), or — in the "majority-distance" variant — with the
//! highest probability of being within a given number of hops.  Both
//! variants are implemented here on top of the shared Monte-Carlo driver, so
//! the sparsified graphs produced by `ugs-core` can serve k-NN workloads
//! directly.

//! The query is a [`crate::batch::WorldObserver`] ([`KnnObserver`]) so it
//! can share sampled worlds with other queries in a [`QueryBatch`];
//! [`k_nearest_neighbors`] is the single-observer wrapper keeping the
//! original signature (bit-identical sequentially, one caller-RNG draw).

use rand::Rng;
use uncertain_graph::UncertainGraph;

use crate::batch::{QueryBatch, WorldObserver};
use crate::engine::WorldScratch;
use crate::mc::MonteCarlo;
use crate::sharded::{sharded_bfs_distances, ShardedWorld};
use crate::source::ShardSupport;
use graph_algos::traversal::bfs_distances;

/// One k-NN result entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The neighbour vertex.
    pub vertex: usize,
    /// Expected hop distance over the worlds in which the vertex is
    /// reachable from the query vertex.
    pub expected_distance: f64,
    /// Fraction of worlds in which the vertex is reachable.
    pub reachability: f64,
}

/// Observer accumulating reachability and hop distances from a fixed source
/// vertex; finalises to the `k` nearest neighbours.
///
/// Sharded sources are supported through the halo-hopping BFS
/// ([`sharded_bfs_distances`]): hop counts are integers, so the per-world
/// observation is exactly the monolithic one.
#[derive(Debug, Clone)]
pub struct KnnObserver {
    n: usize,
    source: usize,
    k: usize,
    /// Layout: [0, n) = Σ distance when reachable, [n, 2n) = # reachable.
    totals: Vec<f64>,
    /// BFS scratch for sharded views (lazily sized; not part of the
    /// accumulated state).
    shard_dist: Vec<u32>,
    shard_queue: Vec<u32>,
}

impl KnnObserver {
    /// An observer for the `k` nearest neighbours of `source` in `g`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a vertex of `g`.
    pub fn new(g: &UncertainGraph, source: usize, k: usize) -> Self {
        let n = g.num_vertices();
        assert!(source < n, "source vertex out of range");
        KnnObserver {
            n,
            source,
            k,
            totals: vec![0.0; 2 * n],
            shard_dist: Vec::new(),
            shard_queue: Vec::new(),
        }
    }

    /// The query source vertex.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Accumulates one world's hop distances (`u32::MAX` = unreachable) —
    /// the seam shared by the sharded path and the distributed coordinator.
    /// Bitwise the monolithic accumulation: hop counts are small integers,
    /// so the `u32 -> f64` cast matches the monolithic `usize -> f64` one.
    pub fn record_distances(&mut self, dist: &[u32]) {
        let (distance_acc, reach_acc) = self.totals.split_at_mut(self.n);
        for (v, &d) in dist.iter().enumerate() {
            if v != self.source && d != u32::MAX {
                distance_acc[v] += d as f64;
                reach_acc[v] += 1.0;
            }
        }
    }
}

impl WorldObserver for KnnObserver {
    type Output = Vec<Neighbor>;

    fn observe(&mut self, scratch: &WorldScratch) {
        let world = scratch.world();
        let dist = bfs_distances(world, self.source);
        let (distance_acc, reach_acc) = self.totals.split_at_mut(self.n);
        for (v, &d) in dist.iter().enumerate() {
            if v != self.source && d != usize::MAX {
                distance_acc[v] += d as f64;
                reach_acc[v] += 1.0;
            }
        }
    }

    fn shard_support(&self) -> ShardSupport {
        ShardSupport::Halo
    }

    fn observe_sharded(&mut self, world: &ShardedWorld<'_>) {
        let KnnObserver {
            source,
            shard_dist,
            shard_queue,
            ..
        } = self;
        sharded_bfs_distances(world, *source, shard_dist, shard_queue);
        let dist = std::mem::take(&mut self.shard_dist);
        self.record_distances(&dist);
        self.shard_dist = dist;
    }

    fn merge(&mut self, other: Self) {
        for (t, o) in self.totals.iter_mut().zip(other.totals) {
            *t += o;
        }
    }

    fn finalize(self, num_worlds: usize) -> Vec<Neighbor> {
        if self.k == 0 || num_worlds == 0 {
            return Vec::new();
        }
        let n = self.n;
        let mut neighbors: Vec<Neighbor> = (0..n)
            .filter(|&v| v != self.source && self.totals[n + v] > 0.0)
            .map(|v| Neighbor {
                vertex: v,
                expected_distance: self.totals[v] / self.totals[n + v],
                reachability: self.totals[n + v] / num_worlds as f64,
            })
            .collect();
        neighbors.sort_by(|a, b| {
            a.expected_distance
                .partial_cmp(&b.expected_distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.reachability
                        .partial_cmp(&a.reachability)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.vertex.cmp(&b.vertex))
        });
        neighbors.truncate(self.k);
        neighbors
    }
}

/// Monte-Carlo k-nearest-neighbour query: the `k` vertices with the smallest
/// expected hop distance from `source`, breaking ties by higher
/// reachability.  Vertices never reached within the sampled worlds are
/// excluded; fewer than `k` entries may therefore be returned on sparse or
/// unreliable graphs.
pub fn k_nearest_neighbors<R: Rng + ?Sized>(
    g: &UncertainGraph,
    source: usize,
    k: usize,
    mc: &MonteCarlo,
    rng: &mut R,
) -> Vec<Neighbor> {
    let n = g.num_vertices();
    assert!(source < n, "source vertex out of range");
    if k == 0 || mc.num_worlds == 0 {
        return Vec::new();
    }
    let mut batch = QueryBatch::new(g, mc);
    let handle = batch.register(KnnObserver::new(g, source, k));
    batch.run(rng).take(handle)
}

/// The fraction of the top-`k` sets that two k-NN answers share — used to
/// compare k-NN answers on an original and a sparsified graph.
pub fn knn_overlap(a: &[Neighbor], b: &[Neighbor]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let set_a: std::collections::HashSet<usize> = a.iter().map(|n| n.vertex).collect();
    let common = b.iter().filter(|n| set_a.contains(&n.vertex)).count();
    common as f64 / a.len().max(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn path_graph() -> UncertainGraph {
        UncertainGraph::from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).unwrap()
    }

    #[test]
    fn deterministic_path_ranks_by_hop_distance() {
        let g = path_graph();
        let mc = MonteCarlo::worlds(20);
        let mut rng = SmallRng::seed_from_u64(1);
        let knn = k_nearest_neighbors(&g, 0, 3, &mc, &mut rng);
        assert_eq!(knn.len(), 3);
        assert_eq!(knn[0].vertex, 1);
        assert_eq!(knn[1].vertex, 2);
        assert_eq!(knn[2].vertex, 3);
        assert_eq!(knn[0].expected_distance, 1.0);
        assert_eq!(knn[2].expected_distance, 3.0);
        assert!(knn.iter().all(|n| n.reachability == 1.0));
    }

    #[test]
    fn unreliable_far_vertices_are_excluded_or_ranked_lower() {
        // Vertex 2 is close but unreliable; vertex 3 unreachable entirely.
        let g = UncertainGraph::from_edges(4, [(0, 1, 1.0), (0, 2, 0.05)]).unwrap();
        let mc = MonteCarlo::worlds(2_000);
        let mut rng = SmallRng::seed_from_u64(2);
        let knn = k_nearest_neighbors(&g, 0, 4, &mc, &mut rng);
        assert_eq!(knn[0].vertex, 1);
        assert!(
            knn.iter().all(|n| n.vertex != 3),
            "unreachable vertex must not appear"
        );
        let v2 = knn
            .iter()
            .find(|n| n.vertex == 2)
            .expect("vertex 2 occasionally reachable");
        assert!((v2.reachability - 0.05).abs() < 0.02);
    }

    #[test]
    fn ties_break_by_reachability_then_id() {
        // Both 1 and 2 are at distance 1, but the edge to 2 is less likely.
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.9), (0, 2, 0.3)]).unwrap();
        let mc = MonteCarlo::worlds(4_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let knn = k_nearest_neighbors(&g, 0, 2, &mc, &mut rng);
        assert_eq!(knn[0].vertex, 1);
        assert_eq!(knn[1].vertex, 2);
    }

    #[test]
    fn overlap_measures_agreement() {
        let a = vec![
            Neighbor {
                vertex: 1,
                expected_distance: 1.0,
                reachability: 1.0,
            },
            Neighbor {
                vertex: 2,
                expected_distance: 2.0,
                reachability: 1.0,
            },
        ];
        let b = vec![
            Neighbor {
                vertex: 2,
                expected_distance: 1.5,
                reachability: 0.9,
            },
            Neighbor {
                vertex: 3,
                expected_distance: 2.5,
                reachability: 0.8,
            },
        ];
        assert!((knn_overlap(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(knn_overlap(&a, &a), 1.0);
        assert_eq!(knn_overlap(&a, &[]), 0.0);
    }

    #[test]
    fn zero_k_or_zero_worlds_return_empty() {
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(k_nearest_neighbors(&g, 0, 0, &MonteCarlo::worlds(10), &mut rng).is_empty());
        assert!(k_nearest_neighbors(&g, 0, 3, &MonteCarlo::worlds(0), &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "source vertex out of range")]
    fn out_of_range_source_panics() {
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(5);
        k_nearest_neighbors(&g, 99, 2, &MonteCarlo::worlds(5), &mut rng);
    }
}
