//! Expected-cut-size discrepancy over sampled vertex sets
//! (Figures 4(a), 6(b,d), 7(b)).
//!
//! Enumerating every cut is intractable, so — exactly like the paper — the
//! metric samples random vertex sets `S` of various cardinalities and reports
//! the mean absolute error of `δA(S) = C_G(S) − C_G'(S)`, where the expected
//! cut size `C_G(S)` is the sum of the probabilities of the edges with
//! exactly one endpoint in `S`.

use rand::Rng;
use uncertain_graph::UncertainGraph;

/// Configuration of the random-cut sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutSamplingConfig {
    /// Total number of random vertex sets to sample.
    pub num_cuts: usize,
    /// Largest cardinality to sample (clamped to `|V| − 1`); cardinalities
    /// are drawn uniformly from `1..=max_cardinality`.
    pub max_cardinality: usize,
}

impl Default for CutSamplingConfig {
    fn default() -> Self {
        CutSamplingConfig {
            num_cuts: 1000,
            max_cardinality: usize::MAX,
        }
    }
}

/// Expected size of the cut induced by the vertex set `members` in `g`.
pub fn expected_cut_size(g: &UncertainGraph, in_set: &[bool]) -> f64 {
    g.edges()
        .filter(|e| in_set[e.u] != in_set[e.v])
        .map(|e| e.p)
        .sum()
}

/// Mean absolute error of the cut discrepancy over `config.num_cuts` randomly
/// sampled vertex sets.  Both graphs must share a vertex set.
pub fn cut_discrepancy_mae<R: Rng + ?Sized>(
    original: &UncertainGraph,
    sparsified: &UncertainGraph,
    config: &CutSamplingConfig,
    rng: &mut R,
) -> f64 {
    assert_eq!(
        original.num_vertices(),
        sparsified.num_vertices(),
        "graphs must share a vertex set"
    );
    let n = original.num_vertices();
    if n < 2 || config.num_cuts == 0 {
        return 0.0;
    }
    let max_k = config.max_cardinality.min(n - 1).max(1);
    let mut in_set = vec![false; n];
    let mut members: Vec<usize> = Vec::new();
    let mut total = 0.0;
    for _ in 0..config.num_cuts {
        // Draw a random cardinality, then a random subset of that size via
        // partial Fisher–Yates over the vertex ids.
        let k = rng.gen_range(1..=max_k);
        members.clear();
        // Reservoir-free subset sampling: pick k distinct vertices.
        while members.len() < k {
            let v = rng.gen_range(0..n);
            if !in_set[v] {
                in_set[v] = true;
                members.push(v);
            }
        }
        let c0 = expected_cut_size(original, &in_set);
        let c1 = expected_cut_size(sparsified, &in_set);
        total += (c0 - c1).abs();
        for &v in &members {
            in_set[v] = false;
        }
    }
    total / config.num_cuts as f64
}

/// Exact mean absolute cut discrepancy over *all* non-empty subsets of
/// cardinality at most `max_cardinality`, weighting every cardinality
/// equally (mean over subsets within each cardinality, then mean over
/// cardinalities) — the same weighting the sampled metric and the paper use
/// ("1000 random k-cuts for each value of k").  Exponential — only for tests
/// and toy graphs.
pub fn exact_cut_discrepancy_mae(
    original: &UncertainGraph,
    sparsified: &UncertainGraph,
    max_cardinality: usize,
) -> f64 {
    assert_eq!(original.num_vertices(), sparsified.num_vertices());
    let n = original.num_vertices();
    assert!(
        n <= 20,
        "exact enumeration is exponential; use the sampled metric"
    );
    if n < 2 {
        return 0.0;
    }
    let max_k = max_cardinality.min(n - 1);
    let mut total_per_k = vec![0.0f64; max_k + 1];
    let mut count_per_k = vec![0usize; max_k + 1];
    let mut in_set = vec![false; n];
    for mask in 1u32..(1u32 << n) {
        let k = mask.count_ones() as usize;
        if k == 0 || k > max_k {
            continue;
        }
        for (v, flag) in in_set.iter_mut().enumerate() {
            *flag = (mask >> v) & 1 == 1;
        }
        let c0 = expected_cut_size(original, &in_set);
        let c1 = expected_cut_size(sparsified, &in_set);
        total_per_k[k] += (c0 - c1).abs();
        count_per_k[k] += 1;
    }
    let mut mean_of_means = 0.0;
    let mut cardinalities = 0usize;
    for k in 1..=max_k {
        if count_per_k[k] > 0 {
            mean_of_means += total_per_k[k] / count_per_k[k] as f64;
            cardinalities += 1;
        }
    }
    if cardinalities == 0 {
        0.0
    } else {
        mean_of_means / cardinalities as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn original() -> UncertainGraph {
        UncertainGraph::from_edges(
            5,
            [
                (0, 1, 0.4),
                (0, 2, 0.2),
                (0, 3, 0.2),
                (1, 3, 0.2),
                (2, 3, 0.1),
                (3, 4, 0.7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn expected_cut_size_sums_crossing_probabilities() {
        let g = original();
        let mut in_set = vec![false; 5];
        in_set[0] = true;
        // edges leaving {0}: (0,1), (0,2), (0,3)
        assert!((expected_cut_size(&g, &in_set) - 0.8).abs() < 1e-12);
        in_set[3] = true;
        // edges leaving {0,3}: (0,1), (0,2), (1,3), (2,3), (3,4)
        assert!((expected_cut_size(&g, &in_set) - (0.4 + 0.2 + 0.2 + 0.1 + 0.7)).abs() < 1e-12);
    }

    #[test]
    fn identical_graphs_have_zero_discrepancy() {
        let g = original();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            cut_discrepancy_mae(&g, &g, &CutSamplingConfig::default(), &mut rng),
            0.0
        );
        assert_eq!(exact_cut_discrepancy_mae(&g, &g, 5), 0.0);
    }

    #[test]
    fn sampled_metric_approximates_exact_metric() {
        let g = original();
        let s = g.subgraph_with_edges([0, 5]).unwrap();
        let exact = exact_cut_discrepancy_mae(&g, &s, 4);
        let mut rng = SmallRng::seed_from_u64(7);
        let sampled = cut_discrepancy_mae(
            &g,
            &s,
            &CutSamplingConfig {
                num_cuts: 60_000,
                max_cardinality: 4,
            },
            &mut rng,
        );
        assert!(
            (sampled - exact).abs() < 0.05 * exact.max(0.1),
            "sampled {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn cardinality_one_restriction_equals_degree_discrepancy() {
        let g = original();
        let s = g.subgraph_with_edges([1, 2, 3]).unwrap();
        let exact = exact_cut_discrepancy_mae(&g, &s, 1);
        // Exact over all singletons = mean over vertices of |δA(u)|.
        let d0 = g.expected_degrees();
        let d1 = s.expected_degrees();
        let manual: f64 = d0
            .iter()
            .zip(d1.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / d0.len() as f64;
        assert!((exact - manual).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let g = UncertainGraph::from_edges(1, []).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            cut_discrepancy_mae(&g, &g, &CutSamplingConfig::default(), &mut rng),
            0.0
        );
        let g2 = original();
        assert_eq!(
            cut_discrepancy_mae(
                &g2,
                &g2,
                &CutSamplingConfig {
                    num_cuts: 0,
                    max_cardinality: 3
                },
                &mut rng
            ),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "share a vertex set")]
    fn mismatched_graphs_panic() {
        let a = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let b = UncertainGraph::from_edges(4, [(0, 1, 0.5)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        cut_discrepancy_mae(&a, &b, &CutSamplingConfig::default(), &mut rng);
    }
}
