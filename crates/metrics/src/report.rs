//! Small containers the experiment binaries use to print paper-style tables
//! and figure series, and to persist results as JSON for `EXPERIMENTS.md`.

use minijson::{ObjBuilder, Value};

/// One point of a figure series: a method evaluated at an x-coordinate
/// (sparsification ratio, density, …).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Method name (`"GDB"`, `"EMD"`, `"NI"`, `"SS"`, …).
    pub method: String,
    /// X coordinate (e.g. `α` in percent, or graph density in percent).
    pub x: f64,
    /// Measured value (MAE, relative entropy, `D_em`, seconds, …).
    pub value: f64,
}

impl SeriesPoint {
    /// Creates a point.
    pub fn new(method: impl Into<String>, x: f64, value: f64) -> Self {
        SeriesPoint {
            method: method.into(),
            x,
            value,
        }
    }
}

/// A complete experiment result: an identifier (e.g. `"fig6a"`), a
/// description, axis labels and the measured series.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Identifier matching the paper (e.g. `"table2"`, `"fig10_pr_flickr"`).
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis / value label.
    pub y_label: String,
    /// All measured points.
    pub points: Vec<SeriesPoint>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExperimentReport {
            id: id.into(),
            description: description.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Adds a measurement.
    pub fn push(&mut self, method: impl Into<String>, x: f64, value: f64) {
        self.points.push(SeriesPoint::new(method, x, value));
    }

    /// Distinct method names in insertion order.
    pub fn methods(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.method) {
                seen.push(p.method.clone());
            }
        }
        seen
    }

    /// Distinct x values in ascending order.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self.points.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        xs
    }

    /// The value for `(method, x)`, if measured.
    pub fn value(&self, method: &str, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.method == method && (p.x - x).abs() < 1e-12)
            .map(|p| p.value)
    }

    /// Renders the report as a paper-style text table: one row per method,
    /// one column per x value.
    pub fn to_table(&self) -> TextTable {
        let xs = self.xs();
        let mut table = TextTable::new(
            std::iter::once(self.x_label.clone())
                .chain(xs.iter().map(|x| format!("{x}")))
                .collect(),
        );
        for method in self.methods() {
            let mut row = vec![method.clone()];
            for &x in &xs {
                row.push(match self.value(&method, x) {
                    Some(v) => format_value(v),
                    None => "-".to_string(),
                });
            }
            table.add_row(row);
        }
        table
    }

    /// Serialises the report as pretty JSON.
    pub fn to_json(&self) -> String {
        let points: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                ObjBuilder::new()
                    .field("method", p.method.as_str())
                    .field("x", p.x)
                    .field("value", p.value)
                    .build()
            })
            .collect();
        ObjBuilder::new()
            .field("id", self.id.as_str())
            .field("description", self.description.as_str())
            .field("x_label", self.x_label.as_str())
            .field("y_label", self.y_label.as_str())
            .field("points", Value::Arr(points))
            .build()
            .pretty()
    }

    /// Parses a JSON document produced by [`ExperimentReport::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        let value = Value::parse(json).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get_str(key)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or invalid `{key}`"))
        };
        let mut report = ExperimentReport::new(
            str_field("id")?,
            str_field("description")?,
            str_field("x_label")?,
            str_field("y_label")?,
        );
        let points = value
            .get("points")
            .and_then(Value::as_array)
            .ok_or("missing or invalid `points`")?;
        for (i, point) in points.iter().enumerate() {
            let parsed = (|| {
                Some((
                    point.get_str("method")?,
                    point.get_f64("x")?,
                    point.get_f64("value")?,
                ))
            })();
            match parsed {
                Some((method, x, v)) => report.push(method, x, v),
                None => return Err(format!("point {i} is not a {{method, x, value}} object")),
            }
        }
        Ok(report)
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 && v.abs() < 10_000.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// A minimal fixed-width text table renderer (no external dependencies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn add_row(&mut self, mut row: Vec<String>) {
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_collects_points_and_builds_tables() {
        let mut report = ExperimentReport::new("fig6a", "MAE of δA(u) on Flickr", "α (%)", "MAE");
        for &alpha in &[8.0, 16.0] {
            report.push("GDB", alpha, 0.01 / alpha);
            report.push("NI", alpha, 0.1 / alpha);
        }
        assert_eq!(report.methods(), vec!["GDB".to_string(), "NI".to_string()]);
        assert_eq!(report.xs(), vec![8.0, 16.0]);
        assert_eq!(report.value("GDB", 8.0), Some(0.00125));
        assert_eq!(report.value("GDB", 99.0), None);
        let table = report.to_table();
        assert_eq!(table.num_rows(), 2);
        let rendered = table.render();
        assert!(rendered.contains("GDB"));
        assert!(rendered.contains("NI"));
        assert!(rendered.contains("16"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = ExperimentReport::new("t", "d", "x", "y");
        report.push("A", 1.0, 2.0);
        report.push("B", 0.5, -3.25);
        let json = report.to_json();
        let back = ExperimentReport::from_json(&json).unwrap();
        assert_eq!(report, back);
        assert!(ExperimentReport::from_json("{}").is_err());
        assert!(ExperimentReport::from_json("[oops").is_err());
    }

    #[test]
    fn table_renders_aligned_columns_and_pads_rows() {
        let mut table = TextTable::new(vec!["method".into(), "a".into(), "b".into()]);
        table.add_row(vec!["X".into(), "1".into()]);
        table.add_row(vec!["longer-name".into(), "2".into(), "3".into()]);
        let rendered = format!("{table}");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4); // header + separator + 2 rows
        assert!(lines[0].contains("method"));
        assert!(lines[2].ends_with(' ') || lines[2].len() >= lines[0].len() - 2);
    }

    #[test]
    fn value_formatting_switches_to_scientific_for_extremes() {
        assert_eq!(format_value(0.0), "0");
        assert!(format_value(0.5).starts_with("0.5"));
        assert!(format_value(1e-7).contains('e'));
        assert!(format_value(1e9).contains('e'));
    }
}
