//! Entropy-based metrics (Figures 5(b) and 8).

use uncertain_graph::UncertainGraph;

/// Relative entropy `H(G') / H(G)`; 0 when the original graph has zero
/// entropy.  Re-exported from the core graph crate for a uniform metrics
/// namespace.
pub fn relative_entropy(original: &UncertainGraph, sparsified: &UncertainGraph) -> f64 {
    uncertain_graph::entropy::relative_entropy(original, sparsified)
}

/// Fraction of edges of `g` that are (numerically) deterministic, i.e. have
/// probability at least `1 − 1e-9`.  The paper uses this to explain the
/// variance reductions of `GDB`/`EMD` at small `α` ("75% of the edges of GDB
/// have probability 1" on Twitter at `α = 8%`).
pub fn fraction_deterministic_edges(g: &UncertainGraph) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let deterministic = g
        .probabilities()
        .iter()
        .filter(|&&p| p >= 1.0 - 1e-9)
        .count();
    deterministic as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_entropy_matches_ratio_of_entropies() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let s = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        assert!((relative_entropy(&g, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_fraction_counts_probability_one_edges() {
        let g = UncertainGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 0.5), (2, 3, 1.0)]).unwrap();
        assert!((fraction_deterministic_edges(&g) - 2.0 / 3.0).abs() < 1e-12);
        let empty = UncertainGraph::from_edges(2, []).unwrap();
        assert_eq!(fraction_deterministic_edges(&empty), 0.0);
    }
}
