//! Degree-discrepancy metrics (Table 2, Figures 6(a,c), 7(a)).

use uncertain_graph::UncertainGraph;

/// Which discrepancy flavour a metric reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricDiscrepancy {
    /// Absolute discrepancy `δA(u) = d_G(u) − d_G'(u)`.
    #[default]
    Absolute,
    /// Relative discrepancy `δR(u) = δA(u) / d_G(u)` (0 for isolated
    /// vertices of the original graph).
    Relative,
}

fn per_vertex_discrepancies(
    original: &UncertainGraph,
    sparsified: &UncertainGraph,
    kind: MetricDiscrepancy,
) -> Vec<f64> {
    assert_eq!(
        original.num_vertices(),
        sparsified.num_vertices(),
        "graphs must share a vertex set"
    );
    let d0 = original.expected_degrees();
    let d1 = sparsified.expected_degrees();
    d0.iter()
        .zip(d1.iter())
        .map(|(&a, &b)| match kind {
            MetricDiscrepancy::Absolute => a - b,
            MetricDiscrepancy::Relative => {
                if a > 0.0 {
                    (a - b) / a
                } else {
                    0.0
                }
            }
        })
        .collect()
}

/// Mean absolute error of the degree discrepancy over all vertices —
/// the quantity of Table 2 and Figures 6–7.
pub fn degree_discrepancy_mae(
    original: &UncertainGraph,
    sparsified: &UncertainGraph,
    kind: MetricDiscrepancy,
) -> f64 {
    let deltas = per_vertex_discrepancies(original, sparsified, kind);
    if deltas.is_empty() {
        0.0
    } else {
        deltas.iter().map(|d| d.abs()).sum::<f64>() / deltas.len() as f64
    }
}

/// Maximum absolute degree discrepancy over all vertices (a useful worst-case
/// companion to the MAE).
pub fn degree_discrepancy_max(
    original: &UncertainGraph,
    sparsified: &UncertainGraph,
    kind: MetricDiscrepancy,
) -> f64 {
    per_vertex_discrepancies(original, sparsified, kind)
        .iter()
        .map(|d| d.abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn original() -> UncertainGraph {
        UncertainGraph::from_edges(
            4,
            [
                (0, 1, 0.4),
                (0, 2, 0.2),
                (0, 3, 0.2),
                (1, 3, 0.2),
                (2, 3, 0.1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identical_graphs_have_zero_error() {
        let g = original();
        assert_eq!(
            degree_discrepancy_mae(&g, &g, MetricDiscrepancy::Absolute),
            0.0
        );
        assert_eq!(
            degree_discrepancy_mae(&g, &g, MetricDiscrepancy::Relative),
            0.0
        );
        assert_eq!(
            degree_discrepancy_max(&g, &g, MetricDiscrepancy::Absolute),
            0.0
        );
    }

    #[test]
    fn mae_matches_hand_computation() {
        let g = original();
        // Keep only edge (0, 1) at its original probability.
        let s = g.subgraph_with_edges([0]).unwrap();
        // Original expected degrees: (0.8, 0.6, 0.3, 0.5); sparsified:
        // (0.4, 0.4, 0, 0).
        let expected_abs = (0.4 + 0.2 + 0.3 + 0.5) / 4.0;
        assert!(
            (degree_discrepancy_mae(&g, &s, MetricDiscrepancy::Absolute) - expected_abs).abs()
                < 1e-12
        );
        let expected_rel = (0.4 / 0.8 + 0.2 / 0.6 + 1.0 + 1.0) / 4.0;
        assert!(
            (degree_discrepancy_mae(&g, &s, MetricDiscrepancy::Relative) - expected_rel).abs()
                < 1e-12
        );
        assert!((degree_discrepancy_max(&g, &s, MetricDiscrepancy::Absolute) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn isolated_original_vertices_do_not_blow_up_relative_error() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let s = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        assert_eq!(
            degree_discrepancy_mae(&g, &s, MetricDiscrepancy::Relative),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "share a vertex set")]
    fn mismatched_vertex_sets_panic() {
        let g = UncertainGraph::from_edges(3, [(0, 1, 0.5)]).unwrap();
        let s = UncertainGraph::from_edges(2, [(0, 1, 0.5)]).unwrap();
        degree_discrepancy_mae(&g, &s, MetricDiscrepancy::Absolute);
    }

    #[test]
    fn empty_graphs_have_zero_error() {
        let g = UncertainGraph::from_edges(0, []).unwrap();
        assert_eq!(
            degree_discrepancy_mae(&g, &g, MetricDiscrepancy::Absolute),
            0.0
        );
    }
}
