//! Earth mover's distance between empirical result distributions
//! (Equation 17, Figures 10–11).
//!
//! To compare how well a sparsified graph `G'` approximates a query `Q` on
//! the original graph `G`, the paper collects the observed outcomes of `Q`
//! on both graphs, forms the two empirical cumulative distributions and
//! measures the minimum amount of "work" needed to align them:
//!
//! ```text
//! D_em(G, G', Q) = Σ_i |F_G(x_i) − F_G'(x_i)| · (x_i − x_{i-1})
//! ```
//!
//! over the ordered union `{x_0 < x_1 < … < x_M}` of all observed outcomes.
//! For one-dimensional distributions this equals the 1-Wasserstein distance.

/// Earth mover's distance between two observation multisets.
///
/// Non-finite observations (e.g. the `NaN` distance of a never-connected
/// pair) are ignored.  Returns 0 when either side has no finite
/// observations.
pub fn earth_movers_distance(original: &[f64], sparsified: &[f64]) -> f64 {
    let mut a: Vec<f64> = original.iter().copied().filter(|x| x.is_finite()).collect();
    let mut b: Vec<f64> = sparsified
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .collect();
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    a.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite"));

    // Ordered union of the supports.
    let mut support: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    support.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    support.dedup();

    let cdf = |sorted: &[f64], x: f64| -> f64 {
        // fraction of observations ≤ x
        let idx = sorted.partition_point(|&v| v <= x);
        idx as f64 / sorted.len() as f64
    };

    let mut distance = 0.0;
    for window in support.windows(2) {
        let (x_prev, x) = (window[0], window[1]);
        // |F_G(x_{i-1}) − F_G'(x_{i-1})| weighted by the gap to the next
        // support point: the CDFs are step functions, constant on
        // [x_{i-1}, x_i).
        distance += (cdf(&a, x_prev) - cdf(&b, x_prev)).abs() * (x - x_prev);
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(earth_movers_distance(&xs, &xs), 0.0);
    }

    #[test]
    fn point_masses_have_distance_equal_to_their_gap() {
        assert!((earth_movers_distance(&[0.0], &[3.0]) - 3.0).abs() < 1e-12);
        assert!((earth_movers_distance(&[3.0], &[0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_distribution_distance_equals_the_shift() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 2.5).collect();
        assert!((earth_movers_distance(&a, &b) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn distance_equals_mean_difference_for_sorted_paired_samples() {
        // For equal-size samples the 1-Wasserstein distance is the mean
        // absolute difference of the order statistics.
        let a = [0.0, 1.0, 5.0, 9.0];
        let b = [0.5, 2.0, 4.0, 12.0];
        let expected = (0.5 + 1.0 + 1.0 + 3.0) / 4.0;
        assert!((earth_movers_distance(&a, &b) - expected).abs() < 1e-9);
    }

    #[test]
    fn symmetric_and_nonnegative() {
        let a = [0.1, 0.7, 0.3];
        let b = [0.9, 0.2];
        let d1 = earth_movers_distance(&a, &b);
        let d2 = earth_movers_distance(&b, &a);
        assert!(d1 >= 0.0);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn nan_observations_are_ignored() {
        let a = [1.0, f64::NAN, 2.0];
        let b = [1.0, 2.0];
        assert!(earth_movers_distance(&a, &b).abs() < 1e-12);
        assert_eq!(earth_movers_distance(&[f64::NAN], &[1.0]), 0.0);
        assert_eq!(earth_movers_distance(&[], &[1.0]), 0.0);
    }

    #[test]
    fn triangle_inequality_holds_on_random_samples() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..20 {
            let a: Vec<f64> = (0..30).map(|_| rng.gen_range(0.0..10.0)).collect();
            let b: Vec<f64> = (0..30).map(|_| rng.gen_range(0.0..10.0)).collect();
            let c: Vec<f64> = (0..30).map(|_| rng.gen_range(0.0..10.0)).collect();
            let ab = earth_movers_distance(&a, &b);
            let bc = earth_movers_distance(&b, &c);
            let ac = earth_movers_distance(&a, &c);
            assert!(ac <= ab + bc + 1e-9);
        }
    }
}
