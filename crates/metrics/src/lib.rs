//! # ugs-metrics
//!
//! Evaluation metrics used throughout the paper's experimental study:
//!
//! * [`degree`] — mean absolute error of the degree discrepancy `δ(u)`
//!   (Table 2, Figures 6–7),
//! * [`cuts`] — mean absolute error of the expected-cut-size discrepancy
//!   `δ(S)` over randomly sampled vertex sets (Figures 4, 6, 7),
//! * [`entropy`] — relative entropy `H(G')/H(G)` (Figures 5, 8),
//! * [`emd`] — the earth mover's distance between two empirical result
//!   distributions (Equation 17, Figures 10–11),
//! * [`report`] — small table/series containers the experiment binaries use
//!   to print paper-style rows and to serialise results to JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cuts;
pub mod degree;
pub mod emd;
pub mod entropy;
pub mod report;

pub use cuts::{cut_discrepancy_mae, exact_cut_discrepancy_mae, CutSamplingConfig};
pub use degree::{degree_discrepancy_mae, degree_discrepancy_max};
pub use emd::earth_movers_distance;
pub use entropy::{fraction_deterministic_edges, relative_entropy};
pub use report::{ExperimentReport, SeriesPoint, TextTable};

/// Commonly used items, suitable for a glob import.
///
/// (`relative_entropy` is intentionally not re-exported here because the
/// `uncertain-graph` prelude already provides a function of the same name;
/// use `ugs_metrics::relative_entropy` explicitly when needed.)
pub mod prelude {
    pub use crate::cuts::{cut_discrepancy_mae, CutSamplingConfig};
    pub use crate::degree::degree_discrepancy_mae;
    pub use crate::emd::earth_movers_distance;
    pub use crate::entropy::fraction_deterministic_edges;
    pub use crate::report::{ExperimentReport, SeriesPoint, TextTable};
}
