//! # ugs — Uncertain Graph Sparsification
//!
//! A reproduction of *“Uncertain Graph Sparsification”* (Parchas, Papailiou,
//! Papadias, Bonchi — ICDE 2019 / TKDE), packaged as a workspace of focused
//! crates and re-exported here as a single convenient facade.
//!
//! Given an uncertain graph `G = (V, E, p)` (every edge has an existence
//! probability) and a ratio `α ∈ (0, 1)`, the library produces a sparsified
//! uncertain graph `G' = (V, E', p')` with `|E'| = α|E|` that preserves the
//! expected vertex degrees / cut sizes of `G`, has lower entropy, and can be
//! used in place of `G` for Monte-Carlo query answering (PageRank, shortest
//! path distance, reliability, clustering coefficient) at a fraction of the
//! cost.
//!
//! ## Crates
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`graph`] | `uncertain-graph` | the `UncertainGraph` type, possible worlds, entropy, I/O |
//! | [`algo`] | `graph-algos` | union-find, spanning forests, BFS/Dijkstra, PageRank, clustering, indexed heap |
//! | [`lp`] | `lp-solver` | dense simplex used by the LP reference method |
//! | [`sparsify`] | `ugs-core` | backbone initialisation, `GDB`, `EMD`, LP assignment, `SparsifierSpec` |
//! | [`baselines`] | `ugs-baselines` | the `NI` and `SS` baselines adapted from deterministic sparsification |
//! | [`queries`] | `ugs-queries` | zero-allocation Monte-Carlo world engine, queries, estimator variance |
//! | [`service`] | `ugs-service` | `QuerySpec`/`QueryResult` data API, JSON query plans, sharded streaming `QueryService` |
//! | [`server`] | `ugs-server` | line-delimited JSON TCP front-end: deterministic result cache, admission control, graceful shutdown |
//! | [`dist`] | `ugs-dist` | multi-process shard workers with a boundary-exchange coordinator, bit-identical to in-process runs |
//! | [`metrics`] | `ugs-metrics` | degree/cut discrepancy MAE, relative entropy, earth mover's distance |
//! | [`datasets`] | `ugs-datasets` | Flickr/Twitter-shaped generators, density sweep, Forest Fire sampling |
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use ugs::prelude::*;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! // A Flickr-shaped uncertain social network (tiny scale for the doctest).
//! let g = ugs::datasets::flickr_like(ugs::datasets::Scale::Tiny, &mut rng);
//!
//! // Sparsify to 16% of the edges with EMD (relative discrepancy, spanning
//! // backbone — the paper's best variant).
//! let spec = SparsifierSpec::emd()
//!     .alpha(0.16)
//!     .discrepancy(DiscrepancyKind::Relative)
//!     .entropy_h(0.05);
//! let sparse = spec.sparsify(&g, &mut rng).unwrap();
//! assert_eq!(sparse.graph.num_edges(), (0.16 * g.num_edges() as f64).round() as usize);
//! assert!(sparse.graph.entropy() < g.entropy());
//!
//! // Degrees are preserved...
//! let mae = ugs::metrics::degree_discrepancy_mae(
//!     &g,
//!     &sparse.graph,
//!     ugs::metrics::degree::MetricDiscrepancy::Absolute,
//! );
//! assert!(mae < 1.0);
//!
//! // ...and queries on the sparsified graph approximate queries on G — at a
//! // fraction of the cost: every query runs on the world engine, which
//! // skip-samples worlds in O(Σ pₑ) expected time and materialises them
//! // into reusable scratch buffers (zero allocations per world).  On the
//! // low-probability sparsified graph the skip path shines.
//! let mc = MonteCarlo::worlds(50); // sequential & machine-independent
//! let pr_sparse = ugs::queries::expected_pagerank(&sparse.graph, &mc, &mut rng);
//! assert_eq!(pr_sparse.len(), g.num_vertices());
//!
//! // One worker per core: worlds are split deterministically, each worker
//! // owns an RNG stream seeded from `rng`, and partial accumulators come
//! // back by value on join.  Same seed + same thread count ⇒ same answer.
//! let mc = MonteCarlo::parallel(50);
//! let pr_parallel = ugs::queries::expected_pagerank(&sparse.graph, &mc, &mut rng);
//! assert_eq!(pr_parallel.len(), g.num_vertices());
//!
//! // The engine is also usable directly for custom per-world evaluation.
//! let engine = WorldEngine::new(&sparse.graph);
//! let mut scratch = engine.make_scratch();
//! let world = engine.sample_world(&mut rng, &mut scratch);
//! assert!(world.num_edges() <= sparse.graph.num_edges());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use graph_algos as algo;
pub use lp_solver as lp;
pub use ugs_baselines as baselines;
pub use ugs_core as sparsify;
pub use ugs_datasets as datasets;
pub use ugs_dist as dist;
pub use ugs_metrics as metrics;
pub use ugs_queries as queries;
pub use ugs_server as server;
pub use ugs_service as service;
pub use uncertain_graph as graph;

/// The most commonly used items from every crate in the workspace.
pub mod prelude {
    pub use graph_algos::prelude::*;
    pub use ugs_baselines::prelude::*;
    pub use ugs_core::prelude::*;
    pub use ugs_datasets::prelude::*;
    pub use ugs_metrics::prelude::*;
    pub use ugs_queries::prelude::*;
    pub use ugs_service::{
        BatchPolicy, QueryPlan, QueryResult, QueryService, QuerySpec, ResultTicket,
    };
    pub use uncertain_graph::prelude::*;
}
