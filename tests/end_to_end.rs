//! Cross-crate integration tests: generate → sparsify (every method) →
//! query → evaluate, exercising the whole public API exactly as a downstream
//! user would.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs::metrics::degree::MetricDiscrepancy;
use ugs::prelude::*;

fn flickr_tiny(seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    ugs::datasets::flickr_like(Scale::Tiny, &mut rng)
}

fn all_sparsifiers(alpha: f64) -> Vec<Box<dyn Sparsifier>> {
    vec![
        Box::new(SparsifierSpec::gdb().alpha(alpha)),
        Box::new(
            SparsifierSpec::gdb()
                .alpha(alpha)
                .backbone(BackboneKind::Random),
        ),
        Box::new(
            SparsifierSpec::emd()
                .alpha(alpha)
                .discrepancy(DiscrepancyKind::Relative),
        ),
        Box::new(SparsifierSpec::lp().alpha(alpha)),
        Box::new(NagamochiIbaraki::new(alpha)),
        Box::new(SpannerSparsifier::new(alpha)),
    ]
}

#[test]
fn every_method_produces_a_valid_sparsified_graph() {
    let g = flickr_tiny(1);
    let alpha = 0.2;
    let target = (alpha * g.num_edges() as f64).round() as usize;
    let mut rng = SmallRng::seed_from_u64(9);
    for sparsifier in all_sparsifiers(alpha) {
        let out = sparsifier
            .sparsify_dyn(&g, &mut rng)
            .expect("method must succeed");
        assert_eq!(
            out.graph.num_vertices(),
            g.num_vertices(),
            "{}",
            sparsifier.name()
        );
        assert_eq!(out.graph.num_edges(), target, "{}", sparsifier.name());
        for e in out.graph.edges() {
            assert!(
                e.p > 0.0 && e.p <= 1.0,
                "{}: invalid probability {}",
                sparsifier.name(),
                e.p
            );
            assert!(
                g.has_edge(e.u, e.v),
                "{}: edge not in the original graph",
                sparsifier.name()
            );
        }
        assert_eq!(out.diagnostics.target_edges, target);
        assert!(out.diagnostics.entropy_original > 0.0);
    }
}

#[test]
fn proposed_methods_preserve_degrees_better_than_baselines() {
    // The core claim of Figures 6–7: GDB and EMD have (much) lower degree
    // discrepancy than NI and SS at the same ratio.
    let g = flickr_tiny(2);
    let alpha = 0.16;
    let mut rng = SmallRng::seed_from_u64(11);
    let mae = |s: &dyn Sparsifier, rng: &mut SmallRng| {
        let out = s.sparsify_dyn(&g, rng).unwrap();
        degree_discrepancy_mae(&g, &out.graph, MetricDiscrepancy::Absolute)
    };
    let gdb = mae(&SparsifierSpec::gdb().alpha(alpha), &mut rng);
    let emd = mae(
        &SparsifierSpec::emd()
            .alpha(alpha)
            .discrepancy(DiscrepancyKind::Relative),
        &mut rng,
    );
    let ni = mae(&NagamochiIbaraki::new(alpha), &mut rng);
    let ss = mae(&SpannerSparsifier::new(alpha), &mut rng);
    assert!(gdb < ni && gdb < ss, "GDB {gdb} vs NI {ni} / SS {ss}");
    assert!(emd < ni && emd < ss, "EMD {emd} vs NI {ni} / SS {ss}");
}

#[test]
fn proposed_methods_reduce_entropy_baselines_do_not() {
    // Figure 8: relative entropy of GDB/EMD is far below the baselines'.
    let g = flickr_tiny(3);
    let alpha = 0.16;
    let mut rng = SmallRng::seed_from_u64(13);
    let rel_entropy = |s: &dyn Sparsifier, rng: &mut SmallRng| {
        let out = s.sparsify_dyn(&g, rng).unwrap();
        out.diagnostics.relative_entropy()
    };
    let gdb = rel_entropy(&SparsifierSpec::gdb().alpha(alpha), &mut rng);
    let emd = rel_entropy(
        &SparsifierSpec::emd()
            .alpha(alpha)
            .discrepancy(DiscrepancyKind::Relative),
        &mut rng,
    );
    let ss = rel_entropy(&SpannerSparsifier::new(alpha), &mut rng);
    assert!(gdb < ss, "GDB {gdb} should be below SS {ss}");
    assert!(emd < ss, "EMD {emd} should be below SS {ss}");
    assert!(gdb < 1.0 && emd < 1.0 && ss <= 1.0);
}

#[test]
fn queries_on_sparsified_graph_track_the_original() {
    // Figure 10's shape: the proposed sparsifier approximates PR and RL on
    // the original graph, and does so better than the spanner baseline.
    let g = flickr_tiny(4);
    let mut rng = SmallRng::seed_from_u64(17);
    let emd_out = SparsifierSpec::emd()
        .alpha(0.25)
        .discrepancy(DiscrepancyKind::Relative)
        .sparsify(&g, &mut rng)
        .unwrap();
    let ss_out = SpannerSparsifier::new(0.25).sparsify(&g, &mut rng).unwrap();

    let mc = MonteCarlo::worlds(150);
    let pr_g = ugs::queries::expected_pagerank(&g, &mc, &mut rng);
    let pr_emd = ugs::queries::expected_pagerank(&emd_out.graph, &mc, &mut rng);
    let pr_ss = ugs::queries::expected_pagerank(&ss_out.graph, &mc, &mut rng);
    assert_eq!(pr_g.len(), pr_emd.len());
    let dem_pr_emd = earth_movers_distance(&pr_g, &pr_emd);
    let dem_pr_ss = earth_movers_distance(&pr_g, &pr_ss);
    // PageRank values live on a 1/n scale; the distributions must be close
    // and EMD must beat the probability-blind spanner baseline.
    assert!(
        dem_pr_emd < 2.0 / g.num_vertices() as f64,
        "D_em(PR) = {dem_pr_emd}"
    );
    assert!(
        dem_pr_emd <= dem_pr_ss,
        "EMD {dem_pr_emd} vs SS {dem_pr_ss}"
    );

    let pairs = random_pairs(g.num_vertices(), 60, &mut rng);
    let pq_g = pair_queries(&g, &pairs, &mc, &mut rng);
    let pq_emd = pair_queries(&emd_out.graph, &pairs, &mc, &mut rng);
    let pq_ss = pair_queries(&ss_out.graph, &pairs, &mc, &mut rng);
    let dem_rl_emd = earth_movers_distance(&pq_g.reliability, &pq_emd.reliability);
    let dem_rl_ss = earth_movers_distance(&pq_g.reliability, &pq_ss.reliability);
    assert!(dem_rl_emd < 0.4, "D_em(RL) = {dem_rl_emd}");
    // At this tiny scale the reliability errors of EMD and SS are close (the
    // decisive gap of Figure 10(c,g) appears at realistic sizes — see the
    // fig10 experiment binary); only require EMD not to be substantially
    // worse.
    assert!(
        dem_rl_emd <= 1.25 * dem_rl_ss,
        "EMD {dem_rl_emd} vs SS {dem_rl_ss}"
    );
}

#[test]
fn sparsification_reduces_estimator_variance() {
    // Figure 12's shape: the MC estimator on the sparsified graph has lower
    // run-to-run variance than on the original (thanks to entropy reduction).
    let g = flickr_tiny(5);
    let mut rng = SmallRng::seed_from_u64(23);
    let out = SparsifierSpec::gdb()
        .alpha(0.16)
        .sparsify(&g, &mut rng)
        .unwrap();

    let mc = MonteCarlo::worlds(30);
    let mut seeds = SmallRng::seed_from_u64(99);
    let mut variance_of = |graph: &UncertainGraph| {
        let mut local = SmallRng::seed_from_u64(seeds.next_u64());
        estimator_variance(15, |_| {
            ugs::queries::expected_pagerank(graph, &mc, &mut local)
        })
    };
    let var_original = variance_of(&g);
    let var_sparse = variance_of(&out.graph);
    let ratio = var_sparse.relative_to(&var_original);
    assert!(ratio < 1.0, "relative variance {ratio} should drop below 1");
}

#[test]
fn cli_batch_command_emits_a_deterministic_json_snapshot() {
    // Drive the CLI `batch` subcommand end to end on a tiny fixture whose
    // queries have closed-form answers: a certain 4-path plus one uncertain
    // chord.  The report must parse as JSON via minijson, reproduce the
    // closed-form values, and be byte-identical across runs (the snapshot
    // property: same seed, same report).
    use ugs_cli::args::ParsedArgs;
    use ugs_cli::commands;

    let g = UncertainGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 0.5)])
        .unwrap();
    let dir = std::env::temp_dir().join("ugs-e2e-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-batch-fixture.txt", std::process::id()));
    ugs::graph::io::write_text_file(&g, &path).unwrap();
    let path_str = path.to_string_lossy().to_string();

    let args = ParsedArgs::parse([
        "batch",
        path_str.as_str(),
        "--queries",
        "pagerank,connectivity,degree-hist,edge-freq,knn",
        "--worlds",
        "200",
        "--top",
        "4",
        "--seed",
        "7",
        "--sequential",
        "--mode",
        "skip",
    ])
    .unwrap();
    let report = commands::run(&args).unwrap();
    assert_eq!(
        report,
        commands::run(&args).unwrap(),
        "snapshot must be stable"
    );

    let doc = minijson::Value::parse(&report).expect("report must be valid JSON");
    assert_eq!(doc.get_str("mode"), Some("skip"));
    assert_eq!(doc.get_usize("worlds"), Some(200));
    let queries = doc.get("queries").expect("queries object");

    // The certain path keeps the graph connected in every world.
    let connectivity = queries.get("connectivity").unwrap();
    assert_eq!(connectivity.get_f64("probability_connected"), Some(1.0));
    assert_eq!(connectivity.get_f64("expected_components"), Some(1.0));
    assert_eq!(
        connectivity.get_f64("expected_largest_component"),
        Some(4.0)
    );

    // Certain edges appear with frequency exactly 1; the chord near 0.5.
    let frequencies = queries.get("edge_frequencies").unwrap().as_array().unwrap();
    assert_eq!(frequencies.len(), 4);
    for index in [0usize, 1, 2] {
        assert_eq!(frequencies[index].as_f64(), Some(1.0));
    }
    let chord = frequencies[3].as_f64().unwrap();
    assert!((chord - 0.5).abs() < 0.1, "chord frequency {chord}");

    // Degree histogram: no world has an isolated or degree-4 vertex.
    let histogram = queries.get("degree_histogram").unwrap().as_array().unwrap();
    assert_eq!(histogram[0].as_f64(), Some(0.0));
    let total: f64 = histogram.iter().filter_map(minijson::Value::as_f64).sum();
    assert!((total - 4.0).abs() < 1e-9);

    // k-NN from vertex 0: vertex 1 is always one hop away.
    let knn = queries.get("knn").unwrap().as_array().unwrap();
    assert_eq!(knn[0].get_usize("vertex"), Some(1));
    assert_eq!(knn[0].get_f64("expected_distance"), Some(1.0));
    assert_eq!(knn[0].get_f64("reachability"), Some(1.0));

    // PageRank: 4 ranked entries, scores sum to ~1 over all vertices.
    let pagerank = queries.get("pagerank").unwrap().as_array().unwrap();
    assert_eq!(pagerank.len(), 4);
    let pr_total: f64 = pagerank.iter().filter_map(|v| v.get_f64("score")).sum();
    assert!((pr_total - 1.0).abs() < 1e-9, "PageRank sums to {pr_total}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn cli_plan_command_executes_a_mixed_plan_with_a_snapshot_report() {
    // The acceptance path of the query-plan redesign: a JSON plan file with
    // a mixed 4-query workload runs end-to-end through `ugs plan` (QuerySpec
    // parsing → QueryService micro-batch → JSON report) and the report is a
    // snapshot: byte-identical across runs, closed-form values recovered.
    use ugs_cli::args::ParsedArgs;
    use ugs_cli::commands;

    let g = UncertainGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 0.5)])
        .unwrap();
    let dir = std::env::temp_dir().join("ugs-e2e-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join(format!("{}-plan-fixture.txt", std::process::id()));
    ugs::graph::io::write_text_file(&g, &graph_path).unwrap();
    let plan_path = dir.join(format!("{}-plan.json", std::process::id()));
    std::fs::write(
        &plan_path,
        format!(
            r#"{{"graph": {:?}, "worlds": 200, "threads": 2, "mode": "skip", "seed": 7,
                "queries": [
                  {{"type": "pagerank"}},
                  {{"type": "connectivity"}},
                  {{"type": "knn", "source": 0, "k": 4}},
                  {{"type": "edge_frequency"}}
                ]}}"#,
            graph_path.to_string_lossy()
        ),
    )
    .unwrap();

    let args = ParsedArgs::parse(["plan", plan_path.to_string_lossy().as_ref()]).unwrap();
    let report = commands::run(&args).unwrap();
    assert_eq!(
        report,
        commands::run(&args).unwrap(),
        "snapshot must be stable"
    );

    let doc = minijson::Value::parse(&report).expect("report must be valid JSON");
    assert_eq!(doc.get_usize("worlds"), Some(200));
    assert_eq!(doc.get_usize("threads"), Some(2));
    assert_eq!(doc.get_str("mode"), Some("skip"));
    let results = doc.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 4);
    for entry in results {
        assert_eq!(entry.get_str("status"), Some("ok"), "{report}");
    }

    // The certain 3-path keeps the graph connected in every world.
    let connectivity = results[1].get("result").unwrap();
    assert_eq!(connectivity.get_str("type"), Some("connectivity"));
    assert_eq!(connectivity.get_f64("probability_connected"), Some(1.0));
    assert_eq!(connectivity.get_f64("expected_components"), Some(1.0));

    // PageRank sums to 1 across the 4 vertices.
    let pagerank = results[0].get("result").unwrap();
    let scores = pagerank.get("scores").unwrap().as_array().unwrap();
    assert_eq!(scores.len(), 4);
    let total: f64 = scores.iter().filter_map(minijson::Value::as_f64).sum();
    assert!((total - 1.0).abs() < 1e-9, "PageRank sums to {total}");

    // k-NN from vertex 0: vertex 1 is always one hop away.
    let knn = results[2].get("result").unwrap();
    let neighbors = knn.get("neighbors").unwrap().as_array().unwrap();
    assert_eq!(neighbors[0].get_usize("vertex"), Some(1));
    assert_eq!(neighbors[0].get_f64("expected_distance"), Some(1.0));

    // Certain edges have frequency exactly 1; the chord is near 0.5.
    let frequencies = results[3].get("result").unwrap();
    let freq = frequencies.get("frequencies").unwrap().as_array().unwrap();
    assert_eq!(freq.len(), 4);
    for index in [0usize, 1, 2] {
        assert_eq!(freq[index].as_f64(), Some(1.0));
    }
    let chord = freq[3].as_f64().unwrap();
    assert!((chord - 0.5).abs() < 0.12, "chord frequency {chord}");

    std::fs::remove_file(&graph_path).ok();
    std::fs::remove_file(&plan_path).ok();
}

#[test]
fn cli_sparsify_engine_and_time_flags_emit_a_stable_report() {
    // The indexed-engine acceptance path at the CLI level: `ugs sparsify`
    // with `--engine reference` and `--engine indexed` must produce
    // byte-identical reports apart from the engine label and the wall-clock
    // lines (the engines are bit-identical), and `--time` must append a
    // parseable minijson object with the per-phase timings.
    use ugs_cli::args::ParsedArgs;
    use ugs_cli::commands;

    let g = flickr_tiny(8);
    let dir = std::env::temp_dir().join("ugs-e2e-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-sparsify-fixture.txt", std::process::id()));
    ugs::graph::io::write_text_file(&g, &path).unwrap();
    let path_str = path.to_string_lossy().to_string();

    let run_with = |engine: &str, method: &str| {
        let args = ParsedArgs::parse([
            "sparsify", &path_str, "--alpha", "0.25", "--method", method, "--seed", "9",
            "--engine", engine, "--time",
        ])
        .unwrap();
        commands::run(&args).unwrap()
    };
    // Drop the lines whose content is wall-clock dependent; everything else
    // is a deterministic snapshot.
    let stable = |report: &str| -> Vec<String> {
        report
            .lines()
            .filter(|line| {
                !line.starts_with("time")
                    && !line.starts_with("timings")
                    && !line.starts_with("engine")
            })
            .map(str::to_string)
            .collect()
    };

    for method in ["gdb", "emd"] {
        let indexed = run_with("indexed", method);
        assert_eq!(
            stable(&indexed),
            stable(&run_with("indexed", method)),
            "{method}: snapshot must be stable across runs"
        );
        assert_eq!(
            stable(&indexed),
            stable(&run_with("reference", method)),
            "{method}: engines must agree"
        );
        let timings_line = indexed
            .lines()
            .find(|line| line.starts_with("timings"))
            .expect("timings line present");
        let doc = minijson::Value::parse(timings_line.split_once(':').unwrap().1.trim())
            .expect("timings must be valid JSON");
        let total = doc.get_f64("total_ms").unwrap();
        assert!(total >= 0.0);
        for field in ["backbone_ms", "optimize_ms", "materialize_ms"] {
            let value = doc.get_f64(field).unwrap();
            assert!(value >= 0.0 && value <= total + 1e-6, "{method}: {field}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn graph_io_round_trips_through_all_formats() {
    let g = flickr_tiny(6);
    // text
    let mut buffer = Vec::new();
    ugs::graph::io::write_text(&g, &mut buffer).unwrap();
    let text_back = ugs::graph::io::read_text(std::io::Cursor::new(buffer)).unwrap();
    assert_eq!(text_back.num_edges(), g.num_edges());
    // json
    let json = ugs::graph::io::to_json(&g).unwrap();
    let json_back = ugs::graph::io::from_json(&json).unwrap();
    assert_eq!(json_back.num_edges(), g.num_edges());
    // binary
    let bytes = ugs::graph::io::to_bytes(&g);
    let bin_back = ugs::graph::io::from_bytes(&bytes).unwrap();
    assert_eq!(bin_back.num_edges(), g.num_edges());
    // probabilities survive exactly
    for e in g.edges() {
        let id = bin_back.find_edge(e.u, e.v).unwrap();
        assert_eq!(bin_back.edge_probability(id), e.p);
    }
}

#[test]
fn forest_fire_reduction_plus_lp_reference_pipeline() {
    // The paper's Table 2 pipeline: reduce the graph with Forest Fire
    // sampling, then compare LP (optimal Δ1 on the backbone) against GDB.
    let g = flickr_tiny(7);
    let mut rng = SmallRng::seed_from_u64(31);
    let (reduced, _) = ugs::datasets::forest_fire_sample(&g, 80, 0.7, &mut rng);
    assert_eq!(reduced.num_vertices(), 80);

    let lp = SparsifierSpec::lp()
        .alpha(0.3)
        .sparsify(&reduced, &mut rng)
        .unwrap();
    let gdb = SparsifierSpec::gdb()
        .alpha(0.3)
        .entropy_h(1.0)
        .sparsify(&reduced, &mut rng)
        .unwrap();
    let lp_mae = degree_discrepancy_mae(&reduced, &lp.graph, MetricDiscrepancy::Absolute);
    let gdb_mae = degree_discrepancy_mae(&reduced, &gdb.graph, MetricDiscrepancy::Absolute);
    // Both must be small; LP is the optimum for its own backbone, GDB must be
    // in the same ballpark (Table 2 shows them within a small factor).
    assert!(lp_mae.is_finite() && gdb_mae.is_finite());
    assert!(
        gdb_mae <= 5.0 * lp_mae + 0.05,
        "GDB {gdb_mae} vs LP {lp_mae}"
    );
}

use rand::RngCore;
