//! Cross-crate integration tests: generate → sparsify (every method) →
//! query → evaluate, exercising the whole public API exactly as a downstream
//! user would.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs::metrics::degree::MetricDiscrepancy;
use ugs::prelude::*;

fn flickr_tiny(seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    ugs::datasets::flickr_like(Scale::Tiny, &mut rng)
}

fn all_sparsifiers(alpha: f64) -> Vec<Box<dyn Sparsifier>> {
    vec![
        Box::new(SparsifierSpec::gdb().alpha(alpha)),
        Box::new(
            SparsifierSpec::gdb()
                .alpha(alpha)
                .backbone(BackboneKind::Random),
        ),
        Box::new(
            SparsifierSpec::emd()
                .alpha(alpha)
                .discrepancy(DiscrepancyKind::Relative),
        ),
        Box::new(SparsifierSpec::lp().alpha(alpha)),
        Box::new(NagamochiIbaraki::new(alpha)),
        Box::new(SpannerSparsifier::new(alpha)),
    ]
}

#[test]
fn every_method_produces_a_valid_sparsified_graph() {
    let g = flickr_tiny(1);
    let alpha = 0.2;
    let target = (alpha * g.num_edges() as f64).round() as usize;
    let mut rng = SmallRng::seed_from_u64(9);
    for sparsifier in all_sparsifiers(alpha) {
        let out = sparsifier
            .sparsify_dyn(&g, &mut rng)
            .expect("method must succeed");
        assert_eq!(
            out.graph.num_vertices(),
            g.num_vertices(),
            "{}",
            sparsifier.name()
        );
        assert_eq!(out.graph.num_edges(), target, "{}", sparsifier.name());
        for e in out.graph.edges() {
            assert!(
                e.p > 0.0 && e.p <= 1.0,
                "{}: invalid probability {}",
                sparsifier.name(),
                e.p
            );
            assert!(
                g.has_edge(e.u, e.v),
                "{}: edge not in the original graph",
                sparsifier.name()
            );
        }
        assert_eq!(out.diagnostics.target_edges, target);
        assert!(out.diagnostics.entropy_original > 0.0);
    }
}

#[test]
fn proposed_methods_preserve_degrees_better_than_baselines() {
    // The core claim of Figures 6–7: GDB and EMD have (much) lower degree
    // discrepancy than NI and SS at the same ratio.
    let g = flickr_tiny(2);
    let alpha = 0.16;
    let mut rng = SmallRng::seed_from_u64(11);
    let mae = |s: &dyn Sparsifier, rng: &mut SmallRng| {
        let out = s.sparsify_dyn(&g, rng).unwrap();
        degree_discrepancy_mae(&g, &out.graph, MetricDiscrepancy::Absolute)
    };
    let gdb = mae(&SparsifierSpec::gdb().alpha(alpha), &mut rng);
    let emd = mae(
        &SparsifierSpec::emd()
            .alpha(alpha)
            .discrepancy(DiscrepancyKind::Relative),
        &mut rng,
    );
    let ni = mae(&NagamochiIbaraki::new(alpha), &mut rng);
    let ss = mae(&SpannerSparsifier::new(alpha), &mut rng);
    assert!(gdb < ni && gdb < ss, "GDB {gdb} vs NI {ni} / SS {ss}");
    assert!(emd < ni && emd < ss, "EMD {emd} vs NI {ni} / SS {ss}");
}

#[test]
fn proposed_methods_reduce_entropy_baselines_do_not() {
    // Figure 8: relative entropy of GDB/EMD is far below the baselines'.
    let g = flickr_tiny(3);
    let alpha = 0.16;
    let mut rng = SmallRng::seed_from_u64(13);
    let rel_entropy = |s: &dyn Sparsifier, rng: &mut SmallRng| {
        let out = s.sparsify_dyn(&g, rng).unwrap();
        out.diagnostics.relative_entropy()
    };
    let gdb = rel_entropy(&SparsifierSpec::gdb().alpha(alpha), &mut rng);
    let emd = rel_entropy(
        &SparsifierSpec::emd()
            .alpha(alpha)
            .discrepancy(DiscrepancyKind::Relative),
        &mut rng,
    );
    let ss = rel_entropy(&SpannerSparsifier::new(alpha), &mut rng);
    assert!(gdb < ss, "GDB {gdb} should be below SS {ss}");
    assert!(emd < ss, "EMD {emd} should be below SS {ss}");
    assert!(gdb < 1.0 && emd < 1.0 && ss <= 1.0);
}

#[test]
fn queries_on_sparsified_graph_track_the_original() {
    // Figure 10's shape: the proposed sparsifier approximates PR and RL on
    // the original graph, and does so better than the spanner baseline.
    let g = flickr_tiny(4);
    let mut rng = SmallRng::seed_from_u64(17);
    let emd_out = SparsifierSpec::emd()
        .alpha(0.25)
        .discrepancy(DiscrepancyKind::Relative)
        .sparsify(&g, &mut rng)
        .unwrap();
    let ss_out = SpannerSparsifier::new(0.25).sparsify(&g, &mut rng).unwrap();

    let mc = MonteCarlo::worlds(150);
    let pr_g = ugs::queries::expected_pagerank(&g, &mc, &mut rng);
    let pr_emd = ugs::queries::expected_pagerank(&emd_out.graph, &mc, &mut rng);
    let pr_ss = ugs::queries::expected_pagerank(&ss_out.graph, &mc, &mut rng);
    assert_eq!(pr_g.len(), pr_emd.len());
    let dem_pr_emd = earth_movers_distance(&pr_g, &pr_emd);
    let dem_pr_ss = earth_movers_distance(&pr_g, &pr_ss);
    // PageRank values live on a 1/n scale; the distributions must be close
    // and EMD must beat the probability-blind spanner baseline.
    assert!(
        dem_pr_emd < 2.0 / g.num_vertices() as f64,
        "D_em(PR) = {dem_pr_emd}"
    );
    assert!(
        dem_pr_emd <= dem_pr_ss,
        "EMD {dem_pr_emd} vs SS {dem_pr_ss}"
    );

    let pairs = random_pairs(g.num_vertices(), 60, &mut rng);
    let pq_g = pair_queries(&g, &pairs, &mc, &mut rng);
    let pq_emd = pair_queries(&emd_out.graph, &pairs, &mc, &mut rng);
    let pq_ss = pair_queries(&ss_out.graph, &pairs, &mc, &mut rng);
    let dem_rl_emd = earth_movers_distance(&pq_g.reliability, &pq_emd.reliability);
    let dem_rl_ss = earth_movers_distance(&pq_g.reliability, &pq_ss.reliability);
    assert!(dem_rl_emd < 0.4, "D_em(RL) = {dem_rl_emd}");
    // At this tiny scale the reliability errors of EMD and SS are close (the
    // decisive gap of Figure 10(c,g) appears at realistic sizes — see the
    // fig10 experiment binary); only require EMD not to be substantially
    // worse.
    assert!(
        dem_rl_emd <= 1.25 * dem_rl_ss,
        "EMD {dem_rl_emd} vs SS {dem_rl_ss}"
    );
}

#[test]
fn sparsification_reduces_estimator_variance() {
    // Figure 12's shape: the MC estimator on the sparsified graph has lower
    // run-to-run variance than on the original (thanks to entropy reduction).
    let g = flickr_tiny(5);
    let mut rng = SmallRng::seed_from_u64(23);
    let out = SparsifierSpec::gdb()
        .alpha(0.16)
        .sparsify(&g, &mut rng)
        .unwrap();

    let mc = MonteCarlo::worlds(30);
    let mut seeds = SmallRng::seed_from_u64(99);
    let mut variance_of = |graph: &UncertainGraph| {
        let mut local = SmallRng::seed_from_u64(seeds.next_u64());
        estimator_variance(15, |_| {
            ugs::queries::expected_pagerank(graph, &mc, &mut local)
        })
    };
    let var_original = variance_of(&g);
    let var_sparse = variance_of(&out.graph);
    let ratio = var_sparse.relative_to(&var_original);
    assert!(ratio < 1.0, "relative variance {ratio} should drop below 1");
}

#[test]
fn graph_io_round_trips_through_all_formats() {
    let g = flickr_tiny(6);
    // text
    let mut buffer = Vec::new();
    ugs::graph::io::write_text(&g, &mut buffer).unwrap();
    let text_back = ugs::graph::io::read_text(std::io::Cursor::new(buffer)).unwrap();
    assert_eq!(text_back.num_edges(), g.num_edges());
    // json
    let json = ugs::graph::io::to_json(&g).unwrap();
    let json_back = ugs::graph::io::from_json(&json).unwrap();
    assert_eq!(json_back.num_edges(), g.num_edges());
    // binary
    let bytes = ugs::graph::io::to_bytes(&g);
    let bin_back = ugs::graph::io::from_bytes(&bytes).unwrap();
    assert_eq!(bin_back.num_edges(), g.num_edges());
    // probabilities survive exactly
    for e in g.edges() {
        let id = bin_back.find_edge(e.u, e.v).unwrap();
        assert_eq!(bin_back.edge_probability(id), e.p);
    }
}

#[test]
fn forest_fire_reduction_plus_lp_reference_pipeline() {
    // The paper's Table 2 pipeline: reduce the graph with Forest Fire
    // sampling, then compare LP (optimal Δ1 on the backbone) against GDB.
    let g = flickr_tiny(7);
    let mut rng = SmallRng::seed_from_u64(31);
    let (reduced, _) = ugs::datasets::forest_fire_sample(&g, 80, 0.7, &mut rng);
    assert_eq!(reduced.num_vertices(), 80);

    let lp = SparsifierSpec::lp()
        .alpha(0.3)
        .sparsify(&reduced, &mut rng)
        .unwrap();
    let gdb = SparsifierSpec::gdb()
        .alpha(0.3)
        .entropy_h(1.0)
        .sparsify(&reduced, &mut rng)
        .unwrap();
    let lp_mae = degree_discrepancy_mae(&reduced, &lp.graph, MetricDiscrepancy::Absolute);
    let gdb_mae = degree_discrepancy_mae(&reduced, &gdb.graph, MetricDiscrepancy::Absolute);
    // Both must be small; LP is the optimum for its own backbone, GDB must be
    // in the same ballpark (Table 2 shows them within a small factor).
    assert!(lp_mae.is_finite() && gdb_mae.is_finite());
    assert!(
        gdb_mae <= 5.0 * lp_mae + 0.05,
        "GDB {gdb_mae} vs LP {lp_mae}"
    );
}

use rand::RngCore;
