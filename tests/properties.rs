//! Property-based tests (proptest) of the core invariants: sparsifier
//! contracts, data-structure invariants and metric properties hold for
//! arbitrary random inputs, not just the hand-picked fixtures of the unit
//! tests.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs::prelude::*;

/// Strategy: a random connected uncertain graph with `n ∈ [4, 24]` vertices,
/// a spanning ring plus extra random edges and probabilities in (0, 1].
fn uncertain_graph_strategy() -> impl Strategy<Value = UncertainGraph> {
    (4usize..24, 0usize..40, any::<u64>()).prop_map(|(n, extra, seed)| {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = UncertainGraphBuilder::new(n);
        for u in 0..n {
            b.add_edge(u, (u + 1) % n, rng.gen_range(0.05..=1.0)).unwrap();
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                let _ = b.add_edge_if_absent(u, v, rng.gen_range(0.05..=1.0));
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// |E'| = round(α|E|), the vertex set is preserved, every probability is
    /// in (0, 1], every kept edge exists in the original graph — for every
    /// method.
    #[test]
    fn sparsifier_contract_holds(
        g in uncertain_graph_strategy(),
        alpha in 0.2f64..0.9,
        seed in any::<u64>(),
        method in 0usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sparsifier: Box<dyn Sparsifier> = match method {
            0 => Box::new(SparsifierSpec::gdb().alpha(alpha)),
            1 => Box::new(SparsifierSpec::emd().alpha(alpha)),
            2 => Box::new(NagamochiIbaraki::new(alpha)),
            _ => Box::new(SpannerSparsifier::new(alpha)),
        };
        let out = sparsifier.sparsify_dyn(&g, &mut rng).unwrap();
        let target = (alpha * g.num_edges() as f64).round() as usize;
        prop_assert_eq!(out.graph.num_edges(), target.min(g.num_edges()));
        prop_assert_eq!(out.graph.num_vertices(), g.num_vertices());
        for e in out.graph.edges() {
            prop_assert!(e.p > 0.0 && e.p <= 1.0);
            prop_assert!(g.has_edge(e.u, e.v));
        }
    }

    /// GDB with h = 1 and the degree rule never produces a worse Δ1 than the
    /// raw backbone it started from, and never exceeds the original expected
    /// degrees by more than numerical noise... (Lemma 1's direction).
    #[test]
    fn gdb_improves_on_the_raw_backbone(
        g in uncertain_graph_strategy(),
        alpha in 0.3f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let backbone = build_backbone(&g, alpha, &BackboneConfig::spanning(), &mut rng).unwrap();
        let config = GdbConfig { entropy_h: 1.0, ..Default::default() };
        let result = ugs::sparsify::gdb::gradient_descent_assign(&g, &backbone, &config).unwrap();
        prop_assert!(result.final_objective() <= result.objective_trace[0] + 1e-9);
        for &(_, p) in &result.probabilities {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// The spanning backbone of Algorithm 1 is connected whenever α allows a
    /// spanning tree.
    #[test]
    fn spanning_backbone_is_connected(
        g in uncertain_graph_strategy(),
        seed in any::<u64>(),
    ) {
        let n = g.num_vertices() as f64;
        let m = g.num_edges() as f64;
        // pick α large enough for a spanning tree to fit
        let alpha = ((n / m) + 0.3).min(0.95);
        let mut rng = SmallRng::seed_from_u64(seed);
        let backbone = build_backbone(&g, alpha, &BackboneConfig::spanning(), &mut rng).unwrap();
        prop_assert!(ugs::sparsify::backbone::edges_span_connected(&g, &backbone));
    }

    /// Entropy invariants: H(G) ≥ 0, the relative entropy of a sparsified
    /// graph produced with h = 0 never exceeds 1, and dropping edges without
    /// touching probabilities always lowers entropy.
    #[test]
    fn entropy_invariants(
        g in uncertain_graph_strategy(),
        seed in any::<u64>(),
    ) {
        prop_assert!(g.entropy() >= 0.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = SparsifierSpec::gdb().alpha(0.5).entropy_h(0.0)
            .sparsify(&g, &mut rng).unwrap();
        prop_assert!(out.diagnostics.relative_entropy() <= 1.0 + 1e-9);
        // plain subgraph (SS-style, original probabilities) also reduces entropy
        let keep: Vec<usize> = (0..g.num_edges()).step_by(2).collect();
        let sub = g.subgraph_with_edges(keep).unwrap();
        prop_assert!(sub.entropy() <= g.entropy() + 1e-9);
    }

    /// The earth mover's distance is a metric-like quantity: non-negative,
    /// symmetric, zero for identical samples and shift-equivariant.
    #[test]
    fn earth_movers_distance_properties(
        mut a in prop::collection::vec(0.0f64..100.0, 1..60),
        b in prop::collection::vec(0.0f64..100.0, 1..60),
        shift in 0.0f64..10.0,
    ) {
        let d_ab = earth_movers_distance(&a, &b);
        let d_ba = earth_movers_distance(&b, &a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(earth_movers_distance(&a, &a) < 1e-12);
        let shifted: Vec<f64> = a.iter().map(|x| x + shift).collect();
        prop_assert!((earth_movers_distance(&a, &shifted) - shift).abs() < 1e-9);
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
    }

    /// Union-find maintains the number of connected components of the edges
    /// merged so far.
    #[test]
    fn union_find_component_count(
        n in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut uf = UnionFind::new(n);
        let mut adjacency = vec![vec![]; n];
        for &(u, v) in edges.iter().filter(|(u, v)| u < &n && v < &n && u != v) {
            uf.union(u, v);
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        // brute-force component count
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] { continue; }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for &v in &adjacency[u] {
                    if !seen[v] { seen[v] = true; stack.push(v); }
                }
            }
        }
        prop_assert_eq!(uf.num_sets(), components);
    }

    /// The indexed max-heap drains keys in priority order regardless of the
    /// interleaving of pushes and updates.
    #[test]
    fn indexed_heap_drains_sorted(
        priorities in prop::collection::vec(-1e6f64..1e6, 1..120),
        updates in prop::collection::vec((0usize..120, -1e6f64..1e6), 0..60),
    ) {
        let mut heap = IndexedMaxHeap::from_priorities(&priorities);
        let mut expected = priorities.clone();
        for &(key, value) in updates.iter().filter(|(k, _)| *k < priorities.len()) {
            heap.update(key, value);
            expected[key] = value;
        }
        let drained = heap.into_sorted_vec();
        prop_assert_eq!(drained.len(), expected.len());
        for window in drained.windows(2) {
            prop_assert!(window[0].1 >= window[1].1);
        }
        // multiset equality of priorities
        let mut got: Vec<f64> = drained.iter().map(|&(_, p)| p).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in got.iter().zip(expected.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Possible-world probabilities are a distribution: a sampled world's
    /// probability is positive and exact enumeration of small graphs sums to
    /// one.
    #[test]
    fn world_probabilities_form_a_distribution(
        g in uncertain_graph_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let world = WorldSampler::new().sample(&g, &mut rng);
        prop_assert!(world.probability(&g) >= 0.0);
        prop_assert_eq!(world.len(), g.num_edges());
        if g.num_edges() <= 12 {
            let mut total = 0.0;
            ugs::graph::worlds::enumerate_worlds(&g, |_, pr| total += pr).unwrap();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// Expected degrees equal the per-vertex sum of incident probabilities
    /// and their total equals twice the probability mass.
    #[test]
    fn expected_degree_identities(g in uncertain_graph_strategy()) {
        let degrees = g.expected_degrees();
        let total: f64 = degrees.iter().sum();
        prop_assert!((total - 2.0 * g.expected_num_edges()).abs() < 1e-9);
        for u in g.vertices() {
            prop_assert!((degrees[u] - g.expected_degree(u)).abs() < 1e-9);
        }
    }

    /// Text serialisation round-trips arbitrary graphs.
    #[test]
    fn graph_text_io_round_trips(g in uncertain_graph_strategy()) {
        let mut buffer = Vec::new();
        ugs::graph::io::write_text(&g, &mut buffer).unwrap();
        let back = ugs::graph::io::read_text(std::io::Cursor::new(buffer)).unwrap();
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for e in g.edges() {
            let id = back.find_edge(e.u, e.v).unwrap();
            prop_assert!((back.edge_probability(id) - e.p).abs() < 1e-9);
        }
    }
}
