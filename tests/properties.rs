//! Property-based tests of the core invariants: sparsifier contracts,
//! data-structure invariants, metric properties and — new with the world
//! engine — sampling-path equivalence hold for arbitrary random inputs, not
//! just the hand-picked fixtures of the unit tests.
//!
//! The workspace builds offline, so instead of `proptest` this file uses a
//! small deterministic harness: every property runs over `CASES` seeds, each
//! seed derives all inputs for one case from its own `SmallRng` stream, and
//! failures report the offending case number so they can be replayed.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use ugs::prelude::*;

/// Number of random cases per property (proptest used 48 before).
const CASES: u64 = 48;

/// Runs `property` over `CASES` deterministic cases, labelling failures.
fn for_each_case(name: &str, mut property: impl FnMut(&mut SmallRng)) {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0000 ^ (case.wrapping_mul(0x9E37_79B9)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!("property {name:?} failed on case {case}: {message}");
        }
    }
}

/// A random connected uncertain graph with `n ∈ [4, 24)` vertices, a
/// spanning ring plus extra random edges and probabilities in (0, 1].
fn random_graph(rng: &mut SmallRng) -> UncertainGraph {
    let n = rng.gen_range(4usize..24);
    let extra = rng.gen_range(0usize..40);
    let mut b = UncertainGraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n, rng.gen_range(0.05..=1.0))
            .unwrap();
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = b.add_edge_if_absent(u, v, rng.gen_range(0.05..=1.0));
        }
    }
    b.build()
}

/// |E'| = round(α|E|), the vertex set is preserved, every probability is in
/// (0, 1], every kept edge exists in the original graph — for every method.
#[test]
fn sparsifier_contract_holds() {
    for_each_case("sparsifier_contract_holds", |rng| {
        let g = random_graph(rng);
        let alpha = rng.gen_range(0.2f64..0.9);
        let method = rng.gen_range(0usize..4);
        let sparsifier: Box<dyn Sparsifier> = match method {
            0 => Box::new(SparsifierSpec::gdb().alpha(alpha)),
            1 => Box::new(SparsifierSpec::emd().alpha(alpha)),
            2 => Box::new(NagamochiIbaraki::new(alpha)),
            _ => Box::new(SpannerSparsifier::new(alpha)),
        };
        let out = sparsifier.sparsify_dyn(&g, rng).unwrap();
        let target = (alpha * g.num_edges() as f64).round() as usize;
        assert_eq!(out.graph.num_edges(), target.min(g.num_edges()));
        assert_eq!(out.graph.num_vertices(), g.num_vertices());
        for e in out.graph.edges() {
            assert!(e.p > 0.0 && e.p <= 1.0);
            assert!(g.has_edge(e.u, e.v));
        }
    });
}

/// GDB with h = 1 and the degree rule never produces a worse Δ1 than the raw
/// backbone it started from, and keeps probabilities valid (Lemma 1's
/// direction).
#[test]
fn gdb_improves_on_the_raw_backbone() {
    for_each_case("gdb_improves_on_the_raw_backbone", |rng| {
        let g = random_graph(rng);
        let alpha = rng.gen_range(0.3f64..0.9);
        let backbone = build_backbone(&g, alpha, &BackboneConfig::spanning(), rng).unwrap();
        let config = GdbConfig {
            entropy_h: 1.0,
            ..Default::default()
        };
        let result = ugs::sparsify::gdb::gradient_descent_assign(&g, &backbone, &config).unwrap();
        assert!(result.final_objective() <= result.objective_trace[0] + 1e-9);
        for &(_, p) in &result.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
    });
}

/// The spanning backbone of Algorithm 1 is connected whenever α allows a
/// spanning tree.
#[test]
fn spanning_backbone_is_connected() {
    for_each_case("spanning_backbone_is_connected", |rng| {
        let g = random_graph(rng);
        let n = g.num_vertices() as f64;
        let m = g.num_edges() as f64;
        // pick α large enough for a spanning tree to fit
        let alpha = ((n / m) + 0.3).min(0.95);
        let backbone = build_backbone(&g, alpha, &BackboneConfig::spanning(), rng).unwrap();
        assert!(ugs::sparsify::backbone::edges_span_connected(&g, &backbone));
    });
}

/// Entropy invariants: H(G) ≥ 0, the relative entropy of a sparsified graph
/// produced with h = 0 never exceeds 1, and dropping edges without touching
/// probabilities always lowers entropy.
#[test]
fn entropy_invariants() {
    for_each_case("entropy_invariants", |rng| {
        let g = random_graph(rng);
        assert!(g.entropy() >= 0.0);
        let out = SparsifierSpec::gdb()
            .alpha(0.5)
            .entropy_h(0.0)
            .sparsify(&g, rng)
            .unwrap();
        assert!(out.diagnostics.relative_entropy() <= 1.0 + 1e-9);
        // plain subgraph (SS-style, original probabilities) also reduces entropy
        let keep: Vec<usize> = (0..g.num_edges()).step_by(2).collect();
        let sub = g.subgraph_with_edges(keep).unwrap();
        assert!(sub.entropy() <= g.entropy() + 1e-9);
    });
}

/// The earth mover's distance is a metric-like quantity: non-negative,
/// symmetric, zero for identical samples and shift-equivariant.
#[test]
fn earth_movers_distance_properties() {
    for_each_case("earth_movers_distance_properties", |rng| {
        let len_a = rng.gen_range(1usize..60);
        let len_b = rng.gen_range(1usize..60);
        let a: Vec<f64> = (0..len_a).map(|_| rng.gen_range(0.0f64..100.0)).collect();
        let b: Vec<f64> = (0..len_b).map(|_| rng.gen_range(0.0f64..100.0)).collect();
        let shift = rng.gen_range(0.0f64..10.0);
        let d_ab = earth_movers_distance(&a, &b);
        let d_ba = earth_movers_distance(&b, &a);
        assert!(d_ab >= 0.0);
        assert!((d_ab - d_ba).abs() < 1e-9);
        assert!(earth_movers_distance(&a, &a) < 1e-12);
        let shifted: Vec<f64> = a.iter().map(|x| x + shift).collect();
        assert!((earth_movers_distance(&a, &shifted) - shift).abs() < 1e-9);
    });
}

/// Union-find maintains the number of connected components of the edges
/// merged so far.
#[test]
fn union_find_component_count() {
    for_each_case("union_find_component_count", |rng| {
        let n = rng.gen_range(2usize..40);
        let num_edges = rng.gen_range(0usize..80);
        let edges: Vec<(usize, usize)> = (0..num_edges)
            .map(|_| (rng.gen_range(0..40), rng.gen_range(0..40)))
            .collect();
        let mut uf = UnionFind::new(n);
        let mut adjacency = vec![vec![]; n];
        for &(u, v) in edges.iter().filter(|(u, v)| u < &n && v < &n && u != v) {
            uf.union(u, v);
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        // brute-force component count
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for &v in &adjacency[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        assert_eq!(uf.num_sets(), components);
    });
}

/// The indexed max-heap drains keys in priority order regardless of the
/// interleaving of pushes and updates.
#[test]
fn indexed_heap_drains_sorted() {
    for_each_case("indexed_heap_drains_sorted", |rng| {
        let len = rng.gen_range(1usize..120);
        let priorities: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let num_updates = rng.gen_range(0usize..60);
        let updates: Vec<(usize, f64)> = (0..num_updates)
            .map(|_| (rng.gen_range(0usize..120), rng.gen_range(-1e6f64..1e6)))
            .collect();
        let mut heap = IndexedMaxHeap::from_priorities(&priorities);
        let mut expected = priorities.clone();
        for &(key, value) in updates.iter().filter(|(k, _)| *k < priorities.len()) {
            heap.update(key, value);
            expected[key] = value;
        }
        let drained = heap.into_sorted_vec();
        assert_eq!(drained.len(), expected.len());
        for window in drained.windows(2) {
            assert!(window[0].1 >= window[1].1);
        }
        // multiset equality of priorities
        let mut got: Vec<f64> = drained.iter().map(|&(_, p)| p).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    });
}

/// Possible-world probabilities are a distribution: a sampled world's
/// probability is positive and exact enumeration of small graphs sums to one.
#[test]
fn world_probabilities_form_a_distribution() {
    for_each_case("world_probabilities_form_a_distribution", |rng| {
        let g = random_graph(rng);
        let world = WorldSampler::new().sample(&g, rng);
        assert!(world.probability(&g) >= 0.0);
        assert_eq!(world.len(), g.num_edges());
        if g.num_edges() <= 12 {
            let mut total = 0.0;
            ugs::graph::worlds::enumerate_worlds(&g, |_, pr| total += pr).unwrap();
            assert!((total - 1.0).abs() < 1e-9);
        }
    });
}

/// The skip-sampling engine is equivalent to the legacy per-edge Bernoulli
/// path: over many worlds of a random graph, per-edge presence frequencies
/// agree with the edge probabilities (and hence with each other) within
/// binomial tolerance.
#[test]
fn skip_sampling_matches_per_edge_frequencies() {
    for_each_case("skip_sampling_matches_per_edge_frequencies", |rng| {
        let g = random_graph(rng);
        let worlds = 4_000usize;
        let tolerance = 4.0 * (0.25f64 / worlds as f64).sqrt(); // 4σ of a Bernoulli mean
        let count_frequencies = |method: SampleMethod, rng: &mut SmallRng| -> Vec<f64> {
            let engine = WorldEngine::new(&g).with_method(method);
            let mut scratch = engine.make_scratch();
            let mut hits = vec![0usize; g.num_edges()];
            for _ in 0..worlds {
                engine.sample_world(rng, &mut scratch);
                for &e in scratch.present_edges() {
                    hits[e as usize] += 1;
                }
            }
            hits.into_iter().map(|h| h as f64 / worlds as f64).collect()
        };
        let skip = count_frequencies(SampleMethod::Skip, rng);
        let per_edge = count_frequencies(SampleMethod::PerEdge, rng);
        for e in 0..g.num_edges() {
            let p = g.edge_probability(e);
            assert!(
                (skip[e] - p).abs() < tolerance,
                "skip frequency {} vs probability {p} on edge {e}",
                skip[e]
            );
            assert!(
                (per_edge[e] - p).abs() < tolerance,
                "per-edge frequency {} vs probability {p} on edge {e}",
                per_edge[e]
            );
        }
    });
}

/// The engine's sequential per-edge path produces bit-identical accumulators
/// to the legacy allocate-per-world driver for the same seed, on arbitrary
/// graphs and a non-trivial kernel.
#[test]
fn engine_per_edge_path_is_bit_identical_to_legacy_driver() {
    for_each_case(
        "engine_per_edge_path_is_bit_identical_to_legacy_driver",
        |rng| {
            let g = random_graph(rng);
            let n = g.num_vertices();
            let kernel = |world: &ugs::algo::DeterministicGraph, acc: &mut [f64]| {
                acc[0] += world.num_edges() as f64;
                for u in 0..world.num_vertices() {
                    acc[1 + u] += world.degree(u) as f64;
                }
            };
            let seed = rng.gen::<u64>();
            let mc = MonteCarlo::worlds(64).with_method(SampleMethod::PerEdge);
            let mut rng_new = SmallRng::seed_from_u64(seed);
            let new = mc.accumulate(&g, 1 + n, &mut rng_new, kernel);
            let mut rng_old = SmallRng::seed_from_u64(seed);
            let old = ugs::queries::mc::accumulate_reference(&g, 1 + n, 64, &mut rng_old, kernel);
            assert_eq!(new, old);
        },
    );
}

/// Expected degrees equal the per-vertex sum of incident probabilities and
/// their total equals twice the probability mass.
#[test]
fn expected_degree_identities() {
    for_each_case("expected_degree_identities", |rng| {
        let g = random_graph(rng);
        let degrees = g.expected_degrees();
        let total: f64 = degrees.iter().sum();
        assert!((total - 2.0 * g.expected_num_edges()).abs() < 1e-9);
        for u in g.vertices() {
            assert!((degrees[u] - g.expected_degree(u)).abs() < 1e-9);
        }
    });
}

/// Text serialisation round-trips arbitrary graphs.
#[test]
fn graph_text_io_round_trips() {
    for_each_case("graph_text_io_round_trips", |rng| {
        let g = random_graph(rng);
        let mut buffer = Vec::new();
        ugs::graph::io::write_text(&g, &mut buffer).unwrap();
        let back = ugs::graph::io::read_text(std::io::Cursor::new(buffer)).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        for e in g.edges() {
            let id = back.find_edge(e.u, e.v).unwrap();
            assert!((back.edge_probability(id) - e.p).abs() < 1e-9);
        }
    });
}

// Silence the unused-import lint: `RngCore` is part of the prelude contract
// exercised above via `gen`/`gen_range`.
const _: fn(&mut SmallRng) -> u64 = <SmallRng as RngCore>::next_u64;
