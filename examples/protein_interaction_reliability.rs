//! Protein–protein interaction (PPI) reliability analysis.
//!
//! Biological interaction databases attach confidence scores to each detected
//! interaction because laboratory measurements are error prone — one of the
//! motivating applications of uncertain graphs in the paper's introduction.
//! A typical task is *reliability*: with what probability are two proteins
//! connected through any chain of interactions?  Exact evaluation is
//! exponential, Monte-Carlo on the full network is expensive; this example
//! shows that a sparsified network answers the same reliability queries at a
//! fraction of the sampling cost.
//!
//! Run with `cargo run --release --example protein_interaction_reliability`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs::prelude::*;

/// Builds a synthetic PPI-like network: a few dense complexes (cliques of
/// co-complexed proteins with high-confidence interactions) linked by a
/// sparse backbone of lower-confidence interactions.
fn synthetic_ppi_network(rng: &mut SmallRng) -> UncertainGraph {
    let complexes = 24;
    let complex_size = 12;
    let n = complexes * complex_size;
    let mut builder = UncertainGraphBuilder::new(n);
    for c in 0..complexes {
        let base = c * complex_size;
        // within-complex interactions: high confidence
        for i in 0..complex_size {
            for j in (i + 1)..complex_size {
                if rng.gen::<f64>() < 0.6 {
                    builder
                        .add_edge(base + i, base + j, rng.gen_range(0.6..0.95))
                        .expect("valid edge");
                }
            }
        }
        // cross-complex interactions: low confidence
        for _ in 0..8 {
            let other = rng.gen_range(0..complexes);
            if other == c {
                continue;
            }
            let u = base + rng.gen_range(0..complex_size);
            let v = other * complex_size + rng.gen_range(0..complex_size);
            let _ = builder.add_edge_if_absent(u, v, rng.gen_range(0.05..0.3));
        }
    }
    builder.build()
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let ppi = synthetic_ppi_network(&mut rng);
    println!("{}", GraphStatistics::table_header());
    println!("{}", GraphStatistics::compute(&ppi).table_row("ppi"));

    // Sparsify to a quarter of the interactions with the degree-preserving
    // EMD sparsifier.
    let spec = SparsifierSpec::emd().alpha(0.25).entropy_h(0.05);
    let sparse = spec
        .sparsify(&ppi, &mut rng)
        .expect("sparsification succeeds");
    println!(
        "\nsparsified to {} of {} interactions, relative entropy {:.3}\n",
        sparse.graph.num_edges(),
        ppi.num_edges(),
        sparse.diagnostics.relative_entropy()
    );

    // Reliability between proteins in different complexes.  Both runs use
    // the skip-sampling world engine; on the sparsified graph the expected
    // per-world cost drops with Σ pₑ, compounding the fewer-edges win.
    let pairs = random_pairs(ppi.num_vertices(), 60, &mut rng);
    let mc_full = MonteCarlo::worlds(400).with_method(SampleMethod::Skip);
    let mc_sparse = MonteCarlo::worlds(400).with_method(SampleMethod::Skip);

    let t0 = std::time::Instant::now();
    let full = pair_queries(&ppi, &pairs, &mc_full, &mut rng);
    let time_full = t0.elapsed();
    let t1 = std::time::Instant::now();
    let small = pair_queries(&sparse.graph, &pairs, &mc_sparse, &mut rng);
    let time_sparse = t1.elapsed();

    let dem = earth_movers_distance(&full.reliability, &small.reliability);
    let mean_abs_diff: f64 = full
        .reliability
        .iter()
        .zip(small.reliability.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / pairs.len() as f64;

    println!("{:<28} {:>12} {:>12}", "", "original", "sparsified");
    println!(
        "{:<28} {:>12} {:>12}",
        "edges sampled per world",
        ppi.num_edges(),
        sparse.graph.num_edges()
    );
    println!(
        "{:<28} {:>12.1?} {:>12.1?}",
        "time for 400 worlds", time_full, time_sparse
    );
    println!(
        "\nreliability agreement over {} protein pairs:",
        pairs.len()
    );
    println!("  earth mover's distance : {dem:.4}");
    println!("  mean absolute difference: {mean_abs_diff:.4}");
    println!("\nExample pairs (protein, protein) -> reliability original vs sparsified:");
    for (idx, &(a, b)) in pairs.iter().enumerate().take(5) {
        println!(
            "  ({:>3}, {:>3})  {:.3}  vs  {:.3}",
            a, b, full.reliability[idx], small.reliability[idx]
        );
    }
}
