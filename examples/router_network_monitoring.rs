//! Router-network monitoring: shortest paths and link-failure resilience.
//!
//! In communication networks every link is annotated with a reliability — the
//! probability that the channel does not fail (the paper's first motivating
//! application).  Operators care about expected shortest-path lengths and
//! two-terminal reliability between points of presence, evaluated by
//! Monte-Carlo sampling.  This example builds a hierarchical router topology
//! (core ring, aggregation, access), sparsifies it with GDB at several
//! ratios, and tracks how the expected shortest-path distance and the
//! reliability between access routers degrade as α shrinks — reproducing in
//! miniature the trade-off curve of the paper's Figure 10.
//!
//! Run with `cargo run --release --example router_network_monitoring`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugs::prelude::*;

/// A three-tier router topology with per-link reliabilities.
fn router_network(rng: &mut SmallRng) -> UncertainGraph {
    let core = 8;
    let aggregation = 32;
    let access = 160;
    let n = core + aggregation + access;
    let mut b = UncertainGraphBuilder::new(n);
    // Core ring + chords: very reliable links.
    for i in 0..core {
        b.add_edge(i, (i + 1) % core, rng.gen_range(0.95..0.999))
            .unwrap();
    }
    for i in 0..core {
        let _ = b.add_edge_if_absent(i, (i + core / 2) % core, rng.gen_range(0.9..0.99));
    }
    // Each aggregation router homes to two core routers.
    for a in 0..aggregation {
        let v = core + a;
        let c1 = rng.gen_range(0..core);
        let c2 = (c1 + 1 + rng.gen_range(0..core - 1)) % core;
        let _ = b.add_edge_if_absent(v, c1, rng.gen_range(0.85..0.99));
        let _ = b.add_edge_if_absent(v, c2, rng.gen_range(0.85..0.99));
    }
    // Each access router homes to two aggregation routers with flakier links,
    // plus occasional peer links.
    for x in 0..access {
        let v = core + aggregation + x;
        let a1 = core + rng.gen_range(0..aggregation);
        let a2 = core + rng.gen_range(0..aggregation);
        let _ = b.add_edge_if_absent(v, a1, rng.gen_range(0.6..0.95));
        let _ = b.add_edge_if_absent(v, a2, rng.gen_range(0.6..0.95));
        if rng.gen::<f64>() < 0.3 {
            let peer = core + aggregation + rng.gen_range(0..access);
            if peer != v {
                let _ = b.add_edge_if_absent(v, peer, rng.gen_range(0.3..0.7));
            }
        }
    }
    b.build()
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(17);
    let net = router_network(&mut rng);
    println!("{}", GraphStatistics::table_header());
    println!("{}", GraphStatistics::compute(&net).table_row("routers"));
    println!();

    // Monitor paths between random pairs of access routers.
    let core_and_agg = 8 + 32;
    let pairs: Vec<(usize, usize)> = (0..80)
        .map(|_| {
            let u = core_and_agg + rng.gen_range(0..160usize);
            let v = loop {
                let v = core_and_agg + rng.gen_range(0..160usize);
                if v != u {
                    break v;
                }
            };
            (u.min(v), u.max(v))
        })
        .collect();

    let mc = MonteCarlo::worlds(300);
    let reference = pair_queries(&net, &pairs, &mc, &mut rng);
    let ref_sp: Vec<f64> = reference.finite_distances();
    let ref_rl_mean: f64 =
        reference.reliability.iter().sum::<f64>() / reference.reliability.len() as f64;
    println!(
        "original:    mean SP {:.3} hops, mean reliability {:.3}",
        ref_sp.iter().sum::<f64>() / ref_sp.len().max(1) as f64,
        ref_rl_mean
    );
    println!();
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "alpha", "edges", "D_em(SP)", "D_em(RL)", "mean SP", "mean RL"
    );
    for alpha in [0.6, 0.4, 0.25, 0.15] {
        let out = SparsifierSpec::gdb()
            .alpha(alpha)
            .entropy_h(0.05)
            .sparsify(&net, &mut rng)
            .expect("sparsification succeeds");
        let result = pair_queries(&out.graph, &pairs, &mc, &mut rng);
        let dem_sp = earth_movers_distance(&reference.mean_distance, &result.mean_distance);
        let dem_rl = earth_movers_distance(&reference.reliability, &result.reliability);
        let sp = result.finite_distances();
        let mean_sp = sp.iter().sum::<f64>() / sp.len().max(1) as f64;
        let mean_rl = result.reliability.iter().sum::<f64>() / result.reliability.len() as f64;
        println!(
            "{:>5.0}% {:>8} {:>12.4} {:>12.4} {:>12.3} {:>12.3}",
            alpha * 100.0,
            out.graph.num_edges(),
            dem_sp,
            dem_rl,
            mean_sp,
            mean_rl
        );
    }
    println!();
    println!(
        "Moderate sparsification keeps both monitoring metrics close to the full network; \
         the error grows gracefully as α shrinks."
    );
}
