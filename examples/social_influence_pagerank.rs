//! Influence ranking in an uncertain social network.
//!
//! In social networks edge probabilities model the influence users exert on
//! each other (the paper's Twitter dataset).  Ranking users by *expected
//! PageRank* over the possible worlds is a standard influence measure, but it
//! requires many Monte-Carlo samples on a large uncertain graph.  This
//! example sparsifies a Twitter-shaped network with GDB and EMD and shows
//! that the influence ranking (top-k overlap and earth mover's distance of
//! the PageRank distribution) is preserved while sampling becomes much
//! cheaper, whereas the spanner baseline distorts the ranking.
//!
//! Run with `cargo run --release --example social_influence_pagerank`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs::prelude::*;

/// Overlap between the top-`k` vertices of two score vectors.
fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    let top = |scores: &[f64]| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&i, &j| scores[j].partial_cmp(&scores[i]).unwrap());
        idx.into_iter().take(k).collect()
    };
    let ta = top(a);
    let tb = top(b);
    ta.intersection(&tb).count() as f64 / k as f64
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(2024);
    let g = ugs::datasets::twitter_like(Scale::Tiny, &mut rng);
    println!("{}", GraphStatistics::table_header());
    println!("{}", GraphStatistics::compute(&g).table_row("twitter-like"));
    println!();

    let alpha = 0.16;
    // All cores, one seed-derived RNG stream per worker.
    let mc = MonteCarlo::parallel(300);
    let reference = ugs::queries::expected_pagerank(&g, &mc, &mut rng);

    let sparsifiers: Vec<Box<dyn Sparsifier>> = vec![
        Box::new(SparsifierSpec::gdb().alpha(alpha)),
        Box::new(
            SparsifierSpec::emd()
                .alpha(alpha)
                .discrepancy(DiscrepancyKind::Relative),
        ),
        Box::new(SpannerSparsifier::new(alpha)),
    ];

    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>12}",
        "method", "edges", "top-20 overlap", "D_em(PR)", "rel. H"
    );
    for sparsifier in &sparsifiers {
        let out = sparsifier
            .sparsify_dyn(&g, &mut rng)
            .expect("sparsification succeeds");
        let pr = ugs::queries::expected_pagerank(&out.graph, &mc, &mut rng);
        let overlap = top_k_overlap(&reference, &pr, 20);
        let dem = earth_movers_distance(&reference, &pr);
        println!(
            "{:<10} {:>10} {:>14.2} {:>14.6} {:>12.4}",
            sparsifier.name(),
            out.graph.num_edges(),
            overlap,
            dem,
            out.diagnostics.relative_entropy()
        );
    }

    println!();
    println!(
        "GDB/EMD keep the influence ranking (high top-20 overlap, small D_em) while \
         reducing entropy; the spanner baseline keeps probabilities untouched and loses \
         both accuracy and the entropy reduction."
    );
}
