//! Quickstart: build an uncertain graph, sparsify it with every method, and
//! compare structural fidelity, entropy and query accuracy.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugs::metrics::degree::MetricDiscrepancy;
use ugs::prelude::*;

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);

    // A Flickr-shaped uncertain social network: heavy-tailed degrees, low
    // edge probabilities (mean ≈ 0.09).
    let g = ugs::datasets::flickr_like(Scale::Tiny, &mut rng);
    println!("{}", GraphStatistics::table_header());
    println!("{}", GraphStatistics::compute(&g).table_row("original"));
    println!();

    let alpha = 0.16;
    let sparsifiers: Vec<Box<dyn Sparsifier>> = vec![
        Box::new(SparsifierSpec::gdb().alpha(alpha)),
        Box::new(
            SparsifierSpec::emd()
                .alpha(alpha)
                .discrepancy(DiscrepancyKind::Relative),
        ),
        Box::new(NagamochiIbaraki::new(alpha)),
        Box::new(SpannerSparsifier::new(alpha)),
    ];

    // Reference query answers on the original graph, evaluated on all cores
    // through the zero-allocation world engine (one RNG stream per worker;
    // results are deterministic for a fixed seed and thread count).
    let mc = MonteCarlo::parallel(200);
    let pairs = random_pairs(g.num_vertices(), 100, &mut rng);
    let pr_original = ugs::queries::expected_pagerank(&g, &mc, &mut rng);
    let pairs_original = pair_queries(&g, &pairs, &mc, &mut rng);

    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "method", "edges", "degree MAE", "rel. H", "D_em (PR)", "D_em (RL)", "time"
    );
    for sparsifier in &sparsifiers {
        let output = sparsifier
            .sparsify_dyn(&g, &mut rng)
            .expect("sparsification succeeds on a connected graph");
        let sparse = &output.graph;

        let degree_mae = degree_discrepancy_mae(&g, sparse, MetricDiscrepancy::Absolute);
        let pr_sparse = ugs::queries::expected_pagerank(sparse, &mc, &mut rng);
        let pairs_sparse = pair_queries(sparse, &pairs, &mc, &mut rng);
        let dem_pr = earth_movers_distance(&pr_original, &pr_sparse);
        let dem_rl = earth_movers_distance(&pairs_original.reliability, &pairs_sparse.reliability);

        println!(
            "{:<10} {:>8} {:>12.5} {:>10.4} {:>12.6} {:>12.6} {:>8.1?}",
            sparsifier.name(),
            sparse.num_edges(),
            degree_mae,
            output.diagnostics.relative_entropy(),
            dem_pr,
            dem_rl,
            output.diagnostics.elapsed,
        );
    }

    println!();
    println!(
        "The proposed sparsifiers (GDB/EMD) should show markedly lower degree MAE, \
         lower relative entropy and lower earth mover's distance than the NI/SS baselines."
    );
}
